"""Online cloud simulation: time-varying VM populations under churn.

:class:`CloudSimulation` extends the Section VI-C engine to a cloud
where VMs arrive, resize and depart mid-horizon (see
:mod:`repro.traces.lifecycle`):

* allocation windows are **cut at membership/resize boundaries** — a
  day-ahead policy's 24-slot window ends early when the population
  changes, exactly when a real operator would have to react;
* the policy sees a :class:`~repro.core.online.CloudAllocationContext`
  covering only the window's active VMs (global ids attached, previous
  slot's observed utilization for reactive detectors), so the paper's
  day-ahead policies and the stateful online policies run head-to-head
  on identical information;
* accounting reuses the engine's window-batched bincount scatter with
  the membership rows as the scatter's VM set — bit-identical to the
  per-slot reference (``window_batch=False``), which stays the oracle;
* migrations are counted only over VMs present on *both* sides of a
  boundary (arrivals and departures are not migrations) and can be
  charged via ``migration_energy_j`` as in the base engine.

With a zero-churn :func:`~repro.traces.lifecycle.fixed_schedule` the
simulation reproduces the fixed-population
:class:`~repro.dcsim.engine.DataCenterSimulation` results exactly — the
equivalence the cloud test-suite asserts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.online import CloudAllocationContext, OnlinePolicy
from ..core.types import AllocationPolicy
from ..errors import ConfigurationError
from ..traces.dataset import TraceDataset
from ..traces.lifecycle import LifecycleSchedule
from ..units import SAMPLES_PER_SLOT
from .engine import (
    DataCenterSimulation,
    _WindowTask,
    count_migrations,
)
from .metrics import SimulationResult, SlotRecord


class CloudSimulation(DataCenterSimulation):
    """Simulates one policy over churning traces (see module docstring).

    Args:
        dataset: utilization traces for the whole VM *pool* (rows for
            VMs that have not arrived yet are simply unused).
        predictor: shared day-ahead predictor (as in the base engine).
        policy: a day-ahead :class:`AllocationPolicy` or a stateful
            :class:`~repro.core.online.OnlinePolicy`.
        schedule: the VM lifecycle (arrivals/departures/resizes); must
            cover the dataset's VM pool and the simulated horizon.
        **kwargs: forwarded to :class:`DataCenterSimulation`.
    """

    _ENGINE_NAME = "cloud"

    def __init__(
        self,
        dataset: TraceDataset,
        predictor,
        policy: AllocationPolicy,
        schedule: LifecycleSchedule,
        **kwargs,
    ):
        super().__init__(dataset, predictor, policy, **kwargs)
        if schedule.n_vms != dataset.n_vms:
            raise ConfigurationError(
                f"schedule covers {schedule.n_vms} VMs, dataset has "
                f"{dataset.n_vms}"
            )
        end = self._start_slot + self._n_slots
        if (
            schedule.horizon_start > self._start_slot
            or schedule.horizon_end < end
        ):
            raise ConfigurationError(
                "lifecycle schedule does not cover the simulated horizon"
            )
        self._schedule = schedule

    def run(self) -> SimulationResult:
        """Simulate the horizon with the time-varying active set.

        With ``superbatch`` (the default) the non-empty windows'
        accounting is deferred into the engine's horizon-concatenated
        super-batches — per-window membership rows and resize scales
        feed the same padded scatter — and the per-window churn
        metadata (active VMs, arrivals, departures) is stitched back
        onto the records in horizon order afterwards.
        """
        if isinstance(self._policy, OnlinePolicy):
            self._policy.reset()
        result = SimulationResult(policy_name=self._policy.name)
        self._trace_run_start()
        period = max(1, int(self._policy.reallocation_period_slots))
        sched = self._schedule
        prev_ids: Optional[np.ndarray] = None
        prev_map: Optional[np.ndarray] = None
        prev_pools: Optional[np.ndarray] = None
        prev_fw = None
        # Per window: (n_active_vms, arrivals, departures, records);
        # ``records is None`` marks a window deferred into ``tasks``.
        windows: List[tuple] = []
        tasks: List[_WindowTask] = []
        slot = self._start_slot
        end = self._start_slot + self._n_slots
        while slot < end:
            active = sched.active_ids(slot)
            n_window = min(
                period, end - slot, max(1, sched.next_change(slot) - slot)
            )
            fw = None
            if self._faults is not None:
                n_window = min(
                    n_window,
                    max(1, self._faults.next_change(slot) - slot),
                )
                fw = self._fault_window(slot)
            arrivals = departures = 0
            if prev_ids is not None:
                arrivals = int(
                    np.setdiff1d(active, prev_ids, assume_unique=True).size
                )
                departures = int(
                    np.setdiff1d(prev_ids, active, assume_unique=True).size
                )

            if active.size == 0:
                # Empty cloud: every server off, nothing to place.
                records = [
                    SlotRecord(
                        slot_index=s,
                        case="",
                        n_active_servers=0,
                        violations=0,
                        forced_placements=0,
                        energy_j=0.0,
                        mean_freq_ghz=0.0,
                        f_opt_ghz=0.0,
                        n_failed_servers=fw.n_failed if fw else 0,
                    )
                    for s in range(slot, slot + n_window)
                ]
                windows.append((0, arrivals, departures, records))
                prev_ids = active
                prev_map = np.empty(0, dtype=int)
                prev_pools = None
            else:
                scale = sched.scale_at(slot)
                scale_loc = (
                    None
                    if scale is None
                    else (scale[0][active], scale[1][active])
                )
                ctx = self._cloud_context(
                    slot, n_window, active, scale_loc, fw
                )
                with self._metrics.phase("policy"):
                    allocation = self._policy.allocate(ctx)
                with self._metrics.phase("allocate"):
                    acct = self._prepare_allocation(
                        allocation,
                        vm_rows=active,
                        scale=scale_loc,
                        fault=fw,
                        fault_boundary=fw != prev_fw,
                    )
                migrations = 0
                if prev_ids is not None and prev_ids.size:
                    # Only VMs present on both sides of the boundary can
                    # migrate; the membership change invalidates any
                    # cached sort, so the stateless counter is used.
                    # ``acct.vm_rows`` (not ``active``): VMs shed this
                    # window have no server row in ``acct.vm2srv``.
                    common, ia, ib = np.intersect1d(
                        prev_ids,
                        acct.vm_rows,
                        assume_unique=True,
                        return_indices=True,
                    )
                    if common.size:
                        # Pool indices restrict matching to same-pool
                        # server pairs on heterogeneous fleets (a VM
                        # block landing on another platform migrated).
                        migrations = count_migrations(
                            prev_map[ia],
                            acct.vm2srv[ib],
                            previous_pools=prev_pools,
                            new_pools=acct.pool_idx,
                        )
                self._trace_window(
                    slot,
                    n_window,
                    allocation,
                    acct,
                    migrations,
                    n_active_vms=int(active.size),
                    arrivals=arrivals,
                    departures=departures,
                )
                if self._superbatch:
                    tasks.append(
                        _WindowTask(
                            slot, n_window, allocation, acct, migrations
                        )
                    )
                    records = None
                elif self._window_batch:
                    with self._metrics.phase("account"):
                        records = self._account_window(
                            slot, n_window, allocation, acct, migrations
                        )
                else:
                    with self._metrics.phase("account"):
                        records = [
                            self._account_slot(
                                s,
                                allocation,
                                acct,
                                migrations if s == slot else 0,
                            )
                            for s in range(slot, slot + n_window)
                        ]
                windows.append(
                    (int(active.size), arrivals, departures, records)
                )
                # Shed VMs are excluded from acct.vm_rows (== active
                # when nothing was shed), so migration counting at the
                # next boundary only sees actually-placed VMs.
                prev_ids = acct.vm_rows
                prev_map = acct.vm2srv
                prev_pools = acct.pool_idx
            if fw != prev_fw:
                self._trace_fault_transition(slot, fw)
            prev_fw = fw
            slot += n_window

        with self._metrics.phase("account"):
            deferred = iter(self._account_horizon(tasks) if tasks else [])
            for n_active_vms, arrivals, departures, records in windows:
                if records is None:
                    records = next(deferred)
                result.records.extend(
                    replace(
                        rec,
                        n_active_vms=n_active_vms,
                        arrivals=arrivals if i == 0 else 0,
                        departures=departures if i == 0 else 0,
                    )
                    for i, rec in enumerate(records)
                )
        self._trace_run_end(result)
        return result

    # -- internals ----------------------------------------------------------

    def _cloud_context(
        self,
        slot: int,
        n_window: int,
        active: np.ndarray,
        scale_loc,
        fault=None,
    ) -> CloudAllocationContext:
        """Window context restricted to the active VMs (global ids kept)."""
        with self._metrics.phase("forecast"):
            pred_cpu, pred_mem = self._window_predictions(
                slot, slot + n_window, vm_rows=active, scale=scale_loc
            )
        last_cpu, last_mem = self._last_observed(slot, active)
        max_servers = self._max_servers
        fleet = self._fleet
        if fault is not None:
            max_servers = fault.available_servers
            if fleet is not None:
                fleet = self._reduced_fleet(fault.pool_available)
        return CloudAllocationContext(
            pred_cpu=pred_cpu,
            pred_mem=pred_mem,
            power_model=self._power,
            max_servers=max_servers,
            qos_floor_ghz=self._vm_floor_ghz[active],
            fleet=fleet,
            vm_ids=active,
            last_cpu=last_cpu,
            last_mem=last_mem,
            faults=fault,
        )

    def _last_observed(self, slot: int, active: np.ndarray):
        """Previous slot's actual utilization; NaN rows without history.

        Scaled with the resize factors in force *during* that slot —
        what a monitoring system would actually have recorded — not the
        current window's factors.
        """
        prev = slot - 1
        if prev < 0:
            return None, None
        lo = prev * SAMPLES_PER_SLOT
        hi = lo + SAMPLES_PER_SLOT
        last_cpu = self._dataset.cpu_pct[active, lo:hi].copy()
        last_mem = self._dataset.mem_pct[active, lo:hi].copy()
        scale_prev = self._schedule.scale_at(prev)
        if scale_prev is not None:
            last_cpu *= scale_prev[0][active][:, None]
            last_mem *= scale_prev[1][active][:, None]
        ran = self._schedule.active_mask(prev)[active]
        last_cpu[~ran] = np.nan
        last_mem[~ran] = np.nan
        return last_cpu, last_mem


def _run_one_cloud_policy(
    dataset,
    predictor,
    policy: AllocationPolicy,
    schedule: LifecycleSchedule,
    kwargs: Dict,
) -> SimulationResult:
    """Worker entry point: one policy's full cloud run (picklable).

    ``dataset`` may be a :class:`~repro.shard.shm.SharedTraces` handle
    (mapped zero-copy) or a plain :class:`TraceDataset`.
    """
    from ..shard.shm import materialize

    return CloudSimulation(
        materialize(dataset), predictor, policy, schedule, **kwargs
    ).run()


def run_cloud_policies(
    dataset: TraceDataset,
    predictor,
    policies: Iterable[AllocationPolicy],
    schedule: LifecycleSchedule,
    jobs: int = 1,
    tracer=None,
    metrics=None,
    shared=None,
    **kwargs,
) -> Dict[str, SimulationResult]:
    """Run several policies over the same churning traces.

    The cloud counterpart of :func:`repro.dcsim.engine.run_policies`,
    with the same runner surface (``jobs`` / ``tracer`` / ``metrics`` /
    ``shared``): with ``jobs > 1`` the policies fan out over a
    ``ProcessPoolExecutor`` reading traces and frozen day-ahead
    predictions from zero-copy shared-memory buffers
    (:class:`~repro.shard.shm.SharedRunInputs`), so workers re-fit and
    copy nothing and results equal the serial run exactly (online
    policies are reset per run).  Serial runs thread ``tracer`` /
    ``metrics`` into every engine; parallel fans drop them, as in
    :func:`~repro.dcsim.engine.run_policies`.
    """
    policy_list = list(policies)
    if jobs is None or jobs <= 1 or len(policy_list) <= 1:
        results: Dict[str, SimulationResult] = {}
        for policy in policy_list:
            sim = CloudSimulation(
                dataset,
                predictor,
                policy,
                schedule,
                tracer=tracer,
                metrics=metrics,
                **kwargs,
            )
            results[policy.name] = sim.run()
        return results

    from concurrent.futures import ProcessPoolExecutor

    from ..shard.shm import SharedRunInputs

    owned = shared is None
    if owned:
        shared = SharedRunInputs.create(
            dataset,
            predictor,
            start_slot=kwargs.get("start_slot"),
            n_slots=kwargs.get("n_slots"),
        )
    try:
        workers = min(jobs, len(policy_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_one_cloud_policy,
                    shared.traces,
                    shared.predictions,
                    policy,
                    schedule,
                    kwargs,
                )
                for policy in policy_list
            ]
            return {
                policy.name: future.result()
                for policy, future in zip(policy_list, futures)
            }
    finally:
        if owned:
            shared.close()
            shared.unlink()
