"""Plain-text rendering of tables and series for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output readable in a terminal
without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_SPARK_LEVELS = " .:-=+*#%@"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([_fmt(cell) for cell in row])
    widths = [
        max(len(r[col]) for r in str_rows)
        for col in range(len(str_rows[0]))
    ]
    lines = []
    for i, row in enumerate(str_rows):
        line = "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Downsample a series into a character sparkline of ``width``.

    Uses block-average downsampling and a 10-level character ramp; good
    enough to eyeball the weekly shape of Figs. 4-6 in a terminal.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[lo:hi].mean() for lo, hi in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1.0e-12:
        return _SPARK_LEVELS[1] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def series_block(
    name: str, values: Sequence[float], width: int = 60, unit: str = ""
) -> str:
    """A labelled sparkline with min/mean/max annotations."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{name}: (empty)"
    stats = (
        f"min={arr.min():.1f} mean={arr.mean():.1f} max={arr.max():.1f}"
        f"{(' ' + unit) if unit else ''}"
    )
    return f"{name:<12} |{sparkline(arr, width)}| {stats}"


#: Grade bins for :func:`score_letter`, as (max ratio-to-best, grade).
#: Anything beyond the last bin is an "F".
_SCORE_BINS = (
    (1.02, "A+"),
    (1.05, "A"),
    (1.15, "B"),
    (1.35, "C"),
    (1.75, "D"),
)


def score_letter(value: float, best: float) -> str:
    """Grade a lower-is-better metric relative to the best in its group.

    The audit report scores each policy's energy/SLA-debt against the
    best policy of the same table: within 2% of best is an "A+", out to
    75% over best for a "D", beyond that "F".  Degenerate cases: a NaN
    scores "?", and when the best value is 0 only an exact 0 keeps the
    "A+" (any positive value against a zero best is an "F").
    """
    value = float(value)
    best = float(best)
    if np.isnan(value) or np.isnan(best):
        return "?"
    if best == 0.0:
        return "A+" if value == 0.0 else "F"
    ratio = value / best
    for bound, grade in _SCORE_BINS:
        if ratio <= bound:
            return grade
    return "F"


def scored_rows(
    names: Sequence[str], values: Sequence[float]
) -> List[List[object]]:
    """Pair each (name, value) with its :func:`score_letter` grade.

    Grades are relative to the group's best (minimum non-NaN) value;
    an all-NaN group grades every row "?".
    """
    arr = np.asarray(list(values), dtype=float)
    finite = arr[~np.isnan(arr)]
    best = float(finite.min()) if finite.size else float("nan")
    return [
        [name, float(value), score_letter(value, best)]
        for name, value in zip(names, arr)
    ]


def comparison_table(results) -> str:
    """Summary table over a ``{name: SimulationResult}`` mapping.

    One row per policy: total energy, violations, mean active servers,
    migrations and mean operating frequency — the at-a-glance comparison
    behind Figs. 4-6.
    """
    headers = [
        "policy",
        "energy (MJ)",
        "violations",
        "servers (mean)",
        "migrations",
        "mean f (GHz)",
    ]
    rows = []
    for name, result in results.items():
        freqs = [r.mean_freq_ghz for r in result.records]
        mean_freq = sum(freqs) / len(freqs) if freqs else 0.0
        rows.append(
            [
                name,
                f"{result.total_energy_mj:.1f}",
                result.total_violations,
                f"{result.mean_active_servers:.1f}",
                result.total_migrations,
                f"{mean_freq:.2f}",
            ]
        )
    return format_table(headers, rows)
