"""Data-center simulation: slot/sample engine, metrics, reporting.

Implements the paper's Section VI-C evaluation protocol over the trace,
forecast, policy and power substrates.
"""

from .cloud import CloudSimulation, run_cloud_policies
from .engine import (
    DataCenterSimulation,
    MigrationCounter,
    count_migrations,
    run_policies,
    shared_predictions,
)
from .inspect import SlotDetail, inspect_slot
from .metrics import (
    SimulationResult,
    SlotRecord,
    active_server_reduction_pct,
    energy_savings_pct,
    total_energy_savings_pct,
)
from .power_tables import VectorizedServerPower
from .reporting import (
    comparison_table,
    format_table,
    series_block,
    sparkline,
)

__all__ = [
    "CloudSimulation",
    "DataCenterSimulation",
    "MigrationCounter",
    "SimulationResult",
    "run_cloud_policies",
    "SlotDetail",
    "SlotRecord",
    "VectorizedServerPower",
    "inspect_slot",
    "active_server_reduction_pct",
    "comparison_table",
    "count_migrations",
    "energy_savings_pct",
    "format_table",
    "run_policies",
    "shared_predictions",
    "series_block",
    "sparkline",
    "total_energy_savings_pct",
]
