"""Data-center simulation: slot/sample engine, metrics, reporting.

Implements the paper's Section VI-C evaluation protocol over the trace,
forecast, policy and power substrates.

This package is also the single entry point for the multi-policy
runners — :func:`run_policies` (fixed population),
:func:`run_cloud_policies` (churning population),
:func:`run_streaming_policies` (degraded telemetry streams) and
:func:`run_geo_policies` (sharded multi-region fleets) — which share
one keyword surface: ``jobs``, ``tracer``, ``metrics`` and a ``shared``
zero-copy buffer handle (:class:`~repro.shard.shm.SharedRunInputs`).
"""

from .cloud import CloudSimulation, run_cloud_policies
from .config import SimulationConfig, StreamingConfig
from .engine import (
    DataCenterSimulation,
    MigrationCounter,
    count_migrations,
    run_policies,
    shared_predictions,
)
from .inspect import SlotDetail, inspect_slot
from .metrics import (
    SimulationResult,
    SlotRecord,
    active_server_reduction_pct,
    energy_savings_pct,
    total_energy_savings_pct,
)
from .power_tables import VectorizedServerPower
from .reporting import (
    comparison_table,
    format_table,
    series_block,
    sparkline,
)

# Imported last: repro.cloud.streaming and repro.shard.geo themselves
# import the engine and cloud submodules above, which are complete by
# this point even while this package module is still initializing.
from ..cloud.streaming import run_streaming_policies  # noqa: E402
from ..shard.geo import run_geo_policies  # noqa: E402

__all__ = [
    "CloudSimulation",
    "DataCenterSimulation",
    "MigrationCounter",
    "SimulationConfig",
    "SimulationResult",
    "StreamingConfig",
    "run_cloud_policies",
    "run_geo_policies",
    "run_streaming_policies",
    "SlotDetail",
    "SlotRecord",
    "VectorizedServerPower",
    "inspect_slot",
    "active_server_reduction_pct",
    "comparison_table",
    "count_migrations",
    "energy_savings_pct",
    "format_table",
    "run_policies",
    "shared_predictions",
    "series_block",
    "sparkline",
    "total_energy_savings_pct",
]
