"""Vectorized per-OPP power evaluation for the data-center engine.

The scalar :class:`~repro.power.server_power.ServerPowerModel` is exact but
Python-slow; the engine evaluates power for every (server, sample) pair of
a week-long simulation, so this module precomputes per-OPP coefficient
arrays once and evaluates power with pure NumPy:

``P[i] = static[i] + dyn[i] * busy * (1 - wfm * stall)
        + dram_delta * busy + access_w_per_bps[i] * traffic``

where ``i`` indexes the OPP table.  The tables agree with the scalar model
to floating-point accuracy (asserted by tests).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import DomainError
from ..power.llc import ACCESS_BYTES
from ..power.server_power import ServerPowerModel


@lru_cache(maxsize=32)
def cached_tables(power_model: ServerPowerModel) -> "VectorizedServerPower":
    """Per-OPP tables for ``power_model``, cached per model instance.

    Power models hash by identity (their components do not define
    equality), so each distinct model gets its own tables; repeated
    callers — one sizing search per slot, one engine per policy — share
    one tabulation instead of re-deriving it.
    """
    return VectorizedServerPower(power_model)


class VectorizedServerPower:
    """Per-OPP coefficient tables for fast bulk power evaluation.

    Args:
        power_model: the scalar server power model to tabulate.
    """

    def __init__(self, power_model: ServerPowerModel):
        self._model = power_model
        opps = power_model.spec.opps
        n = len(opps)
        self.freqs_ghz = np.array(
            [p.freq_ghz for p in opps], dtype=float
        )
        self.volts_v = np.array([p.voltage_v for p in opps], dtype=float)

        static = np.empty(n)
        dyn = np.empty(n)
        access = np.empty(n)
        core = power_model.core
        uncore = power_model.uncore
        dram = power_model.dram
        llc = power_model.llc
        for i in range(n):
            v, f = self.volts_v[i], self.freqs_ghz[i]
            static[i] = (
                core.leakage_w(v)
                + (llc.leakage_w(v) if llc else 0.0)
                + uncore.constant_w
                + uncore.motherboard_w
                + uncore.proportional_w(v, f)
                + dram.background_w(0.0)
            )
            dyn[i] = core.ceff_nf * v * v * f
            per_byte = dram.access_pj_per_byte * 1.0e-12
            if llc:
                per_byte += (
                    llc.energy_per_access_j(v)
                    / ACCESS_BYTES
                    * power_model.llc_traffic_multiplier
                )
            access[i] = per_byte
        self.static_w = static
        self.dyn_w = dyn
        self.access_w_per_bps = access
        self.dram_delta_w = dram.background_w(1.0) - dram.background_w(0.0)
        self.wfm_reduction = core.wfm_reduction

    @property
    def n_opps(self) -> int:
        """Number of operating points."""
        return len(self.freqs_ghz)

    def power_w(
        self,
        opp_idx: np.ndarray,
        work_fraction: np.ndarray,
        stall_fraction: np.ndarray,
        dram_bytes_per_s: np.ndarray,
    ) -> np.ndarray:
        """Server power for arrays of operating conditions (elementwise).

        All arguments broadcast together; ``opp_idx`` must contain valid
        OPP indices.

        ``work_fraction`` is *work-conserving*: it may exceed 1.0 when the
        demand exceeds the instantaneous capacity at the operating point.
        The dynamic term scales with the full work (batch jobs are
        deferred, not dropped — the energy is spent when the backlog
        drains at the same operating point), while the bank-activity term
        saturates at 1 (a server cannot be more than fully memory-active).
        """
        idx = np.asarray(opp_idx, dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_opps):
            raise DomainError("OPP index out of range")
        work = np.asarray(work_fraction, dtype=float)
        stall = np.asarray(stall_fraction, dtype=float)
        traffic = np.asarray(dram_bytes_per_s, dtype=float)
        wfm_factor = 1.0 - self.wfm_reduction * stall
        return (
            self.static_w[idx]
            + self.dyn_w[idx] * work * wfm_factor
            + self.dram_delta_w * np.minimum(work, 1.0)
            + self.access_w_per_bps[idx] * traffic
        )
