"""Unified simulation configuration object.

Eight PRs of growth left :class:`~repro.dcsim.DataCenterSimulation`'s
constructor with thirteen keyword arguments spanning four concerns
(platform, horizon, engine paths, observability).  A
:class:`SimulationConfig` groups them into one validated, frozen,
reusable object:

>>> config = SimulationConfig(max_servers=80, n_slots=24)
>>> sim = DataCenterSimulation.from_config(dataset, predictor, policy,
...                                        config=config)

The old keyword surface keeps working — ``from_config`` is a thin
pass-through (``cls(dataset, predictor, policy, **config.kwargs())``),
so a config-built simulation is **bit-identical** to the equivalent
keyword call, and :class:`~repro.dcsim.CloudSimulation` (or any other
subclass taking extra positional arguments) inherits the factory
unchanged.

Validation follows the :mod:`repro.errors` convention: everything
checkable without the dataset fails at *construction* with
:class:`~repro.errors.ConfigurationError`; the dataset-dependent checks
(horizon bounds, fault coverage) stay in the engine, which sees the
same values either way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.types import FleetSpec
from ..errors import ConfigurationError


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a simulation needs beyond (dataset, predictor, policy).

    Attributes:
        power_model: per-server power model for a homogeneous data
            center (mutually exclusive with ``fleet``; the engine
            defaults to the paper's NTC platform when both are absent).
        perf: optional performance simulator override.
        max_servers: homogeneous server count (mutually exclusive with
            ``fleet``; engine default 600).
        start_slot: first simulated slot (default: first predictable).
        n_slots: horizon length in slots (default: rest of the traces).
        migration_energy_j: energy charged per migration.
        psu: optional PSU efficiency model.
        window_batch: account windows as whole batches (fast path).
        superbatch: concatenate windows across allocation boundaries
            (fast path; implies ``window_batch``).
        fleet: heterogeneous fleet spec (mutually exclusive with
            ``power_model``/``max_servers``).
        faults: optional fault schedule.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    power_model: Optional[Any] = None
    perf: Optional[Any] = None
    max_servers: Optional[int] = None
    start_slot: Optional[int] = None
    n_slots: Optional[int] = None
    migration_energy_j: float = 0.0
    psu: Optional[Any] = None
    window_batch: bool = True
    superbatch: bool = True
    fleet: Optional[FleetSpec] = None
    faults: Optional[Any] = None
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.migration_energy_j < 0.0:
            raise ConfigurationError(
                "migration_energy_j must be non-negative"
            )
        if self.fleet is not None:
            if self.power_model is not None:
                raise ConfigurationError(
                    "pass either power_model or fleet, not both"
                )
            if self.max_servers is not None:
                raise ConfigurationError(
                    "max_servers is derived from the fleet's pool "
                    "sizes; size the pools instead of passing it"
                )
        if self.max_servers is not None and self.max_servers < 1:
            raise ConfigurationError("max_servers must be >= 1")
        if self.start_slot is not None and self.start_slot < 0:
            raise ConfigurationError("start_slot must be non-negative")
        if self.n_slots is not None and self.n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")

    def kwargs(self) -> Dict[str, Any]:
        """The constructor keyword dict this config stands for."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    def replace(self, **changes) -> "SimulationConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
