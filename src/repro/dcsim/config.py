"""Unified simulation configuration object.

Eight PRs of growth left :class:`~repro.dcsim.DataCenterSimulation`'s
constructor with thirteen keyword arguments spanning four concerns
(platform, horizon, engine paths, observability).  A
:class:`SimulationConfig` groups them into one validated, frozen,
reusable object:

>>> config = SimulationConfig(max_servers=80, n_slots=24)
>>> sim = DataCenterSimulation.from_config(dataset, predictor, policy,
...                                        config=config)

The old keyword surface keeps working — ``from_config`` is a thin
pass-through (``cls(dataset, predictor, policy, **config.kwargs())``),
so a config-built simulation is **bit-identical** to the equivalent
keyword call, and :class:`~repro.dcsim.CloudSimulation` (or any other
subclass taking extra positional arguments) inherits the factory
unchanged.

Validation follows the :mod:`repro.errors` convention: everything
checkable without the dataset fails at *construction* with
:class:`~repro.errors.ConfigurationError`; the dataset-dependent checks
(horizon bounds, fault coverage) stay in the engine, which sees the
same values either way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.types import FleetSpec
from ..errors import ConfigurationError
from ..units import SLOTS_PER_DAY


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a simulation needs beyond (dataset, predictor, policy).

    Attributes:
        power_model: per-server power model for a homogeneous data
            center (mutually exclusive with ``fleet``; the engine
            defaults to the paper's NTC platform when both are absent).
        perf: optional performance simulator override.
        max_servers: homogeneous server count (mutually exclusive with
            ``fleet``; engine default 600).
        start_slot: first simulated slot (default: first predictable).
        n_slots: horizon length in slots (default: rest of the traces).
        migration_energy_j: energy charged per migration.
        psu: optional PSU efficiency model.
        window_batch: account windows as whole batches (fast path).
        superbatch: concatenate windows across allocation boundaries
            (fast path; implies ``window_batch``).
        fleet: heterogeneous fleet spec (mutually exclusive with
            ``power_model``/``max_servers``).
        faults: optional fault schedule.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    power_model: Optional[Any] = None
    perf: Optional[Any] = None
    max_servers: Optional[int] = None
    start_slot: Optional[int] = None
    n_slots: Optional[int] = None
    migration_energy_j: float = 0.0
    psu: Optional[Any] = None
    window_batch: bool = True
    superbatch: bool = True
    fleet: Optional[FleetSpec] = None
    faults: Optional[Any] = None
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.migration_energy_j < 0.0:
            raise ConfigurationError(
                "migration_energy_j must be non-negative"
            )
        if self.fleet is not None:
            if self.power_model is not None:
                raise ConfigurationError(
                    "pass either power_model or fleet, not both"
                )
            if self.max_servers is not None:
                raise ConfigurationError(
                    "max_servers is derived from the fleet's pool "
                    "sizes; size the pools instead of passing it"
                )
        if self.max_servers is not None and self.max_servers < 1:
            raise ConfigurationError("max_servers must be >= 1")
        if self.start_slot is not None and self.start_slot < 0:
            raise ConfigurationError("start_slot must be non-negative")
        if self.n_slots is not None and self.n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")

    def kwargs(self) -> Dict[str, Any]:
        """The constructor keyword dict this config stands for."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    def replace(self, **changes) -> "SimulationConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class StreamingConfig(SimulationConfig):
    """:class:`SimulationConfig` plus the streaming/serve layer's knobs.

    Built for
    :meth:`~repro.cloud.streaming.StreamingCloudSimulation.from_config`
    (inherited from the engine base, so a config-built streaming run is
    bit-identical to the keyword call).  ``superbatch`` is inherited but
    irrelevant — the streaming engine forces it off either way.  The
    ``sleep`` test hook stays a constructor-only argument.

    Attributes:
        telemetry: replay degradation timeline
            (:class:`~repro.cloud.telemetry.TelemetryFaultSchedule`);
            mutually exclusive with ``collectors``.
        collectors: live
            :class:`~repro.serve.adapters.CollectorAdapter` sequence.
        max_imputed_frac: fresh-fit threshold of the forecast ladder.
        staleness_budget_slots: stale-forecast re-use budget.
        blind_after_slots: dark-stream budget before placements freeze.
        cold_start_util_pct: assumed utilization for unseen VMs.
        poll_retries / poll_backoff_s: collector retry policy.
        checkpoint_every_slots / checkpoint_path: snapshot cadence and
            persistence target.
        incremental_forecasts: day-over-day Hannan-Rissanen refresh
            instead of the full daily re-fit.
        refit_every_days: incremental mode's oracle re-fit cadence.
    """

    telemetry: Optional[Any] = None
    collectors: Optional[Any] = None
    max_imputed_frac: float = 0.25
    staleness_budget_slots: int = 3 * SLOTS_PER_DAY
    blind_after_slots: int = 2
    cold_start_util_pct: float = 50.0
    poll_retries: int = 2
    poll_backoff_s: float = 0.0
    checkpoint_every_slots: Optional[int] = None
    checkpoint_path: Optional[str] = None
    incremental_forecasts: bool = False
    refit_every_days: int = 7

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.max_imputed_frac <= 1.0:
            raise ConfigurationError(
                f"max_imputed_frac must be in [0, 1], got "
                f"{self.max_imputed_frac}"
            )
        if self.staleness_budget_slots < SLOTS_PER_DAY:
            raise ConfigurationError(
                f"staleness_budget_slots must be >= {SLOTS_PER_DAY} "
                f"(one day): a day-ahead forecast ages in whole days, "
                f"so a budget of {self.staleness_budget_slots} slots "
                f"makes the stale rung unreachable — raise the budget "
                f"or drop straight to persistence"
            )
        if self.blind_after_slots < 1:
            raise ConfigurationError(
                f"blind_after_slots must be >= 1, got "
                f"{self.blind_after_slots}"
                " — under normal operation the newest delivery is "
                "exactly one slot old"
            )
        if self.poll_retries < 0:
            raise ConfigurationError(
                f"poll_retries must be >= 0, got {self.poll_retries}"
            )
        if self.poll_backoff_s < 0:
            raise ConfigurationError(
                f"poll_backoff_s must be >= 0, got {self.poll_backoff_s}"
            )
        if (
            self.checkpoint_every_slots is not None
            and self.checkpoint_every_slots < 1
        ):
            raise ConfigurationError(
                f"checkpoint_every_slots must be >= 1, got "
                f"{self.checkpoint_every_slots}"
            )
        if self.telemetry is not None and self.collectors is not None:
            raise ConfigurationError(
                "telemetry= and collectors= are mutually exclusive: a "
                "replay degradation schedule builds its own "
                "TraceCollector set, a live feed brings its own "
                "adapters"
            )
        if self.refit_every_days < 1:
            raise ConfigurationError(
                f"refit_every_days must be >= 1, got "
                f"{self.refit_every_days}"
            )
        if (
            self.incremental_forecasts
            and self.telemetry is None
            and self.collectors is None
        ):
            raise ConfigurationError(
                "incremental_forecasts requires a telemetry stream "
                "(telemetry= or collectors=): without one the engine "
                "plans from the caller's batch predictor, which has "
                "nothing to update day-over-day"
            )
