"""Simulation metrics: per-slot records, aggregates and comparisons.

The quantities of the paper's Figs. 4-6: SLA violations (overutilized
server-samples per slot), number of active servers per slot, and energy
per slot; plus the policy-vs-policy savings arithmetic of Fig. 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import DomainError
from ..units import joules_to_megajoules


@dataclass(frozen=True)
class SlotRecord:
    """Metrics of one allocation slot for one policy.

    Attributes:
        slot_index: absolute slot index within the dataset.
        case: EPACT's branch for the slot ("" for other policies).
        n_active_servers: servers hosting at least one VM.
        violations: overutilized server-samples in the slot (a server
            counts once per 5-minute sample it exceeds the policy's cap,
            in CPU or memory).
        forced_placements: VMs force-placed outside the policy's caps.
        energy_j: data-center energy consumed during the slot, in joules.
        mean_freq_ghz: average operating frequency over active
            server-samples.
        f_opt_ghz: the policy's target frequency for the slot, if any.
        migrations: VMs whose server assignment changed at this slot's
            reallocation boundary (0 inside an allocation window).  The
            paper ignores migration cost; the engine counts it so the
            churn of dynamic policies is visible (and can optionally be
            charged, see ``DataCenterSimulation``).
        n_active_vms: VMs running during the slot.  The fixed-population
            engine leaves the default 0 ("not tracked"); the cloud
            engine fills it per window.
        arrivals: VMs that arrived at this slot's window boundary
            (cloud engine only; 0 inside a window).
        departures: VMs that departed at this slot's window boundary
            (cloud engine only; 0 inside a window).
        shed_vms: VMs shed into SLA debt this slot (degraded operation
            under faults: no surviving server could host them).
        n_failed_servers: servers down during this slot (fault layer).
        capped_samples: 5-minute samples whose fleet power was throttled
            by an active power-cap window.
        fault_migrations: migrations at this slot that were forced by a
            fault-state change (subset of ``migrations``).
        imputed_samples: degraded-telemetry samples the slot's window
            decision had to impute (streaming engine; counted on the
            window's first slot over the previous slot's active-VM
            readings, 0 elsewhere and without a telemetry layer).
        collectors_down: telemetry collectors inside a dropout window
            during this slot.
        stale_forecast: 1 on a window's first slot when the decision
            re-used an aged day-ahead forecast (the ladder's stale
            rung).
        blind_window: 1 on a window's first slot when telemetry was
            dark past the blind budget and the previous placement was
            frozen (the ladder's reactive-only rung).
    """

    slot_index: int
    case: str
    n_active_servers: int
    violations: int
    forced_placements: int
    energy_j: float
    mean_freq_ghz: float
    f_opt_ghz: float
    migrations: int = 0
    n_active_vms: int = 0
    arrivals: int = 0
    departures: int = 0
    shed_vms: int = 0
    n_failed_servers: int = 0
    capped_samples: int = 0
    fault_migrations: int = 0
    imputed_samples: int = 0
    collectors_down: int = 0
    stale_forecast: int = 0
    blind_window: int = 0

    @property
    def energy_mj(self) -> float:
        """Slot energy in megajoules (the unit of the paper's Fig. 6)."""
        return joules_to_megajoules(self.energy_j)


@dataclass
class SimulationResult:
    """All per-slot records of one policy's run, plus aggregates."""

    policy_name: str
    records: List[SlotRecord] = field(default_factory=list)

    # -- per-slot series ------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Number of simulated slots."""
        return len(self.records)

    @property
    def violations_per_slot(self) -> np.ndarray:
        """Fig. 4 series: violations per slot."""
        return np.array([r.violations for r in self.records], dtype=int)

    @property
    def active_servers_per_slot(self) -> np.ndarray:
        """Fig. 5 series: active servers per slot."""
        return np.array(
            [r.n_active_servers for r in self.records], dtype=int
        )

    @property
    def energy_mj_per_slot(self) -> np.ndarray:
        """Fig. 6 series: energy per slot in MJ."""
        return np.array([r.energy_mj for r in self.records], dtype=float)

    # -- aggregates -----------------------------------------------------------

    @property
    def total_energy_mj(self) -> float:
        """Total energy over the horizon in MJ."""
        return float(self.energy_mj_per_slot.sum())

    @property
    def total_violations(self) -> int:
        """Total violations over the horizon."""
        return int(self.violations_per_slot.sum())

    @property
    def mean_active_servers(self) -> float:
        """Average active servers over the horizon."""
        return float(self.active_servers_per_slot.mean())

    @property
    def total_forced_placements(self) -> int:
        """Total force-placed VMs over the horizon."""
        return int(sum(r.forced_placements for r in self.records))

    @property
    def total_migrations(self) -> int:
        """Total VM migrations over the horizon."""
        return int(sum(r.migrations for r in self.records))

    @property
    def migrations_per_slot(self) -> np.ndarray:
        """Migration counts per slot (non-zero at reallocation points)."""
        return np.array([r.migrations for r in self.records], dtype=int)

    @property
    def active_vms_per_slot(self) -> np.ndarray:
        """Running VMs per slot (all zeros for fixed-population runs)."""
        return np.array([r.n_active_vms for r in self.records], dtype=int)

    @property
    def total_arrivals(self) -> int:
        """Total VM arrivals over the horizon (cloud runs)."""
        return int(sum(r.arrivals for r in self.records))

    @property
    def total_departures(self) -> int:
        """Total VM departures over the horizon (cloud runs)."""
        return int(sum(r.departures for r in self.records))

    @property
    def shed_vms_per_slot(self) -> np.ndarray:
        """Shed VMs per slot (all zeros without a fault layer)."""
        return np.array([r.shed_vms for r in self.records], dtype=int)

    @property
    def total_shed_vm_slots(self) -> int:
        """Shed VM-slots over the horizon (each shed VM counts per slot)."""
        return int(sum(r.shed_vms for r in self.records))

    @property
    def total_failed_server_slots(self) -> int:
        """Down server-slots over the horizon (fault layer)."""
        return int(sum(r.n_failed_servers for r in self.records))

    @property
    def total_capped_samples(self) -> int:
        """Power-cap-throttled samples over the horizon."""
        return int(sum(r.capped_samples for r in self.records))

    @property
    def total_fault_migrations(self) -> int:
        """Migrations forced by fault-state changes over the horizon."""
        return int(sum(r.fault_migrations for r in self.records))

    @property
    def total_imputed_samples(self) -> int:
        """Imputed decision-input samples over the horizon (telemetry)."""
        return int(sum(r.imputed_samples for r in self.records))

    @property
    def total_collector_down_slots(self) -> int:
        """Collector-slots lost to dropout windows over the horizon."""
        return int(sum(r.collectors_down for r in self.records))

    @property
    def total_stale_forecast_windows(self) -> int:
        """Windows decided on an aged (stale-rung) forecast."""
        return int(sum(r.stale_forecast for r in self.records))

    @property
    def total_blind_windows(self) -> int:
        """Windows frozen because telemetry was dark (reactive-only)."""
        return int(sum(r.blind_window for r in self.records))

    def case_counts(self) -> dict:
        """How many slots used each EPACT case (empty for baselines)."""
        counts: dict = {}
        for record in self.records:
            if record.case:
                counts[record.case] = counts.get(record.case, 0) + 1
        return counts


def energy_savings_pct(
    ours: SimulationResult, baseline: SimulationResult
) -> np.ndarray:
    """Per-slot energy saving of ``ours`` relative to ``baseline`` (%).

    Positive values mean ``ours`` used less energy.  This is the Fig. 6
    comparison (and, summed, the Fig. 7 metric).

    Raises:
        DomainError: if the runs cover different numbers of slots.
    """
    a = ours.energy_mj_per_slot
    b = baseline.energy_mj_per_slot
    if a.shape != b.shape:
        raise DomainError(
            f"slot-count mismatch: {a.shape[0]} vs {b.shape[0]}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        savings = np.where(b > 0.0, (b - a) / b * 100.0, 0.0)
    return savings


def total_energy_savings_pct(
    ours: SimulationResult, baseline: SimulationResult
) -> float:
    """Whole-horizon energy saving of ``ours`` vs ``baseline`` (%)."""
    total_base = baseline.total_energy_mj
    if total_base <= 0.0:
        raise DomainError("baseline consumed no energy")
    return (total_base - ours.total_energy_mj) / total_base * 100.0


def active_server_reduction_pct(
    consolidating: SimulationResult, reference: SimulationResult
) -> float:
    """Mean active-server reduction of one policy vs another (%).

    The paper's Fig. 5 statistic: COAT reduces active servers by ~37% on
    average compared to EPACT.
    """
    ref = reference.mean_active_servers
    if ref <= 0.0:
        raise DomainError("reference run had no active servers")
    return (ref - consolidating.mean_active_servers) / ref * 100.0
