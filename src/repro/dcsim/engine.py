"""Slot/sample data-center simulation engine (paper Section VI-C protocol).

For every 1-hour slot of the evaluation horizon:

1. the policy receives the shared day-ahead predictions for the slot and
   produces an allocation (which VMs on which servers, caps, frequency
   mode);
2. for each of the slot's 12 five-minute samples, the engine aggregates
   the *real* utilization per server, chooses frequencies (per-sample
   governor or the policy's fixed frequency), accounts power through the
   vectorized Section-IV model, and counts SLA violations (server-samples
   whose real aggregate CPU exceeds the policy's cap, or whose memory
   exceeds physical capacity).

Servers hosting no VM are powered off (0 W) — the server turn-off
assumption shared by all compared policies.

Fast-path accounting: everything that depends only on the allocation
(VM->server map, active set, QoS floors, fixed OPP indices, scatter
indices) is hoisted into a per-allocation :class:`_AllocationAccounting`
and reused across the allocation's slots, and aggregation runs through
``np.bincount`` — bit-identical to the seed's ``np.add.at`` scatter
(both accumulate in input order) but a single C loop instead of the
buffered ufunc.

On top of that, accounting is **batched per allocation window** by
default (``window_batch=True``): all of a window's real-trace slots are
stacked into one ``(n_slots, n_servers, n_samples)`` tensor, aggregated
with a single bincount scatter over flattened (slot, server, sample)
bins, run through the governor and :class:`VectorizedServerPower` in one
call, and the per-slot :class:`SlotRecord`s are emitted from the batched
arrays.  Within each (slot, server, sample) bin the VMs accumulate in
the same ascending order as the per-slot scatter and the per-slot
reductions run over the same contiguous slices, so the results are
bit-identical to the per-slot path — which ``window_batch=False`` keeps
callable as the tested reference oracle.  ``count_migrations`` likewise
sorts only the non-zero overlap pairs; ``_count_migrations_reference``
preserves the seed's dense pair loop as the equivalence oracle.

**Horizon-concatenated accounting** (``superbatch=True``, the default)
goes one step further: consecutive accounting windows are concatenated
*across allocation boundaries* into one ragged super-batch.  Policies
that reallocate every slot (EPACT) degenerate window batching back into
per-slot work — one scatter and one power evaluation per 1-slot window —
so the super-batch pads every window's (slot, server, sample) bins to
the horizon chunk's maximum server count and aggregates *all* windows
with a single ``np.bincount`` scatter and a single
:class:`VectorizedServerPower` evaluation.  Per-slot records are sliced
back out of the padded tensors over exactly the per-window reduction
ranges (padded servers carry zero utilization, an inactive mask and are
excluded from every reduction by prefix slicing), so the results remain
bit-identical to both the per-window and the per-slot oracles —
``superbatch=False`` keeps the per-window path, ``window_batch=False``
the per-slot one.  Super-batches are flushed in memory-bounded chunks
(``_SUPERBATCH_MAX_CELLS`` caps both the padded server tensors and the
VM-proportional scatter arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from functools import lru_cache
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.governor import DvfsGovernor
from ..core.types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    FaultWindow,
    FleetSpec,
)
from ..errors import ConfigurationError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from ..perf.simulator import PerformanceSimulator, traffic_coefficients
from ..perf.workload import ALL_MEMORY_CLASSES
from ..power.server_power import ServerPowerModel, ntc_server_power_model
from ..traces.dataset import TraceDataset
from ..units import SAMPLE_PERIOD_S, SAMPLES_PER_SLOT, SLOTS_PER_DAY
from .metrics import SimulationResult, SlotRecord
from .power_tables import cached_tables

_EPS = 1.0e-9

# Cell budget per horizon-concatenated accounting flush.  A chunk
# closes when either transient family would outgrow it: the padded
# (slot, server, sample) tensors (times the memory-class count) or the
# (VM, slot, sample) scatter index/weight arrays — the latter scale
# with the fleet's VM count, which consolidating policies make much
# larger than the server count.  2M float64 cells keeps each family
# around ~50 MB at paper scale while still concatenating hundreds of
# 1-slot windows per flush.
_SUPERBATCH_MAX_CELLS = 2_000_000


@lru_cache(maxsize=1)
def _default_perf() -> PerformanceSimulator:
    """Shared default performance simulator.

    Calibration is deterministic and the simulator is read-only after
    construction, so every engine instance can share one copy instead of
    re-running the calibration per simulation.
    """
    return PerformanceSimulator()


@dataclass(frozen=True)
class _AllocationAccounting:
    """Invariants of one allocation, shared by all slots it covers.

    Attributes:
        vm2srv: dense VM -> server map (over the covered VMs).
        n_srv: number of planned servers.
        active: per-server "hosts at least one VM" mask.
        floors: per-server QoS frequency floor (max over hosted VMs).
        opp_idx_fixed: fixed-frequency OPP indices, or ``None`` for
            dynamic-governor policies.
        flat_idx: flattened (server, sample) bin index per (VM, sample)
            cell, for the bincount scatter.
        class_flat: the same indices restricted to each memory class
            (``None`` for classes with no VMs).
        class_masks: per-memory-class VM masks over the covered VMs.
        vm_rows: global dataset row per covered VM, or ``None`` when the
            allocation covers the whole fleet (the fixed-population
            engine).  The online cloud engine passes the window's active
            VM ids here; all accounting then reads/aggregates only those
            trace rows.
        scale_cpu: per-covered-VM CPU utilization factor (resizes), or
            ``None`` for unscaled traces.
        scale_mem: per-covered-VM memory utilization factor, or ``None``.
        pool_idx: per-server fleet pool index (heterogeneous engines
            only), or ``None`` for the homogeneous protocol.
        pool_fixed_opp: per-server fixed OPP index into *that server's
            own pool table* (``-1`` = per-sample governor); set for
            fixed-frequency allocations and ``"fixed-opt"`` pools on
            heterogeneous fleets, ``None`` otherwise.
        n_failed: servers down during this window (fault layer).
        cap_frac: fleet power budget fraction for this window (1.0 =
            uncapped; the accounting tiers throttle samples whose fleet
            power exceeds ``cap_frac`` times the nominal full-load
            power).
        shed_vms: VMs the policy shed for this window (degraded
            operation; excluded from the covered VM set).
        fault_boundary: this window starts at a fault-state change, so
            its boundary migrations are fault-forced.
    """

    vm2srv: np.ndarray
    n_srv: int
    active: np.ndarray
    floors: np.ndarray
    opp_idx_fixed: Optional[np.ndarray]
    flat_idx: np.ndarray
    class_flat: List[Optional[np.ndarray]]
    class_masks: List[np.ndarray]
    vm_rows: Optional[np.ndarray] = None
    scale_cpu: Optional[np.ndarray] = None
    scale_mem: Optional[np.ndarray] = None
    pool_idx: Optional[np.ndarray] = None
    pool_fixed_opp: Optional[np.ndarray] = None
    n_failed: int = 0
    cap_frac: float = 1.0
    shed_vms: int = 0
    fault_boundary: bool = False


@dataclass(frozen=True)
class _WindowTask:
    """One accounting window deferred into a horizon super-batch."""

    first_slot: int
    n_window: int
    allocation: Allocation
    acct: _AllocationAccounting
    migrations: int


class DataCenterSimulation:
    """Simulates one policy over a trace dataset.

    Args:
        dataset: the VM utilization traces.
        predictor: day-ahead predictor shared across policies (must expose
            ``predicted_slot`` and ``first_predictable_day``).
        policy: the allocation policy under test.
        power_model: per-server power model; defaults to the NTC server.
        perf: performance simulator supplying per-class stall curves,
            QoS floors and DRAM traffic coefficients.
        max_servers: fleet size (default 600, the paper's data center);
            mutually exclusive with ``fleet``, whose pool sizes define
            the total.
        start_slot: first simulated slot; defaults to the first slot with
            a full prediction window.
        n_slots: number of slots to simulate; defaults to the rest of the
            dataset (one week for the default 14-day traces).
        migration_energy_j: energy charged per VM migration at
            reallocation boundaries.  The paper ignores migration cost
            (default 0); setting e.g. 50-500 J/migration quantifies how
            much churn a dynamic policy can afford.
        psu: optional per-server power-supply model; when given, energy
            is accounted at the wall plug (DC power plus conversion
            losses) instead of the DC side the paper models.
        window_batch: account whole allocation windows at once (default)
            instead of slot by slot.  Results are bit-identical; the
            per-slot path remains the tested reference oracle.
        superbatch: concatenate consecutive accounting windows across
            allocation boundaries into horizon super-batches (default;
            requires ``window_batch``).  Per-slot-reallocation policies
            then aggregate with one scatter and one power evaluation per
            chunk instead of one per allocation.  Results are
            bit-identical; ``superbatch=False`` keeps the per-window
            path as the intermediate oracle.
        fleet: heterogeneous fleet specification.  When given (mutually
            exclusive with ``power_model`` and ``max_servers``), the
            fleet's pool sizes define the total server count, every
            server row carries a pool
            (model) index, and accounting evaluates each pool through
            its own cached :class:`VectorizedServerPower` tables,
            governor, QoS floors and stall/traffic curves — one
            evaluation per (batch, model).  A single-pool fleet
            reproduces the homogeneous engine bit-identically
            (``tests/test_hetero_equivalence.py``).
        faults: optional :class:`~repro.cloud.faults.FaultSchedule`
            covering the simulated horizon.  Allocation windows are cut
            at every fault-state change, policies see the reduced
            available capacity (``max_servers`` / per-pool sizes) plus
            a :class:`~repro.core.types.FaultWindow` in their context,
            and accounting throttles fleet power to the active cap
            budget.  A zero-event schedule is bit-identical to
            ``faults=None`` (``tests/test_fault_equivalence.py``).
        tracer: optional :class:`~repro.obs.tracer.RunTracer` receiving
            structured run/window/fault events.  The default is the
            no-op ``NULL_TRACER``; tracers only observe, so results are
            bit-identical with tracing on or off
            (``tests/test_obs_equivalence.py``).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            accumulating counters plus forecast / policy / allocate /
            account phase timings.  Same only-observes guarantee.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        predictor,
        policy: AllocationPolicy,
        power_model: Optional[ServerPowerModel] = None,
        perf: Optional[PerformanceSimulator] = None,
        max_servers: Optional[int] = None,
        start_slot: Optional[int] = None,
        n_slots: Optional[int] = None,
        migration_energy_j: float = 0.0,
        psu=None,
        window_batch: bool = True,
        superbatch: bool = True,
        fleet: Optional[FleetSpec] = None,
        faults=None,
        tracer=None,
        metrics=None,
    ):
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        if migration_energy_j < 0.0:
            raise ConfigurationError(
                "migration_energy_j must be non-negative"
            )
        self._migration_energy_j = migration_energy_j
        self._psu = psu
        self._window_batch = window_batch
        self._superbatch = superbatch and window_batch
        self._dataset = dataset
        self._predictor = predictor
        self._policy = policy
        self._fleet = fleet
        if fleet is not None:
            if power_model is not None:
                raise ConfigurationError(
                    "pass either power_model or fleet, not both"
                )
            if max_servers is not None:
                raise ConfigurationError(
                    "max_servers is derived from the fleet's pool "
                    "sizes; size the pools instead of passing it"
                )
            self._power = fleet.pools[0].power_model
            max_servers = fleet.total_servers
        else:
            self._power = (
                power_model
                if power_model is not None
                else ntc_server_power_model()
            )
            if max_servers is None:
                max_servers = 600
        self._perf = perf if perf is not None else _default_perf()
        self._max_servers = max_servers
        self._tables = cached_tables(self._power)
        spec = self._power.spec
        self._governor = DvfsGovernor(spec.opps, spec.f_max_ghz)
        self._f_max = spec.f_max_ghz

        first = predictor.first_predictable_day * SLOTS_PER_DAY
        self._start_slot = start_slot if start_slot is not None else first
        if self._start_slot < first:
            raise ConfigurationError(
                f"start_slot {self._start_slot} precedes the first "
                f"predictable slot {first}"
            )
        available = dataset.n_slots - self._start_slot
        self._n_slots = n_slots if n_slots is not None else available
        if self._n_slots < 1 or self._n_slots > available:
            raise ConfigurationError(
                f"n_slots must be in [1, {available}], got {self._n_slots}"
            )

        self._faults = faults
        self._reduced_fleets: Dict[tuple, FleetSpec] = {}
        self._nominal_power_w = 0.0
        if faults is not None:
            if faults.n_servers != self._max_servers:
                raise ConfigurationError(
                    f"fault schedule covers {faults.n_servers} servers "
                    f"but the fleet has {self._max_servers}"
                )
            horizon_end = self._start_slot + self._n_slots
            if (
                faults.horizon_start > self._start_slot
                or faults.horizon_end < horizon_end
            ):
                raise ConfigurationError(
                    f"fault schedule covers "
                    f"[{faults.horizon_start}, {faults.horizon_end}) but "
                    f"the simulation runs "
                    f"[{self._start_slot}, {horizon_end})"
                )
            if fleet is not None and not fleet.single_pool:
                expected = tuple(p.n_servers for p in fleet.pools)
                if faults.pool_sizes != expected:
                    raise ConfigurationError(
                        f"fault schedule pool_sizes {faults.pool_sizes} "
                        f"do not match the fleet's pool sizes "
                        f"{expected}; build the schedule with the "
                        f"fleet's per-pool server counts"
                    )
            self._nominal_power_w = self._compute_nominal_power()

        self._class_masks = self._build_class_masks()
        if fleet is not None:
            # Per-pool state only; the homogeneous-path attributes
            # alias pool 0's correctly calibrated tables (inspect_slot
            # reads them) instead of rebuilding them with the
            # hardcoded "ntc" platform against pool 0's OPP grid.
            self._build_pool_models(fleet)
            self._stall_tab = self._pool_stall_tabs[0]
            self._traffic_coeff = self._pool_traffic_coeff[0]
        else:
            self._vm_floor_ghz = self._build_vm_floors()
            self._stall_tab = self._build_stall_tables()
            coeffs = traffic_coefficients(self._perf)
            self._traffic_coeff = np.array(
                [coeffs[mc] for mc in ALL_MEMORY_CLASSES]
            )

    @classmethod
    def from_config(cls, dataset, predictor, policy, *args, config=None):
        """Build a simulation from a :class:`SimulationConfig`.

        A thin pass-through — ``cls(dataset, predictor, policy, *args,
        **config.kwargs())`` — so a config-built simulation is
        bit-identical to the equivalent keyword call.  Subclasses with
        extra positional arguments inherit it unchanged
        (``CloudSimulation.from_config(dataset, predictor, policy,
        schedule, config=...)``).

        Args:
            dataset: the VM utilization traces.
            predictor: shared day-ahead predictor.
            policy: the allocation policy.
            *args: extra positional constructor arguments of ``cls``.
            config: a :class:`~repro.dcsim.config.SimulationConfig`
                (default: all engine defaults).
        """
        from .config import SimulationConfig

        if config is None:
            config = SimulationConfig()
        return cls(dataset, predictor, policy, *args, **config.kwargs())

    # -- precomputation -----------------------------------------------------

    def _build_class_masks(self) -> List[np.ndarray]:
        classes = self._dataset.mem_classes()
        return [
            np.array([c is mc for c in classes], dtype=bool)
            for mc in ALL_MEMORY_CLASSES
        ]

    def _build_vm_floors(self) -> np.ndarray:
        return self._vm_floors_for(self._power.spec.opps, None)

    def _vm_floors_for(self, opps, qos_floor_ghz) -> np.ndarray:
        """Per-VM QoS frequency floor against one OPP table."""
        floors = self._perf.qos.qos_floors(opps)
        classes = self._dataset.mem_classes()
        arr = np.array([floors[c] for c in classes], dtype=float)
        if qos_floor_ghz is not None:
            arr = np.maximum(arr, qos_floor_ghz)
        return arr

    def _build_stall_tables(self) -> np.ndarray:
        return self._stall_tables_for(self._power.spec.opps, "ntc")

    def _stall_tables_for(self, opps, platform: str) -> np.ndarray:
        """Per-(class, OPP) stall fractions for one platform's curves."""
        freqs = opps.frequencies_ghz
        table = np.zeros((len(ALL_MEMORY_CLASSES), len(freqs)))
        for ci, mc in enumerate(ALL_MEMORY_CLASSES):
            timing = self._perf.timing(mc, platform)
            for fi, freq in enumerate(freqs):
                table[ci, fi] = timing.stall_fraction(freq)
        return table

    def _build_pool_models(self, fleet: FleetSpec) -> None:
        """Per-pool tables, governors, floors and stall/traffic curves.

        Every pool gets its own cached :class:`VectorizedServerPower`
        coefficients and :class:`DvfsGovernor`; the reference per-VM
        floors (``self._vm_floor_ghz``, what the allocation context
        reports) are pool 0's row so a single-pool fleet presents
        policies the exact arrays the homogeneous engine would.
        """
        self._pool_tables = [
            cached_tables(pool.power_model) for pool in fleet.pools
        ]
        self._pool_governors = [
            DvfsGovernor(pool.opps, pool.f_max_ghz)
            for pool in fleet.pools
        ]
        self._pool_fmax = np.array(
            [pool.f_max_ghz for pool in fleet.pools]
        )
        self._pool_fmin = np.array(
            [pool.opps.f_min_ghz for pool in fleet.pools]
        )
        self._pool_stall_tabs = [
            self._stall_tables_for(pool.opps, pool.perf_platform)
            for pool in fleet.pools
        ]
        self._pool_traffic_coeff = []
        for pool in fleet.pools:
            coeffs = traffic_coefficients(self._perf, pool.perf_platform)
            self._pool_traffic_coeff.append(
                np.array([coeffs[mc] for mc in ALL_MEMORY_CLASSES])
            )
        self._pool_fixed_policy = np.array(
            [pool.opp_policy == "fixed-opt" for pool in fleet.pools]
        )
        # Fallback pin frequency of "fixed-opt" pools when the policy
        # supplies no planned frequency (online policies): the pool's
        # energy-optimal OPP, the frequency the policy name promises.
        self._pool_f_opt = np.array(
            [
                pool.power_model.optimal_frequency_ghz()
                if pool.opp_policy == "fixed-opt"
                else 0.0
                for pool in fleet.pools
            ]
        )
        self._vm_floor_by_pool = np.stack(
            [
                self._vm_floors_for(pool.opps, pool.qos_floor_ghz)
                for pool in fleet.pools
            ]
        )
        self._vm_floor_ghz = self._vm_floor_by_pool[0]

    def _compute_nominal_power(self) -> float:
        """Fleet nominal full-load power (the cap budget reference).

        Every server at full load at its pool's ``Fmax``, run through
        the PSU transform when wall-plug accounting is on — the same
        per-server arithmetic the accounting tiers apply, so a cap of
        1.0 can never throttle a physically realizable fleet.
        """
        if self._fleet is not None:
            pools = [
                (pool.n_servers, pool.power_model, pool.f_max_ghz)
                for pool in self._fleet.pools
            ]
        else:
            pools = [(self._max_servers, self._power, self._f_max)]
        total = 0.0
        for count, model, f_max in pools:
            p = model.full_load_power_w(f_max)
            if self._psu is not None:
                p = (
                    p
                    + self._psu.loss_fixed_w
                    + self._psu.loss_prop * p
                    + self._psu.loss_sq_per_w * p**2
                )
            total += count * p
        return total

    def _fault_window(self, slot: int) -> Optional[FaultWindow]:
        """The fault state of the window starting at ``slot``.

        ``None`` both without a schedule and in all-up, uncapped
        windows — the zero-event path stays on the exact no-fault code.
        """
        faults = self._faults
        if faults is None:
            return None
        n_failed = faults.n_failed(slot)
        cap = faults.cap_frac(slot)
        if n_failed == 0 and cap >= 1.0:
            return None
        pool_available = None
        if self._fleet is not None:
            failed = faults.pool_failed(slot)
            pool_available = tuple(
                pool.n_servers - down
                for pool, down in zip(self._fleet.pools, failed)
            )
        return FaultWindow(
            available_servers=self._max_servers - n_failed,
            n_failed=n_failed,
            cap_frac=cap,
            pool_available=pool_available,
        )

    def _reduced_fleet(self, pool_available: tuple) -> FleetSpec:
        """The fleet with per-pool capacity reduced to the up servers.

        Cached per availability tuple so repeated windows of one
        outage hand policies the *same* fleet object —
        :class:`~repro.core.fleet.FleetEpactPolicy`'s one-entry
        ``F_opt`` cache keys on fleet identity.
        """
        cached = self._reduced_fleets.get(pool_available)
        if cached is None:
            cached = FleetSpec(
                pools=tuple(
                    dc_replace(pool, n_servers=int(up))
                    for pool, up in zip(
                        self._fleet.pools, pool_available
                    )
                )
            )
            self._reduced_fleets[pool_available] = cached
        return cached

    # -- public API ---------------------------------------------------------

    @property
    def start_slot(self) -> int:
        """First simulated slot index."""
        return self._start_slot

    @property
    def n_slots(self) -> int:
        """Number of simulated slots."""
        return self._n_slots

    def run(self) -> SimulationResult:
        """Simulate all slots and return the per-slot records.

        The policy is invoked at its own reallocation cadence (every slot
        for EPACT, every 24 slots for the day-ahead consolidation
        baselines); accounting always happens per slot.  Everything that
        depends only on the allocation (VM->server map, active set, QoS
        floors, fixed OPP indices, scatter indices) is computed once per
        allocation and reused across its slots; with ``window_batch``
        (the default) the window's slots are additionally accounted in
        one batched pass.
        """
        result = SimulationResult(policy_name=self._policy.name)
        self._trace_run_start()
        period = max(1, int(self._policy.reallocation_period_slots))
        counter = MigrationCounter()
        # Windows under an active fault layer can shed VMs, so the maps
        # no longer always cover the full population; migrations then
        # run through the stateless intersect path over commonly-placed
        # VMs.  The zero-event path keeps the cached counter exactly.
        stateless = self._faults is not None and self._faults.has_events
        all_rows: Optional[np.ndarray] = None
        prev_rows = prev_map = prev_pools = None
        prev_fw: Optional[FaultWindow] = None
        tasks: List[_WindowTask] = []
        slot = self._start_slot
        end = self._start_slot + self._n_slots
        while slot < end:
            n_window = min(period, end - slot)
            fw = None
            if self._faults is not None:
                n_window = min(
                    n_window,
                    max(1, self._faults.next_change(slot) - slot),
                )
                fw = self._fault_window(slot)
            allocation = self._allocate_window(slot, n_window, fw)
            with self._metrics.phase("allocate"):
                acct = self._prepare_allocation(
                    allocation, fault=fw, fault_boundary=fw != prev_fw
                )
            if fw != prev_fw:
                self._trace_fault_transition(slot, fw)
            prev_fw = fw
            if stateless:
                if all_rows is None:
                    all_rows = np.arange(self._dataset.n_vms)
                rows = (
                    acct.vm_rows if acct.vm_rows is not None else all_rows
                )
                if prev_rows is None:
                    migrations = 0
                else:
                    _, ia, ib = np.intersect1d(
                        prev_rows,
                        rows,
                        assume_unique=True,
                        return_indices=True,
                    )
                    migrations = count_migrations(
                        prev_map[ia],
                        acct.vm2srv[ib],
                        previous_pools=prev_pools,
                        new_pools=acct.pool_idx,
                    )
                prev_rows, prev_map = rows, acct.vm2srv
                prev_pools = acct.pool_idx
            else:
                migrations = counter.update(acct.vm2srv, acct.pool_idx)
            self._trace_window(slot, n_window, allocation, acct, migrations)
            if self._superbatch:
                tasks.append(
                    _WindowTask(slot, n_window, allocation, acct, migrations)
                )
            elif self._window_batch:
                with self._metrics.phase("account"):
                    result.records.extend(
                        self._account_window(
                            slot, n_window, allocation, acct, migrations
                        )
                    )
            else:
                with self._metrics.phase("account"):
                    for s in range(slot, slot + n_window):
                        result.records.append(
                            self._account_slot(
                                s,
                                allocation,
                                acct,
                                migrations if s == slot else 0,
                            )
                        )
            slot += n_window
        if tasks:
            with self._metrics.phase("account"):
                for window_records in self._account_horizon(tasks):
                    result.records.extend(window_records)
        self._trace_run_end(result)
        return result

    # -- tracing ------------------------------------------------------------
    #
    # Tracers only observe: every emitted field is computed from state
    # the run produces anyway, so results are bit-identical with
    # tracing on or off, and same-seed event streams are byte-identical
    # (asserted by tests/test_obs_equivalence.py).

    #: Tag carried by ``run_start`` events; subclasses override.
    _ENGINE_NAME = "fixed"

    def _trace_run_start(self, n_vms: Optional[int] = None) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        tracer.emit(
            "run_start",
            policy=self._policy.name,
            engine=self._ENGINE_NAME,
            start_slot=self._start_slot,
            n_slots=self._n_slots,
            n_servers=self._max_servers,
            n_vms=self._dataset.n_vms if n_vms is None else n_vms,
            n_pools=(
                self._fleet.n_pools if self._fleet is not None else 1
            ),
        )
        if self._faults is not None:
            self._faults.trace_events(tracer)

    def _trace_window(
        self, slot, n_window, allocation, acct, migrations, **extra
    ) -> None:
        tracer = self._tracer
        if self._metrics.enabled:
            self._metrics.counter("windows")
            self._metrics.counter("migrations", migrations)
        if not tracer.enabled:
            return
        fields = dict(
            slot=slot,
            n_window=n_window,
            case=allocation.case,
            n_servers=acct.n_srv,
            active_servers=int(np.count_nonzero(acct.active)),
            migrations=migrations,
            forced_placements=allocation.forced_placements,
            **extra,
        )
        if self._faults is not None:
            fields["fault_migrations"] = (
                migrations if acct.fault_boundary else 0
            )
            fields["shed_vms"] = acct.shed_vms
        if acct.pool_idx is not None:
            n_pools = self._fleet.n_pools if self._fleet is not None else 1
            fields["pool_active"] = np.bincount(
                acct.pool_idx[acct.active], minlength=n_pools
            )
        tracer.emit("allocation_window", **fields)

    def _trace_fault_transition(self, slot: int, fw) -> None:
        tracer = self._tracer
        if not tracer.enabled or self._faults is None:
            return
        if fw is None:
            tracer.emit(
                "fault_transition",
                slot=slot,
                n_failed=0,
                cap_frac=1.0,
                available_servers=self._max_servers,
            )
        else:
            tracer.emit(
                "fault_transition",
                slot=slot,
                n_failed=fw.n_failed,
                cap_frac=fw.cap_frac,
                available_servers=fw.available_servers,
            )

    def _trace_run_end(self, result: SimulationResult) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        tracer.emit(
            "run_end",
            policy=self._policy.name,
            n_records=len(result.records),
            energy_mj=result.total_energy_mj,
            violations=result.total_violations,
            migrations=result.total_migrations,
        )

    # -- internals ----------------------------------------------------------

    def _window_predictions(
        self,
        slot: int,
        end: int,
        vm_rows: Optional[np.ndarray] = None,
        scale: Optional[tuple] = None,
    ):
        """The window's predicted patterns, one hstacked pair.

        Shared by the fixed-population context assembly and the cloud
        engine's (rows/scale restricted) one, so both feed policies the
        same arrays.
        """
        cpu_parts, mem_parts = [], []
        for s in range(slot, end):
            pred_cpu, pred_mem = self._predictor.predicted_slot(s)
            if vm_rows is not None:
                pred_cpu = pred_cpu[vm_rows]
                pred_mem = pred_mem[vm_rows]
            cpu_parts.append(pred_cpu)
            mem_parts.append(pred_mem)
        pred_cpu = (
            np.hstack(cpu_parts) if len(cpu_parts) > 1 else cpu_parts[0]
        )
        pred_mem = (
            np.hstack(mem_parts) if len(mem_parts) > 1 else mem_parts[0]
        )
        if scale is not None:
            pred_cpu = pred_cpu * scale[0][:, None]
            pred_mem = pred_mem * scale[1][:, None]
        return pred_cpu, pred_mem

    def _allocate_window(
        self,
        slot: int,
        n_window: int,
        fault: Optional[FaultWindow] = None,
    ) -> Allocation:
        """Ask the policy to pack against the window's predicted patterns.

        Under a fault window the policy sees the *available* capacity —
        reduced ``max_servers`` and, on heterogeneous fleets, a reduced
        per-pool fleet — so every policy's existing packing (including
        ``force_place_remaining``) becomes its emergency re-placement:
        VMs of failed servers simply have nowhere else to go.
        """
        end = slot + n_window
        with self._metrics.phase("forecast"):
            pred_cpu, pred_mem = self._window_predictions(slot, end)
        max_servers = self._max_servers
        fleet = self._fleet
        if fault is not None:
            max_servers = fault.available_servers
            if fleet is not None:
                fleet = self._reduced_fleet(fault.pool_available)
        ctx = AllocationContext(
            pred_cpu=pred_cpu,
            pred_mem=pred_mem,
            power_model=self._power,
            max_servers=max_servers,
            qos_floor_ghz=self._vm_floor_ghz,
            fleet=fleet,
            faults=fault,
        )
        with self._metrics.phase("policy"):
            return self._policy.allocate(ctx)

    def _prepare_allocation(
        self,
        allocation: Allocation,
        vm_rows: Optional[np.ndarray] = None,
        scale: Optional[tuple] = None,
        fault: Optional[FaultWindow] = None,
        fault_boundary: bool = False,
    ) -> "_AllocationAccounting":
        """Hoist allocation-dependent invariants out of the slot loop.

        Args:
            allocation: the policy's placement for the window.
            vm_rows: optional global dataset rows covered by the
                allocation (the cloud engine's active VM set, in the
                same order the allocation's local ids index).  ``None``
                means the full fleet, exactly the seed behaviour.
            scale: optional ``(cpu, mem)`` per-covered-VM utilization
                factors (resize events).
            fault: the window's fault state (``None`` = no active
                fault), recorded on the accounting for the cap term and
                the per-slot fault metrics.
            fault_boundary: the window starts at a fault-state change.
        """
        n_ctx = (
            self._dataset.n_vms if vm_rows is None else int(vm_rows.shape[0])
        )
        vm2srv = None
        shed_vms = 0
        if allocation.shed_vm_ids:
            # Degraded operation: the policy shed VMs it could not
            # place on the surviving capacity.  Accounting covers only
            # the placed VMs; shed VMs accrue SLA debt via the per-slot
            # shed count.
            shed = np.unique(
                np.asarray(allocation.shed_vm_ids, dtype=int)
            )
            mapping = allocation.vm_to_server(n_ctx, missing_ok=True)
            unplaced = np.flatnonzero(mapping < 0)
            if unplaced.shape != shed.shape or np.any(unplaced != shed):
                raise ConfigurationError(
                    "shed_vm_ids must list exactly the unplaced VMs "
                    f"(shed {shed.tolist()}, unplaced "
                    f"{unplaced.tolist()})"
                )
            placed = mapping >= 0
            vm2srv = mapping[placed]
            vm_rows = (
                np.flatnonzero(placed)
                if vm_rows is None
                else vm_rows[placed]
            )
            if scale is not None:
                scale = (scale[0][placed], scale[1][placed])
            shed_vms = int(shed.size)
        if vm_rows is None:
            n_vms = self._dataset.n_vms
            vm_floors = self._vm_floor_ghz
            class_masks = self._class_masks
        else:
            n_vms = int(vm_rows.shape[0])
            vm_floors = self._vm_floor_ghz[vm_rows]
            class_masks = [mask[vm_rows] for mask in self._class_masks]
        n_samples = SAMPLES_PER_SLOT
        if vm2srv is None:
            vm2srv = allocation.vm_to_server(n_vms)
        n_srv = len(allocation.plans)

        active = np.array(
            [bool(plan.vm_ids) for plan in allocation.plans], dtype=bool
        )

        pool_idx = pool_fixed_opp = None
        if self._fleet is None:
            # Per-server QoS frequency floor = max floor of hosted VMs.
            floors = np.full(n_srv, self._power.spec.opps.f_min_ghz)
            np.maximum.at(floors, vm2srv, vm_floors)

            if allocation.dynamic_governor:
                opp_idx_fixed = None
            else:
                planned = np.array(
                    [plan.planned_freq_ghz for plan in allocation.plans]
                )
                idx = np.searchsorted(
                    self._governor.frequencies_ghz,
                    planned - _EPS,
                    side="left",
                )
                idx = np.clip(
                    idx, 0, len(self._governor.frequencies_ghz) - 1
                )
                opp_idx_fixed = np.repeat(idx[:, None], n_samples, axis=1)
        else:
            opp_idx_fixed = None
            pool_idx = self._resolve_pool_idx(allocation, n_srv)
            # Per-server QoS floor against the *host pool's* table: each
            # VM's floor is looked up in its server's pool row.
            vm_floor_by_pool = (
                self._vm_floor_by_pool
                if vm_rows is None
                else self._vm_floor_by_pool[:, vm_rows]
            )
            floors = self._pool_fmin[pool_idx].copy()
            if n_vms:
                np.maximum.at(
                    floors,
                    vm2srv,
                    vm_floor_by_pool[
                        pool_idx[vm2srv], np.arange(n_vms)
                    ],
                )
            # Servers pinned to a fixed frequency: fixed-cap allocations
            # pin every server, "fixed-opt" pools pin theirs even under
            # dynamic-governor policies.  Indices are quantized against
            # each server's own pool table.  Fixed-cap allocations keep
            # the homogeneous semantics exactly (plan frequency, no
            # floor — COAT-style policies own their caps); pool-policy
            # pins fall back to the pool's F_opt when the policy left
            # no planned frequency (online policies) and are raised to
            # the server's QoS floor — the pin is the *pool's* choice,
            # so it must not undercut the hosted workloads.
            pinned = (
                np.ones(n_srv, dtype=bool)
                if not allocation.dynamic_governor
                else self._pool_fixed_policy[pool_idx]
            )
            if pinned.any():
                pool_fixed_opp = np.full(n_srv, -1, dtype=int)
                planned = np.array(
                    [plan.planned_freq_ghz for plan in allocation.plans]
                )
                for m in range(self._fleet.n_pools):
                    rows = np.flatnonzero((pool_idx == m) & pinned)
                    if rows.size:
                        governor_m = self._pool_governors[m]
                        freqs_m = governor_m.frequencies_ghz
                        pin_freq = planned[rows]
                        if allocation.dynamic_governor:
                            pin_freq = np.where(
                                pin_freq > 0.0,
                                pin_freq,
                                self._pool_f_opt[m],
                            )
                        idx = np.clip(
                            np.searchsorted(
                                freqs_m, pin_freq - _EPS, side="left"
                            ),
                            0,
                            len(freqs_m) - 1,
                        )
                        if allocation.dynamic_governor:
                            idx = np.maximum(
                                idx,
                                governor_m.floor_indices(floors[rows]),
                            )
                        pool_fixed_opp[rows] = idx

        # Flattened (server, sample) bin per (VM, sample) cell: one
        # np.bincount scatter per slot replaces the much slower
        # buffered np.add.at.
        flat_idx = (
            vm2srv[:, None] * n_samples + np.arange(n_samples)[None, :]
        ).ravel()
        class_flat = [
            flat_idx.reshape(n_vms, n_samples)[mask].ravel()
            if mask.any()
            else None
            for mask in class_masks
        ]
        scale_cpu, scale_mem = scale if scale is not None else (None, None)
        return _AllocationAccounting(
            vm2srv=vm2srv,
            n_srv=n_srv,
            active=active,
            floors=floors,
            opp_idx_fixed=opp_idx_fixed,
            flat_idx=flat_idx,
            class_flat=class_flat,
            class_masks=class_masks,
            vm_rows=vm_rows,
            scale_cpu=scale_cpu,
            scale_mem=scale_mem,
            pool_idx=pool_idx,
            pool_fixed_opp=pool_fixed_opp,
            n_failed=fault.n_failed if fault is not None else 0,
            cap_frac=fault.cap_frac if fault is not None else 1.0,
            shed_vms=shed_vms,
            fault_boundary=fault_boundary,
        )

    def _resolve_pool_idx(
        self, allocation: Allocation, n_srv: int
    ) -> np.ndarray:
        """Validated per-server pool indices of a fleet allocation."""
        fleet = self._fleet
        if allocation.server_pools is not None:
            pool_idx = np.asarray(allocation.server_pools, dtype=int)
            if pool_idx.shape != (n_srv,):
                raise ConfigurationError(
                    f"server_pools must tag all {n_srv} plans, got "
                    f"shape {pool_idx.shape}"
                )
        elif fleet.single_pool:
            pool_idx = np.zeros(n_srv, dtype=int)
        else:
            raise ConfigurationError(
                "allocations on a multi-pool fleet must set "
                "Allocation.server_pools"
            )
        if pool_idx.size and (
            pool_idx.min() < 0 or pool_idx.max() >= fleet.n_pools
        ):
            raise ConfigurationError("server_pools index out of range")
        counts = np.bincount(pool_idx, minlength=fleet.n_pools)
        for m, pool in enumerate(fleet.pools):
            if counts[m] > pool.n_servers:
                raise ConfigurationError(
                    f"pool {pool.name!r} capacity exceeded: "
                    f"{int(counts[m])} > {pool.n_servers} servers"
                )
        return pool_idx

    def _eval_pools(
        self,
        util: np.ndarray,
        util_by_class: np.ndarray,
        floors: np.ndarray,
        pool_map: np.ndarray,
        fixed_opp: Optional[np.ndarray] = None,
    ) -> tuple:
        """Per-(batch, model) governor + power evaluation.

        The heterogeneous counterpart of the inline homogeneous blocks:
        ``util`` has shape ``(..., n_samples)`` with arbitrary leading
        (…, server) axes, and ``pool_map``/``floors``/``fixed_opp``
        share the leading shape.  For each fleet pool the selected rows
        run through *that pool's* governor, stall table, traffic
        coefficients and cached :class:`VectorizedServerPower` in one
        call — one evaluation per (batch, model), never per server.
        Rows with pool ``-1`` (super-batch padding) stay zero; they are
        excluded from every reduction by prefix slicing anyway.

        All arithmetic is the same elementwise kernel the homogeneous
        blocks use (shared ``DvfsGovernor._demand_indices``, the same
        stall accumulation order, the same ``tensordot`` contraction),
        so with a single-pool fleet the results are bit-identical to
        the homogeneous engine.

        Returns:
            ``(freqs_ghz, power_w)`` arrays shaped like ``util``.
        """
        sps = util.shape[-1]
        n_classes = util_by_class.shape[0]
        # Whole-tensor selections (single-pool fleets — every mix
        # sweep's homogeneous controls) evaluate through reshaped
        # *views*, skipping the chunk-sized copies boolean indexing
        # would make; only the small per-(…, server) floor/pin vectors
        # are materialized.
        for m in range(self._fleet.n_pools):
            sel = pool_map == m
            if not sel.any():
                continue
            if sel.all():
                fl = np.ascontiguousarray(
                    np.broadcast_to(floors, pool_map.shape)
                ).reshape(-1)
                fx = (
                    np.ascontiguousarray(
                        np.broadcast_to(fixed_opp, pool_map.shape)
                    ).reshape(-1)
                    if fixed_opp is not None
                    else None
                )
                f, p = self._eval_one_pool(
                    m,
                    util.reshape(-1, sps),
                    fl,
                    fx,
                    util_by_class.reshape(n_classes, -1, sps),
                )
                return f.reshape(util.shape), p.reshape(util.shape)
            break
        freqs = np.zeros_like(util)
        power = np.zeros_like(util)
        for m in range(self._fleet.n_pools):
            sel = pool_map == m
            if not sel.any():
                continue
            f, p = self._eval_one_pool(
                m,
                util[sel],
                floors[sel],
                fixed_opp[sel] if fixed_opp is not None else None,
                util_by_class[:, sel],
            )
            freqs[sel] = f
            power[sel] = p
        return freqs, power

    def _eval_one_pool(
        self,
        m: int,
        u: np.ndarray,
        fl: np.ndarray,
        fx: Optional[np.ndarray],
        ubc: np.ndarray,
    ) -> tuple:
        """One pool's governor + power kernel over ``(rows, samples)``.

        The shared arithmetic of both :meth:`_eval_pools` routes; the
        elementwise operations (and their order) match the homogeneous
        blocks exactly, preserving the bit-identity guarantees.
        """
        # Pinned rows never read the governor's choice, so a fully
        # pinned selection (fixed-cap allocations) skips the whole
        # demand-quantization pass; broadcast indices are read-only
        # but only ever used for table lookups below.
        pinned = fx >= 0 if fx is not None else None
        if pinned is not None and pinned.all():
            idx = np.broadcast_to(fx[:, None], u.shape)
        else:
            idx = self._pool_governors[m].opp_indices(u, fl)
            if pinned is not None and pinned.any():
                idx[pinned] = fx[pinned][:, None]
        tables = self._pool_tables[m]
        f = tables.freqs_ghz[idx]
        busy = u * self._pool_fmax[m] / (100.0 * f)
        stall_num = np.zeros_like(u)
        stall_tab = self._pool_stall_tabs[m]
        for ci in range(ubc.shape[0]):
            stall_num += ubc[ci] * stall_tab[ci][idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            stall = np.where(
                u > _EPS, stall_num / np.maximum(u, _EPS), 0.0
            )
        traffic = np.tensordot(
            self._pool_traffic_coeff[m], ubc, axes=([0], [0])
        )
        return f, tables.power_w(idx, busy, stall, traffic)

    def _account_slot(
        self,
        slot: int,
        allocation: Allocation,
        acct: "_AllocationAccounting",
        migrations: int = 0,
    ) -> SlotRecord:
        n_srv = acct.n_srv
        if acct.vm_rows is None:
            real_cpu, real_mem = self._dataset.slot_slice(slot)
        else:
            lo = slot * SAMPLES_PER_SLOT
            hi = lo + SAMPLES_PER_SLOT
            real_cpu = self._dataset.cpu_pct[acct.vm_rows, lo:hi]
            real_mem = self._dataset.mem_pct[acct.vm_rows, lo:hi]
        if acct.scale_cpu is not None:
            real_cpu = real_cpu * acct.scale_cpu[:, None]
            real_mem = real_mem * acct.scale_mem[:, None]
        n_samples = real_cpu.shape[1]
        n_bins = n_srv * n_samples

        # np.bincount accumulates in input order, exactly like np.add.at,
        # but through a single C loop instead of the buffered ufunc.
        util = np.bincount(
            acct.flat_idx, weights=real_cpu.ravel(), minlength=n_bins
        ).reshape(n_srv, n_samples)
        mem_util = np.bincount(
            acct.flat_idx, weights=real_mem.ravel(), minlength=n_bins
        ).reshape(n_srv, n_samples)

        util_by_class = np.zeros((len(acct.class_masks), n_srv, n_samples))
        for ci, mask in enumerate(acct.class_masks):
            flat = acct.class_flat[ci]
            if flat is not None:
                util_by_class[ci] = np.bincount(
                    flat, weights=real_cpu[mask].ravel(), minlength=n_bins
                ).reshape(n_srv, n_samples)

        active = acct.active
        floors = acct.floors

        if acct.pool_idx is not None:
            freqs, power = self._eval_pools(
                util,
                util_by_class,
                floors,
                acct.pool_idx,
                acct.pool_fixed_opp,
            )
        else:
            if acct.opp_idx_fixed is None:
                opp_idx = self._governor.opp_indices(util, floors)
            else:
                opp_idx = acct.opp_idx_fixed

            freqs = self._tables.freqs_ghz[opp_idx]
            # Work-conserving busy fraction: may exceed 1 when a
            # fixed-cap policy is overrun; the excess is deferred work
            # whose dynamic energy is still charged (see
            # VectorizedServerPower.power_w).
            busy = util * self._f_max / (100.0 * freqs)

            stall_num = np.zeros_like(util)
            for ci in range(util_by_class.shape[0]):
                stall_num += (
                    util_by_class[ci] * self._stall_tab[ci][opp_idx]
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                stall = np.where(
                    util > _EPS, stall_num / np.maximum(util, _EPS), 0.0
                )

            traffic = np.tensordot(
                self._traffic_coeff, util_by_class, axes=([0], [0])
            )

            power = self._tables.power_w(opp_idx, busy, stall, traffic)
        power = power * active[:, None]
        if self._psu is not None:
            # Vectorized quadratic PSU loss; fixed loss only for servers
            # that are actually powered.
            power = (
                power
                + self._psu.loss_fixed_w * active[:, None]
                + self._psu.loss_prop * power
                + self._psu.loss_sq_per_w * power**2
            )
        capped_samples = 0
        if acct.cap_frac < 1.0:
            # Fleet power cap: samples whose aggregate draw exceeds the
            # budget are throttled proportionally (rack-level power
            # capping clamps every server's limit by the same factor).
            budget = self._nominal_power_w * acct.cap_frac
            fleet_w = power.sum(axis=0)
            scale_cap = np.minimum(
                1.0, budget / np.maximum(fleet_w, _EPS)
            )
            capped_samples = int((scale_cap < 1.0).sum())
            power = power * scale_cap[None, :]
        energy_j = float(power.sum() * SAMPLE_PERIOD_S)
        energy_j += migrations * self._migration_energy_j

        cap = allocation.violation_cap_pct
        overutilized = (util > cap + _EPS) | (mem_util > 100.0 + _EPS)
        violations = int((overutilized & active[:, None]).sum())

        # Selecting active rows directly is bit-identical to the seed's
        # dense (server, sample) mask — both flatten the same elements in
        # row-major order — without materializing the mask.
        mean_freq = float(freqs[active].mean()) if active.any() else 0.0
        return SlotRecord(
            slot_index=slot,
            case=allocation.case,
            n_active_servers=int(active.sum()),
            violations=violations,
            forced_placements=allocation.forced_placements,
            energy_j=energy_j,
            mean_freq_ghz=mean_freq,
            f_opt_ghz=allocation.f_opt_ghz or 0.0,
            migrations=migrations,
            shed_vms=acct.shed_vms,
            n_failed_servers=acct.n_failed,
            capped_samples=capped_samples,
            fault_migrations=(
                migrations if acct.fault_boundary else 0
            ),
        )

    def _account_window(
        self,
        first_slot: int,
        n_window: int,
        allocation: Allocation,
        acct: "_AllocationAccounting",
        migrations: int,
    ) -> List[SlotRecord]:
        """Account a whole allocation window in one batched pass.

        Stacks the window's real-trace slots into ``(n_window, n_servers,
        n_samples)`` tensors, aggregates them with a single bincount
        scatter over flattened (slot, server, sample) bins and evaluates
        governor, stall, traffic and power for the whole window at once.
        Every per-slot quantity is reduced over the same contiguous slice
        in the same element order as :meth:`_account_slot`, so the
        emitted records are bit-identical to the per-slot reference.
        """
        n_srv = acct.n_srv
        sps = SAMPLES_PER_SLOT
        lo = first_slot * sps
        hi = (first_slot + n_window) * sps
        if acct.vm_rows is None:
            n_vms = self._dataset.n_vms
            real_cpu = self._dataset.cpu_pct[:, lo:hi]
            real_mem = self._dataset.mem_pct[:, lo:hi]
        else:
            n_vms = int(acct.vm_rows.shape[0])
            real_cpu = self._dataset.cpu_pct[acct.vm_rows, lo:hi]
            real_mem = self._dataset.mem_pct[acct.vm_rows, lo:hi]
        if acct.scale_cpu is not None:
            # Scaling before the per-slot reshape applies the same
            # elementwise multiply the per-slot path performs, keeping
            # the scatter inputs (hence all sums) bit-identical.
            real_cpu = real_cpu * acct.scale_cpu[:, None]
            real_mem = real_mem * acct.scale_mem[:, None]
        real_cpu = real_cpu.reshape(n_vms, n_window, sps)
        real_mem = real_mem.reshape(n_vms, n_window, sps)
        n_bins = n_window * n_srv * sps

        # Flattened (slot, server, sample) bin per (VM, slot, sample)
        # cell.  Raveling in (VM, slot, sample) order keeps the VMs of
        # every bin in ascending order — the same accumulation order as
        # the per-slot scatter, hence bit-identical sums.
        flat = (
            acct.flat_idx.reshape(n_vms, 1, sps)
            + (np.arange(n_window) * (n_srv * sps))[None, :, None]
        )
        util = np.bincount(
            flat.ravel(), weights=real_cpu.ravel(), minlength=n_bins
        ).reshape(n_window, n_srv, sps)
        mem_util = np.bincount(
            flat.ravel(), weights=real_mem.ravel(), minlength=n_bins
        ).reshape(n_window, n_srv, sps)

        util_by_class = np.zeros(
            (len(acct.class_masks), n_window, n_srv, sps)
        )
        for ci, mask in enumerate(acct.class_masks):
            if acct.class_flat[ci] is not None:
                util_by_class[ci] = np.bincount(
                    flat[mask].ravel(),
                    weights=real_cpu[mask].ravel(),
                    minlength=n_bins,
                ).reshape(n_window, n_srv, sps)

        active = acct.active
        floors = acct.floors

        if acct.pool_idx is not None:
            shape = (n_window, n_srv)
            freqs, power = self._eval_pools(
                util,
                util_by_class,
                np.broadcast_to(floors[None], shape),
                np.broadcast_to(acct.pool_idx[None], shape),
                (
                    np.broadcast_to(acct.pool_fixed_opp[None], shape)
                    if acct.pool_fixed_opp is not None
                    else None
                ),
            )
        else:
            if acct.opp_idx_fixed is None:
                opp_idx = self._governor.opp_indices_window(util, floors)
            else:
                opp_idx = np.broadcast_to(
                    acct.opp_idx_fixed[None], (n_window, n_srv, sps)
                )

            freqs = self._tables.freqs_ghz[opp_idx]
            busy = util * self._f_max / (100.0 * freqs)

            stall_num = np.zeros_like(util)
            for ci in range(util_by_class.shape[0]):
                stall_num += (
                    util_by_class[ci] * self._stall_tab[ci][opp_idx]
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                stall = np.where(
                    util > _EPS, stall_num / np.maximum(util, _EPS), 0.0
                )

            traffic = np.tensordot(
                self._traffic_coeff, util_by_class, axes=([0], [0])
            )

            power = self._tables.power_w(opp_idx, busy, stall, traffic)
        power = power * active[None, :, None]
        if self._psu is not None:
            power = (
                power
                + self._psu.loss_fixed_w * active[None, :, None]
                + self._psu.loss_prop * power
                + self._psu.loss_sq_per_w * power**2
            )

        capped = np.zeros(n_window, dtype=int)
        if acct.cap_frac < 1.0:
            # Same per-sample throttle as the per-slot oracle, batched
            # over the window: the reduction axis (servers) has the
            # same length and order, so the budgets agree bit-exactly.
            budget = self._nominal_power_w * acct.cap_frac
            fleet_w = power.sum(axis=1)
            scale_cap = np.minimum(
                1.0, budget / np.maximum(fleet_w, _EPS)
            )
            capped = (scale_cap < 1.0).sum(axis=1)
            power = power * scale_cap[:, None, :]

        cap = allocation.violation_cap_pct
        overutilized = (util > cap + _EPS) | (mem_util > 100.0 + _EPS)
        violations = (overutilized & active[None, :, None]).sum(axis=(1, 2))

        n_active = int(active.sum())
        any_active = bool(active.any())
        records: List[SlotRecord] = []
        for w in range(n_window):
            energy_j = float(power[w].sum() * SAMPLE_PERIOD_S)
            if w == 0:
                energy_j += migrations * self._migration_energy_j
            mean_freq = (
                float(freqs[w][active].mean()) if any_active else 0.0
            )
            records.append(
                SlotRecord(
                    slot_index=first_slot + w,
                    case=allocation.case,
                    n_active_servers=n_active,
                    violations=int(violations[w]),
                    forced_placements=allocation.forced_placements,
                    energy_j=energy_j,
                    mean_freq_ghz=mean_freq,
                    f_opt_ghz=allocation.f_opt_ghz or 0.0,
                    migrations=migrations if w == 0 else 0,
                    shed_vms=acct.shed_vms,
                    n_failed_servers=acct.n_failed,
                    capped_samples=int(capped[w]),
                    fault_migrations=(
                        migrations
                        if w == 0 and acct.fault_boundary
                        else 0
                    ),
                )
            )
        return records

    def _account_horizon(
        self, tasks: List["_WindowTask"]
    ) -> List[List[SlotRecord]]:
        """Account deferred windows in memory-bounded super-batches.

        Windows are flushed in order and never split across chunks; a
        chunk closes when adding the next window would push either
        transient family — padded (slot, server, sample) cells times
        the class count, or (VM, slot, sample) scatter cells — past
        ``_SUPERBATCH_MAX_CELLS`` (a single oversized window still
        forms its own chunk — that is exactly the per-window batch the
        PR 2 path already handles).  Returns one record list per task,
        in task order.
        """
        sps = SAMPLES_PER_SLOT
        n_classes = len(self._class_masks)
        out: List[List[SlotRecord]] = []
        chunk: List[_WindowTask] = []
        n_slots = 0
        max_srv = 0
        vm_cells = 0
        for task in tasks:
            n_vms = (
                self._dataset.n_vms
                if task.acct.vm_rows is None
                else int(task.acct.vm_rows.shape[0])
            )
            task_vm_cells = n_vms * task.n_window * sps
            new_srv = max(max_srv, task.acct.n_srv)
            new_slots = n_slots + task.n_window
            if chunk and (
                new_slots * new_srv * sps * n_classes
                > _SUPERBATCH_MAX_CELLS
                or vm_cells + task_vm_cells > _SUPERBATCH_MAX_CELLS
            ):
                out.extend(self._account_superbatch(chunk))
                chunk = []
                new_srv = task.acct.n_srv
                new_slots = task.n_window
                vm_cells = 0
            chunk.append(task)
            n_slots = new_slots
            max_srv = new_srv
            vm_cells += task_vm_cells
        if chunk:
            out.extend(self._account_superbatch(chunk))
        return out

    def _account_superbatch(
        self, tasks: List["_WindowTask"]
    ) -> List[List[SlotRecord]]:
        """Account several windows (distinct allocations) in one pass.

        Every window's (slot, server, sample) bins are padded to the
        chunk's maximum server count, so the whole chunk aggregates with
        a single ``np.bincount`` scatter per quantity and one
        :class:`VectorizedServerPower` evaluation.  Padded servers carry
        zero utilization, the QoS floor ``f_min`` and an inactive mask;
        every per-slot reduction (energy, violations, mean frequency)
        slices the window's own server prefix — the same contiguous
        ranges, in the same element order, as :meth:`_account_window` —
        so the emitted records are bit-identical to the per-window path
        (and therefore to the per-slot reference).
        """
        sps = SAMPLES_PER_SLOT
        n_classes = len(self._class_masks)
        n_total = sum(t.n_window for t in tasks)
        n_srv_max = max(t.acct.n_srv for t in tasks)
        slot_bins = n_srv_max * sps
        n_bins = n_total * slot_bins

        floors = np.full(
            (n_total, n_srv_max), self._power.spec.opps.f_min_ghz
        )
        active = np.zeros((n_total, n_srv_max), dtype=bool)
        caps = np.empty(n_total)
        fixed: List[tuple] = []
        # Heterogeneous fleets carry a model-index tensor parallel to
        # the padded (slot, server) bins: -1 marks padding, everything
        # else selects the pool whose tables evaluate that server row.
        # Single-pool fleets pad with pool 0 instead — padded rows are
        # zero-utilization and excluded from every reduction anyway
        # (exactly how the homogeneous path treats them), and an
        # all-pool-0 map lets _eval_pools take its copy-free
        # whole-tensor route.
        pool_map = fixed_map = None
        if self._fleet is not None:
            pad_pool = 0 if self._fleet.single_pool else -1
            pool_map = np.full((n_total, n_srv_max), pad_pool, dtype=int)
        off = 0
        for task in tasks:
            acct = task.acct
            floors[off : off + task.n_window, : acct.n_srv] = acct.floors[
                None, :
            ]
            active[off : off + task.n_window, : acct.n_srv] = acct.active[
                None, :
            ]
            caps[off : off + task.n_window] = (
                task.allocation.violation_cap_pct
            )
            if acct.opp_idx_fixed is not None:
                fixed.append((off, task.n_window, acct))
            if pool_map is not None:
                pool_map[off : off + task.n_window, : acct.n_srv] = (
                    acct.pool_idx[None, :]
                )
                if acct.pool_fixed_opp is not None:
                    if fixed_map is None:
                        fixed_map = np.full(
                            (n_total, n_srv_max), -1, dtype=int
                        )
                    fixed_map[
                        off : off + task.n_window, : acct.n_srv
                    ] = acct.pool_fixed_opp[None, :]
            off += task.n_window

        # Two scatter-assembly routes.  Fixed-population chunks (the
        # base engine: full fleet, no resizes, consecutive slots) build
        # one chunk-wide index tensor against one contiguous trace
        # slice; the general route (cloud membership rows / resize
        # scales) assembles per task.  Either way every bin receives
        # only its own window's VMs in ascending-VM order — the
        # per-slot scatter's accumulation order — so sums stay
        # bit-identical.
        plain = all(
            t.acct.vm_rows is None and t.acct.scale_cpu is None
            for t in tasks
        ) and all(
            tasks[i].first_slot + tasks[i].n_window
            == tasks[i + 1].first_slot
            for i in range(len(tasks) - 1)
        )
        if plain:
            n_vms = self._dataset.n_vms
            lo = tasks[0].first_slot * sps
            hi = lo + n_total * sps
            real_cpu = self._dataset.cpu_pct[:, lo:hi]
            real_mem = self._dataset.mem_pct[:, lo:hi]
            # Per-(VM, slot) server index, stacked over the chunk.
            vm2srv = np.concatenate(
                [
                    np.broadcast_to(
                        t.acct.vm2srv[:, None], (n_vms, t.n_window)
                    )
                    for t in tasks
                ],
                axis=1,
            )
            flat = (
                vm2srv * sps + (np.arange(n_total) * slot_bins)[None, :]
            )[:, :, None] + np.arange(sps)[None, None, :]
            all_idx = flat.ravel()
            util = np.bincount(
                all_idx, weights=real_cpu.ravel(), minlength=n_bins
            ).reshape(n_total, n_srv_max, sps)
            mem_util = np.bincount(
                all_idx, weights=real_mem.ravel(), minlength=n_bins
            ).reshape(n_total, n_srv_max, sps)
            util_by_class = np.zeros((n_classes, n_total, n_srv_max, sps))
            for ci, mask in enumerate(self._class_masks):
                if mask.any():
                    util_by_class[ci] = np.bincount(
                        flat[mask].ravel(),
                        weights=real_cpu[mask].ravel(),
                        minlength=n_bins,
                    ).reshape(n_total, n_srv_max, sps)
        else:
            idx_parts: List[np.ndarray] = []
            cpu_parts: List[np.ndarray] = []
            mem_parts: List[np.ndarray] = []
            class_idx: List[List[np.ndarray]] = [
                [] for _ in range(n_classes)
            ]
            class_wts: List[List[np.ndarray]] = [
                [] for _ in range(n_classes)
            ]
            off = 0
            for task in tasks:
                acct = task.acct
                lo = task.first_slot * sps
                hi = (task.first_slot + task.n_window) * sps
                if acct.vm_rows is None:
                    n_vms = self._dataset.n_vms
                    real_cpu = self._dataset.cpu_pct[:, lo:hi]
                    real_mem = self._dataset.mem_pct[:, lo:hi]
                else:
                    n_vms = int(acct.vm_rows.shape[0])
                    real_cpu = self._dataset.cpu_pct[acct.vm_rows, lo:hi]
                    real_mem = self._dataset.mem_pct[acct.vm_rows, lo:hi]
                if acct.scale_cpu is not None:
                    real_cpu = real_cpu * acct.scale_cpu[:, None]
                    real_mem = real_mem * acct.scale_mem[:, None]
                real_cpu = real_cpu.reshape(n_vms, task.n_window, sps)
                real_mem = real_mem.reshape(n_vms, task.n_window, sps)

                # acct.flat_idx already encodes server * sps + sample
                # against the window's own server count; since every
                # padded slot spans slot_bins >= n_srv * sps bins,
                # adding the slot offset re-bases it into the chunk
                # layout.
                flat = (
                    acct.flat_idx.reshape(n_vms, 1, sps)
                    + ((off + np.arange(task.n_window)) * slot_bins)[
                        None, :, None
                    ]
                )
                idx_parts.append(flat.ravel())
                cpu_parts.append(real_cpu.ravel())
                mem_parts.append(real_mem.ravel())
                for ci, mask in enumerate(acct.class_masks):
                    if acct.class_flat[ci] is not None:
                        class_idx[ci].append(flat[mask].ravel())
                        class_wts[ci].append(real_cpu[mask].ravel())
                off += task.n_window

            all_idx = np.concatenate(idx_parts)
            util = np.bincount(
                all_idx,
                weights=np.concatenate(cpu_parts),
                minlength=n_bins,
            ).reshape(n_total, n_srv_max, sps)
            mem_util = np.bincount(
                all_idx,
                weights=np.concatenate(mem_parts),
                minlength=n_bins,
            ).reshape(n_total, n_srv_max, sps)
            util_by_class = np.zeros((n_classes, n_total, n_srv_max, sps))
            for ci in range(n_classes):
                if class_idx[ci]:
                    util_by_class[ci] = np.bincount(
                        np.concatenate(class_idx[ci]),
                        weights=np.concatenate(class_wts[ci]),
                        minlength=n_bins,
                    ).reshape(n_total, n_srv_max, sps)

        if pool_map is not None:
            # One governor + power evaluation per (chunk, model); the
            # padded -1 rows stay zero and never enter a reduction.
            freqs, power = self._eval_pools(
                util, util_by_class, floors, pool_map, fixed_map
            )
        else:
            # Dynamic-governor choice everywhere (padded servers get
            # valid lowest-OPP indices), then fixed-frequency windows
            # overwrite their own server prefix with the allocation's
            # fixed indices.
            opp_idx = self._governor.opp_indices_horizon(util, floors)
            for off_t, n_window, acct in fixed:
                opp_idx[off_t : off_t + n_window, : acct.n_srv] = (
                    acct.opp_idx_fixed[None]
                )

            freqs = self._tables.freqs_ghz[opp_idx]
            busy = util * self._f_max / (100.0 * freqs)

            stall_num = np.zeros_like(util)
            for ci in range(n_classes):
                stall_num += (
                    util_by_class[ci] * self._stall_tab[ci][opp_idx]
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                stall = np.where(
                    util > _EPS, stall_num / np.maximum(util, _EPS), 0.0
                )

            traffic = np.tensordot(
                self._traffic_coeff, util_by_class, axes=([0], [0])
            )

            power = self._tables.power_w(opp_idx, busy, stall, traffic)
        power = power * active[:, :, None]
        if self._psu is not None:
            power = (
                power
                + self._psu.loss_fixed_w * active[:, :, None]
                + self._psu.loss_prop * power
                + self._psu.loss_sq_per_w * power**2
            )

        capped = np.zeros(n_total, dtype=int)
        if any(t.acct.cap_frac < 1.0 for t in tasks):
            # Per-task throttle over each window's own server prefix:
            # the fleet-power reduction runs over exactly n_srv rows
            # (never the padding), the same axis length and order as
            # the per-window tier, so the budgets and scales agree
            # bit-exactly; uncapped windows are left untouched.
            off = 0
            for task in tasks:
                if task.acct.cap_frac < 1.0:
                    sl = slice(off, off + task.n_window)
                    n_srv = task.acct.n_srv
                    budget = (
                        self._nominal_power_w * task.acct.cap_frac
                    )
                    fleet_w = power[sl, :n_srv].sum(axis=1)
                    scale_cap = np.minimum(
                        1.0, budget / np.maximum(fleet_w, _EPS)
                    )
                    capped[sl] = (scale_cap < 1.0).sum(axis=1)
                    power[sl, :n_srv] = (
                        power[sl, :n_srv] * scale_cap[:, None, :]
                    )
                off += task.n_window

        overutilized = (util > caps[:, None, None] + _EPS) | (
            mem_util > 100.0 + _EPS
        )
        violations = (overutilized & active[:, :, None]).sum(axis=(1, 2))

        records: List[List[SlotRecord]] = []
        off = 0
        for task in tasks:
            acct = task.acct
            n_srv = acct.n_srv
            n_active = int(acct.active.sum())
            any_active = bool(acct.active.any())
            window_records: List[SlotRecord] = []
            for w in range(task.n_window):
                t = off + w
                energy_j = float(power[t, :n_srv].sum() * SAMPLE_PERIOD_S)
                if w == 0:
                    energy_j += task.migrations * self._migration_energy_j
                mean_freq = (
                    float(freqs[t, :n_srv][acct.active].mean())
                    if any_active
                    else 0.0
                )
                window_records.append(
                    SlotRecord(
                        slot_index=task.first_slot + w,
                        case=task.allocation.case,
                        n_active_servers=n_active,
                        violations=int(violations[t]),
                        forced_placements=task.allocation.forced_placements,
                        energy_j=energy_j,
                        mean_freq_ghz=mean_freq,
                        f_opt_ghz=task.allocation.f_opt_ghz or 0.0,
                        migrations=task.migrations if w == 0 else 0,
                        shed_vms=acct.shed_vms,
                        n_failed_servers=acct.n_failed,
                        capped_samples=int(capped[t]),
                        fault_migrations=(
                            task.migrations
                            if w == 0 and acct.fault_boundary
                            else 0
                        ),
                    )
                )
            records.append(window_records)
            off += task.n_window
        return records


def count_migrations(
    previous_map: np.ndarray,
    new_map: np.ndarray,
    previous_pools: Optional[np.ndarray] = None,
    new_pools: Optional[np.ndarray] = None,
) -> int:
    """Minimum-ish VM migrations between two assignments.

    Server indices are arbitrary per allocation, so a raw comparison of
    maps over-counts wildly.  Instead, old and new servers are matched
    one-to-one by greedy maximum VM overlap (each matched pair is "the
    same physical server keeping its VMs"); every VM outside a matched
    overlap must have moved.  Greedy matching on sorted overlaps is the
    standard first-order estimate of reallocation churn.

    On heterogeneous fleets a server can only be "the same physical
    server" within its own pool — a block of VMs landing on a server of
    a *different* platform genuinely moved (across ISAs, no less) — so
    when per-server pool indices are supplied, cross-pool (old, new)
    pairs are excluded from the matching.  Single-pool fleets filter
    nothing, preserving the homogeneous counts exactly.

    The overlap histogram is built with one ``np.bincount`` over the
    flattened (old, new) pair codes and only its non-zero entries (at
    most one per VM) are sorted — the seed's Python double loop over the
    dense ``n_old x n_new`` matrix made every reallocation quadratic in
    the fleet size.  ``_count_migrations_reference`` preserves the seed
    implementation as the equivalence oracle.
    """
    if previous_map.shape != new_map.shape:
        raise ConfigurationError("assignment maps must cover the same VMs")
    n_vms = previous_map.shape[0]
    if n_vms == 0:
        return 0
    n_new = int(new_map.max()) + 1
    counts = np.bincount(previous_map * n_new + new_map)
    nz = np.flatnonzero(counts)
    overlap = counts[nz]
    old_ids = nz // n_new
    new_ids = nz % n_new
    if previous_pools is not None and new_pools is not None:
        same = previous_pools[old_ids] == new_pools[new_ids]
        overlap = overlap[same]
        old_ids = old_ids[same]
        new_ids = new_ids[same]
    return n_vms - _greedy_kept(overlap, old_ids, new_ids)


def _greedy_kept(
    overlap: np.ndarray, old_ids: np.ndarray, new_ids: np.ndarray
) -> int:
    """VMs kept in place by greedy (old, new) server matching.

    Pairs are visited by the reference sort key ``(-count, old, new)``;
    each old and new server is matched at most once.
    """
    order = np.lexsort((new_ids, old_ids, -overlap))
    used_old = set()
    used_new = set()
    kept = 0
    # Plain-int lists keep the greedy scan free of NumPy scalar
    # boxing/unboxing — the loop runs once per reallocation on up to
    # one pair per server, so constant factors matter here.
    for o, nw, cnt in zip(
        old_ids[order].tolist(),
        new_ids[order].tolist(),
        overlap[order].tolist(),
    ):
        if o not in used_old and nw not in used_new:
            used_old.add(o)
            used_new.add(nw)
            kept += cnt
    return kept


class MigrationCounter:
    """Stateful :func:`count_migrations` over consecutive reallocations.

    The engine counts migrations between every pair of consecutive
    allocations, so the "old" map of each call is exactly the "new" map
    of the previous one.  This counter carries that map's **sorted
    grouping** (stable argsort + sorted copy) across calls: per
    reallocation it only sorts combined (old, new) pair codes whose high
    bits are already grouped by the cached order, run-length-encodes the
    non-zero overlap pairs, and applies the same greedy matching as
    :func:`count_migrations`.  Unlike the dense pair histogram, the work
    never scales with ``n_old * n_new`` — only with the fleet size — and
    the old map is never re-sorted.

    Counts are identical to calling :func:`count_migrations` on each
    consecutive map pair (same pair multiset, same greedy order);
    ``_count_migrations_reference`` remains the seed oracle.
    """

    __slots__ = ("_order", "_sorted", "_n_vms", "_pools")

    def __init__(self) -> None:
        self._order: Optional[np.ndarray] = None
        self._sorted: Optional[np.ndarray] = None
        self._n_vms: Optional[int] = None
        self._pools: Optional[np.ndarray] = None

    def update(
        self,
        new_map: np.ndarray,
        new_pools: Optional[np.ndarray] = None,
    ) -> int:
        """Count migrations vs the previous map, then adopt ``new_map``.

        The first call primes the state and returns 0 (no previous
        allocation to migrate from).  ``new_pools`` (per-server pool
        indices, heterogeneous fleets) restricts the greedy matching to
        same-pool server pairs, as in :func:`count_migrations`.
        """
        new_map = np.asarray(new_map)
        if self._n_vms is not None and new_map.shape != (self._n_vms,):
            raise ConfigurationError(
                "assignment maps must cover the same VMs"
            )
        n_vms = int(new_map.shape[0])
        migrations = 0
        if self._order is not None and n_vms > 0:
            n_new = int(new_map.max()) + 1
            # High bits (old server) are pre-grouped by the cached sort;
            # one sort of the combined codes yields contiguous pair runs.
            codes = self._sorted * n_new + new_map[self._order]
            codes.sort()
            starts = np.concatenate(
                ([0], np.flatnonzero(codes[1:] != codes[:-1]) + 1)
            )
            overlap = np.diff(np.concatenate((starts, [codes.shape[0]])))
            uniq = codes[starts]
            old_ids = uniq // n_new
            new_ids = uniq % n_new
            if self._pools is not None and new_pools is not None:
                same = self._pools[old_ids] == new_pools[new_ids]
                overlap = overlap[same]
                old_ids = old_ids[same]
                new_ids = new_ids[same]
            migrations = n_vms - _greedy_kept(overlap, old_ids, new_ids)
        self._n_vms = n_vms
        self._order = np.argsort(new_map, kind="stable")
        self._sorted = new_map[self._order]
        self._pools = new_pools
        return migrations


def _count_migrations_reference(
    previous_map: np.ndarray, new_map: np.ndarray
) -> int:
    """The seed implementation of :func:`count_migrations` (oracle)."""
    if previous_map.shape != new_map.shape:
        raise ConfigurationError("assignment maps must cover the same VMs")
    n_vms = previous_map.shape[0]
    if n_vms == 0:
        return 0
    n_old = int(previous_map.max()) + 1
    n_new = int(new_map.max()) + 1
    overlap = np.zeros((n_old, n_new), dtype=int)
    np.add.at(overlap, (previous_map, new_map), 1)

    pairs = [
        (int(overlap[i, j]), i, j)
        for i in range(n_old)
        for j in range(n_new)
        if overlap[i, j] > 0
    ]
    pairs.sort(key=lambda p: (-p[0], p[1], p[2]))
    used_old = np.zeros(n_old, dtype=bool)
    used_new = np.zeros(n_new, dtype=bool)
    kept = 0
    for count, old, new in pairs:
        if not used_old[old] and not used_new[new]:
            used_old[old] = True
            used_new[new] = True
            kept += count
    return n_vms - kept


def shared_predictions(
    dataset: TraceDataset,
    predictor,
    start_slot: Optional[int] = None,
    n_slots: Optional[int] = None,
    shm: bool = False,
):
    """Freeze the predictions a simulation horizon needs into arrays.

    Computes (once) every day-ahead forecast the horizon touches.  The
    defaults mirror :class:`DataCenterSimulation`'s horizon derivation.

    With ``shm=False`` (default) the result is a
    :class:`~repro.forecast.predictor.PrecomputedPredictor`: plain
    per-day arrays that pickle **by value** into worker processes — one
    copy per worker, no cleanup, garbage-collected like any object.

    With ``shm=True`` the result is a :class:`~repro.shard.shm
    .SharedPredictions`: the same forecasts in one
    ``multiprocessing.shared_memory`` segment that workers map
    zero-copy.  The segment is a kernel object with an explicit
    lifetime — the caller owns it and must ``close()`` and ``unlink()``
    it (or use the ``with`` form) when every consumer is done; see
    :mod:`repro.shard.shm` for the full protocol.  Both forms expose
    the same predictor interface and identical values.
    """
    from ..shard.shm import prediction_days

    days = prediction_days(dataset, predictor, start_slot, n_slots)
    if shm:
        from ..shard.shm import SharedPredictions

        return SharedPredictions.from_predictor(predictor, days)
    from ..forecast.predictor import PrecomputedPredictor

    return PrecomputedPredictor.from_predictor(predictor, days)


def _run_one_policy(
    dataset,
    predictor,
    policy: AllocationPolicy,
    kwargs: Dict,
) -> SimulationResult:
    """Worker entry point: one policy's full simulation (picklable).

    ``dataset`` may be a :class:`~repro.shard.shm.SharedTraces` handle
    (mapped zero-copy) or a plain :class:`TraceDataset`.
    """
    from ..shard.shm import materialize

    return DataCenterSimulation(
        materialize(dataset), predictor, policy, **kwargs
    ).run()


def run_policies(
    dataset: TraceDataset,
    predictor,
    policies: Iterable[AllocationPolicy],
    jobs: int = 1,
    tracer=None,
    metrics=None,
    shared=None,
    **kwargs,
) -> Dict[str, SimulationResult]:
    """Run several policies over the same traces and predictions.

    Sharing the predictor across policies both matches the paper's
    protocol and amortizes the ARIMA fitting cost.  This is the common
    runner surface — :func:`~repro.dcsim.cloud.run_cloud_policies` and
    :func:`~repro.cloud.streaming.run_streaming_policies` take the same
    ``jobs`` / ``tracer`` / ``metrics`` / ``shared`` keywords.

    Args:
        dataset: the VM utilization traces.
        predictor: shared day-ahead predictor.
        policies: the policies to compare.
        jobs: number of worker processes.  With ``jobs > 1`` the
            policies fan out over a ``ProcessPoolExecutor``; traces and
            the horizon's day-ahead predictions are written once into
            shared-memory segments that every worker maps zero-copy
            (:class:`~repro.shard.shm.SharedRunInputs`), so no worker
            re-fits the forecaster or receives pickled matrices.
            Results are identical to the serial run.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`.  Serial
            runs thread it into every engine; parallel fans drop it
            (open file handles don't cross pickle boundaries) —
            sweep-level task events come from the experiments pool
            layer instead.  Same for ``metrics``.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
        shared: optional caller-owned :class:`~repro.shard.shm
            .SharedRunInputs` to reuse across several runner calls.
            When omitted, a parallel run creates (and disposes) its
            own; the caller-owned handle's ``close()``/``unlink()``
            stays the caller's job.
        **kwargs: forwarded to :class:`DataCenterSimulation`.
    """
    policy_list = list(policies)
    if jobs is None or jobs <= 1 or len(policy_list) <= 1:
        results: Dict[str, SimulationResult] = {}
        for policy in policy_list:
            sim = DataCenterSimulation(
                dataset,
                predictor,
                policy,
                tracer=tracer,
                metrics=metrics,
                **kwargs,
            )
            results[policy.name] = sim.run()
        return results

    from concurrent.futures import ProcessPoolExecutor

    from ..shard.shm import SharedRunInputs

    owned = shared is None
    if owned:
        shared = SharedRunInputs.create(
            dataset,
            predictor,
            start_slot=kwargs.get("start_slot"),
            n_slots=kwargs.get("n_slots"),
        )
    try:
        workers = min(jobs, len(policy_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_one_policy,
                    shared.traces,
                    shared.predictions,
                    policy,
                    kwargs,
                )
                for policy in policy_list
            ]
            return {
                policy.name: future.result()
                for policy, future in zip(policy_list, futures)
            }
    finally:
        if owned:
            shared.close()
            shared.unlink()
