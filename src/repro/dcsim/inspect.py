"""Per-slot inspection: the detail behind one simulated hour.

The engine's :class:`~repro.dcsim.metrics.SlotRecord` aggregates each slot
to a handful of numbers.  When debugging a policy (why did *this* server
violate? which class mix drove that frequency?) you want the full
(server, sample) matrices.  :func:`inspect_slot` runs exactly the engine's
accounting for one slot and returns them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.types import Allocation
from ..units import SAMPLE_PERIOD_S
from .engine import DataCenterSimulation


@dataclass(frozen=True)
class SlotDetail:
    """Full per-server, per-sample view of one simulated slot.

    All matrices have shape ``(n_servers, n_samples)`` and are aligned
    with ``allocation.plans``.

    Attributes:
        slot_index: the inspected slot.
        allocation: the policy's decision for the slot.
        cpu_util_pct: real aggregate CPU utilization per server-sample.
        mem_util_pct: real aggregate memory utilization per server-sample.
        freq_ghz: operating frequency per server-sample.
        power_w: server power per server-sample (0 for off servers).
        violated: boolean violation mask per server-sample.
    """

    slot_index: int
    allocation: Allocation
    cpu_util_pct: np.ndarray
    mem_util_pct: np.ndarray
    freq_ghz: np.ndarray
    power_w: np.ndarray
    violated: np.ndarray

    @property
    def n_servers(self) -> int:
        """Number of planned servers (including empty/off ones)."""
        return self.cpu_util_pct.shape[0]

    @property
    def energy_j(self) -> float:
        """Slot energy implied by the power matrix."""
        return float(self.power_w.sum() * SAMPLE_PERIOD_S)

    @property
    def total_violations(self) -> int:
        """Violating server-samples in the slot."""
        return int(self.violated.sum())

    def hottest_servers(self, k: int = 5) -> List[int]:
        """Server indices with the highest peak CPU utilization."""
        peaks = self.cpu_util_pct.max(axis=1)
        order = np.argsort(-peaks, kind="stable")
        return [int(i) for i in order[:k]]

    def server_summary(self, server_id: int) -> dict:
        """One server's slot in plain numbers (for printing/logging)."""
        plan = self.allocation.plans[server_id]
        return {
            "server": server_id,
            "n_vms": len(plan.vm_ids),
            "peak_cpu_pct": float(self.cpu_util_pct[server_id].max()),
            "peak_mem_pct": float(self.mem_util_pct[server_id].max()),
            "mean_freq_ghz": float(self.freq_ghz[server_id].mean()),
            "mean_power_w": float(self.power_w[server_id].mean()),
            "violations": int(self.violated[server_id].sum()),
        }


def inspect_slot(
    simulation: DataCenterSimulation, slot_index: int
) -> SlotDetail:
    """Run one slot through the engine's accounting and keep the detail.

    Uses the same predictor, policy and power tables as
    :meth:`DataCenterSimulation.run`, so the returned matrices aggregate
    to exactly the record the full run would produce for this slot (when
    the policy reallocates at this slot; for day-ahead policies the
    allocation is recomputed for the window starting here).
    """
    period = max(1, int(simulation._policy.reallocation_period_slots))
    allocation = simulation._allocate_window(slot_index, period)

    n_vms = simulation._dataset.n_vms
    vm2srv = allocation.vm_to_server(n_vms)
    n_srv = len(allocation.plans)
    real_cpu, real_mem = simulation._dataset.slot_slice(slot_index)
    n_samples = real_cpu.shape[1]

    util = np.zeros((n_srv, n_samples))
    np.add.at(util, vm2srv, real_cpu)
    mem_util = np.zeros((n_srv, n_samples))
    np.add.at(mem_util, vm2srv, real_mem)

    util_by_class = np.zeros(
        (len(simulation._class_masks), n_srv, n_samples)
    )
    for ci, mask in enumerate(simulation._class_masks):
        if mask.any():
            np.add.at(util_by_class[ci], vm2srv[mask], real_cpu[mask])

    # The engine's own per-allocation invariants (active set, QoS
    # floors, fixed OPP pins, per-server pool indices on heterogeneous
    # fleets), so the matrices below price every server with its own
    # pool's tables — exactly like the full run.
    acct = simulation._prepare_allocation(allocation)
    active = acct.active
    floors = acct.floors

    if acct.pool_idx is not None:
        freqs, power = simulation._eval_pools(
            util, util_by_class, floors, acct.pool_idx,
            acct.pool_fixed_opp,
        )
    else:
        if acct.opp_idx_fixed is None:
            opp_idx = simulation._governor.opp_indices(util, floors)
        else:
            opp_idx = acct.opp_idx_fixed

        freqs = simulation._tables.freqs_ghz[opp_idx]
        busy = util * simulation._f_max / (100.0 * freqs)
        stall_num = np.zeros_like(util)
        for ci in range(util_by_class.shape[0]):
            stall_num += (
                util_by_class[ci] * simulation._stall_tab[ci][opp_idx]
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            stall = np.where(
                util > 1e-9, stall_num / np.maximum(util, 1e-9), 0.0
            )
        traffic = np.tensordot(
            simulation._traffic_coeff, util_by_class, axes=([0], [0])
        )
        power = simulation._tables.power_w(opp_idx, busy, stall, traffic)
    power = power * active[:, None]

    cap = allocation.violation_cap_pct
    violated = (
        (util > cap + 1e-9) | (mem_util > 100.0 + 1e-9)
    ) & active[:, None]

    return SlotDetail(
        slot_index=slot_index,
        allocation=allocation,
        cpu_util_pct=util,
        mem_util_pct=mem_util,
        freq_ghz=freqs,
        power_w=power,
        violated=violated,
    )
