"""Degraded-telemetry model: seeded corruption, collectors, imputation.

The robustness counterpart of :mod:`repro.cloud.faults` for the
*monitoring* plane: the engines' decisions are only as good as the
telemetry stream feeding them, and real streams drop samples, deliver
them late and out of order, corrupt them into NaNs or absurd spikes,
and go entirely dark while a collector restarts.  This module provides

* :class:`TelemetryFaultSchedule` — a deterministic, pre-materialized
  degradation timeline (per-VM sample drops, NaN/spike corruption,
  bounded late delivery, per-collector dropout windows), generated from
  a seed by :func:`generate_telemetry_faults` exactly like
  :func:`repro.cloud.faults.generate_faults`: one ``numpy`` generator,
  fixed draw order, same seed ⇒ identical corruption.  Unlike the
  fault layer it never cuts allocation windows — telemetry degrades
  *information*, not capacity;
* :class:`TraceCollector` — the file-replay collector (the trace
  dataset played back as a delivery stream) behind the collector
  abstraction: per-poll timeout (a dropout window raises
  :class:`~repro.errors.CollectorTimeoutError`) with the bounded
  retry/backoff hardening pattern of :mod:`repro.experiments.pool`
  (:func:`repro.serve.adapters.poll_with_retry`).  The protocol it
  pioneered — ``collector_id`` / ``poll`` / ``state`` / ``restore`` —
  is now :class:`repro.serve.adapters.CollectorAdapter`, home of the
  live (non-replay) adapters and of ``TelemetryBatch`` /
  ``poll_with_retry`` (deprecation shims here re-export both);
* :class:`TelemetryIngest` — the imputation/quality stage: delivered
  samples are validated (finite, within [0, 100]) into observation
  buffers; reads fill gaps by last-observation-carried-forward at
  window edges and linear interpolation inside, and every sample
  carries a :meth:`~TelemetryIngest.sample_quality` mark;
* :class:`ForecastLadder` — the forecast-staleness fallback ladder the
  streaming engine plans from::

      fresh        day-ahead Hannan-Rissanen/companion-matrix ARMA fit
        |          on the imputed history (history imputed fraction
        |          <= max_imputed_frac)
      stale        last good day-ahead forecast, re-used while its age
        |          stays within the staleness budget
      persistence  flat last-observed-value patterns (no usable fit)
        |
      reactive-only  telemetry entirely dark: keep the previous
                     placement, no re-planning (the engine's "blind
                     window" freeze)

A zero-degradation schedule is exact: every consumer gates on
:attr:`TelemetryFaultSchedule.has_degradation`, and the equivalence
suite asserts bit-identity against runs without the telemetry layer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CollectorTimeoutError, ConfigurationError
from ..forecast import DayAheadPredictor
from ..serve.adapters import TelemetryBatch as _TelemetryBatch
from ..traces.dataset import TraceDataset
from ..units import SAMPLES_PER_DAY, SAMPLES_PER_SLOT, SLOTS_PER_DAY

#: Names that moved to :mod:`repro.serve.adapters` when the collector
#: protocol grew live (non-replay) implementations; module
#: ``__getattr__`` below keeps the old import path working with a
#: :class:`DeprecationWarning`.
_MOVED_TO_SERVE = ("TelemetryBatch", "poll_with_retry")


def __getattr__(name: str):
    if name in _MOVED_TO_SERVE:
        warnings.warn(
            f"repro.cloud.telemetry.{name} moved to repro.serve.adapters"
            f" — update the import; this shim will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..serve import adapters

        return getattr(adapters, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

#: (collector_id, start_slot, end_slot) — collector down for slots
#: [start, end); polls during the window time out.
CollectorOutage = Tuple[int, int, int]

#: :meth:`TelemetryIngest.sample_quality` marks.
QUALITY_OBSERVED = 1
QUALITY_IMPUTED = 2


@dataclass(frozen=True)
class TelemetryFaultConfig:
    """Stochastic parameters for :func:`generate_telemetry_faults`.

    All probabilities are per 5-minute sample; a zero probability (or
    rate) disables that degradation class, so the default config
    degrades nothing at all.

    Attributes:
        drop_prob: probability a sample is permanently lost.
        nan_prob: probability a sample is delivered as NaN.
        spike_prob: probability a sample is delivered as a garbage
            spike of ``spike_pct`` percent.
        spike_pct: the corrupted reading's value; must exceed 100 so a
            spike is detectably invalid (utilization cannot leave
            [0, 100]) rather than silently plausible.
        late_prob: probability a sample is delivered late.
        max_delay_slots: bound on the late-delivery delay (uniform in
            ``[1, max_delay_slots]`` slots); late samples from one slot
            interleave with on-time samples from later slots, giving
            out-of-order delivery.
        outage_rate_per_slot: Poisson rate of dropout-window starts,
            per collector per slot.
        outage_duration_mean_slots: mean dropout-window length
            (exponential, rounded, at least one slot).
    """

    drop_prob: float = 0.0
    nan_prob: float = 0.0
    spike_prob: float = 0.0
    spike_pct: float = 400.0
    late_prob: float = 0.0
    max_delay_slots: int = 2
    outage_rate_per_slot: float = 0.0
    outage_duration_mean_slots: float = 4.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "nan_prob", "spike_prob", "late_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"TelemetryFaultConfig.{name} is a probability and "
                    f"must be in [0, 1], got {value}"
                )
        for name in ("outage_rate_per_slot", "outage_duration_mean_slots"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"TelemetryFaultConfig.{name} must be >= 0, got {value}"
                )
        if self.spike_pct <= 100.0:
            raise ConfigurationError(
                f"TelemetryFaultConfig.spike_pct must exceed 100 so a "
                f"spike is detectably invalid (got {self.spike_pct}); a "
                f"value inside [0, 100] would be indistinguishable from "
                f"a real reading"
            )
        if self.max_delay_slots < 1:
            raise ConfigurationError(
                f"TelemetryFaultConfig.max_delay_slots must be >= 1, got "
                f"{self.max_delay_slots} — a late sample is delayed by "
                f"at least one slot"
            )


class TelemetryFaultSchedule:
    """A materialized degradation timeline over ``[horizon_start, horizon_end)``.

    The sample-granular mirror of
    :class:`~repro.cloud.faults.FaultSchedule`: boolean corruption
    masks and delay counts of shape ``(n_vms, horizon_samples)`` plus
    per-collector dropout windows, all fixed at construction so the
    same schedule object always produces the same degraded stream.

    VM rows are striped across collectors round-robin
    (:meth:`collector_of` — VM ``v`` reports through collector
    ``v % n_collectors``), matching how fleet monitoring shards
    per-host agents over aggregation points.

    Args:
        n_vms: VM-pool size the mask rows refer to.
        horizon_start: first covered slot.
        horizon_end: one past the last covered slot.
        n_collectors: number of collectors the VM rows stripe over.
        drop: ``(n_vms, horizon_samples)`` bool — sample permanently
            lost (``None`` = no drops).
        corrupt_nan: same shape — sample delivered as NaN.
        corrupt_spike: same shape — sample delivered as ``spike_pct``.
            Precedence on overlap: drop > NaN > spike.
        delay_slots: same shape, int — delivery delay in slots
            (0 = on time).
        collector_outages: ``(collector_id, start, end)`` dropout
            windows (half-open slots, clamped to the horizon).
        spike_pct: the spike reading's value (must exceed 100).

    Raises:
        ConfigurationError: on shape mismatches, negative delays,
            out-of-range collector ids, or empty horizons/windows.
    """

    def __init__(
        self,
        n_vms: int,
        horizon_start: int,
        horizon_end: int,
        n_collectors: int = 1,
        drop: Optional[np.ndarray] = None,
        corrupt_nan: Optional[np.ndarray] = None,
        corrupt_spike: Optional[np.ndarray] = None,
        delay_slots: Optional[np.ndarray] = None,
        collector_outages: Sequence[CollectorOutage] = (),
        spike_pct: float = 400.0,
    ) -> None:
        if n_vms < 1:
            raise ConfigurationError("n_vms must be >= 1")
        if horizon_end <= horizon_start:
            raise ConfigurationError(
                f"empty telemetry horizon [{horizon_start}, {horizon_end})"
            )
        if n_collectors < 1:
            raise ConfigurationError(
                f"n_collectors must be >= 1, got {n_collectors}"
            )
        if spike_pct <= 100.0:
            raise ConfigurationError(
                f"spike_pct must exceed 100 so a spike is detectably "
                f"invalid, got {spike_pct}"
            )
        self._n_vms = int(n_vms)
        self._start = int(horizon_start)
        self._end = int(horizon_end)
        self._n_collectors = int(n_collectors)
        self._spike_pct = float(spike_pct)
        horizon = self._end - self._start
        shape = (self._n_vms, horizon * SAMPLES_PER_SLOT)

        def _mask(value, name: str) -> np.ndarray:
            if value is None:
                return np.zeros(shape, dtype=bool)
            arr = np.asarray(value, dtype=bool)
            if arr.shape != shape:
                raise ConfigurationError(
                    f"{name} must have shape {shape} "
                    f"(n_vms x horizon samples), got {arr.shape}"
                )
            return arr

        self._drop = _mask(drop, "drop")
        self._nan = _mask(corrupt_nan, "corrupt_nan")
        self._spike = _mask(corrupt_spike, "corrupt_spike")
        if delay_slots is None:
            self._delay = np.zeros(shape, dtype=np.int64)
        else:
            self._delay = np.asarray(delay_slots, dtype=np.int64)
            if self._delay.shape != shape:
                raise ConfigurationError(
                    f"delay_slots must have shape {shape}, got "
                    f"{self._delay.shape}"
                )
            if np.any(self._delay < 0):
                raise ConfigurationError(
                    "delay_slots must be >= 0 (samples cannot arrive "
                    "before they are measured)"
                )

        down = np.zeros((self._n_collectors, horizon), dtype=bool)
        outages: List[CollectorOutage] = []
        for cid, s0, s1 in collector_outages:
            cid, s0, s1 = int(cid), int(s0), int(s1)
            if not 0 <= cid < self._n_collectors:
                raise ConfigurationError(
                    f"collector id {cid} out of range "
                    f"[0, {self._n_collectors})"
                )
            if s1 <= s0:
                raise ConfigurationError(
                    f"collector outage interval [{s0}, {s1}) is empty"
                )
            lo = max(s0, self._start) - self._start
            hi = min(s1, self._end) - self._start
            if hi <= lo:
                continue  # entirely outside the horizon
            down[cid, lo:hi] = True
            outages.append((cid, lo + self._start, hi + self._start))
        self._down = down
        self._collector_outages = tuple(outages)

        self._has_degradation = bool(
            self._drop.any()
            or self._nan.any()
            or self._spike.any()
            or self._delay.any()
            or down.any()
        )

    # -- introspection -------------------------------------------------

    @property
    def n_vms(self) -> int:
        """VM-pool size the schedule describes."""
        return self._n_vms

    @property
    def horizon_start(self) -> int:
        """First covered slot."""
        return self._start

    @property
    def horizon_end(self) -> int:
        """One past the last covered slot."""
        return self._end

    @property
    def n_collectors(self) -> int:
        """Number of collectors the VM rows stripe over."""
        return self._n_collectors

    @property
    def spike_pct(self) -> float:
        """The corrupted spike reading's value."""
        return self._spike_pct

    @property
    def has_degradation(self) -> bool:
        """False for a lossless, on-time, always-up schedule."""
        return self._has_degradation

    @property
    def collector_outages(self) -> Tuple[CollectorOutage, ...]:
        """Horizon-clamped ``(collector_id, start, end)`` windows."""
        return self._collector_outages

    def collector_of(self, vm_id: int) -> int:
        """The collector VM ``vm_id`` reports through."""
        return int(vm_id) % self._n_collectors

    def collector_vm_rows(self, collector_id: int) -> np.ndarray:
        """Global VM rows assigned to one collector (round-robin)."""
        if not 0 <= collector_id < self._n_collectors:
            raise ConfigurationError(
                f"collector id {collector_id} out of range "
                f"[0, {self._n_collectors})"
            )
        return np.flatnonzero(
            np.arange(self._n_vms) % self._n_collectors == collector_id
        )

    # -- per-slot queries ----------------------------------------------

    def _offset(self, slot: int) -> int:
        if not self._start <= slot < self._end:
            raise ConfigurationError(
                f"slot {slot} outside telemetry horizon "
                f"[{self._start}, {self._end})"
            )
        return slot - self._start

    def collector_down(self, collector_id: int, slot: int) -> bool:
        """True when a collector is inside a dropout window at ``slot``."""
        return bool(self._down[collector_id, self._offset(slot)])

    def down_collectors(self, slot: int) -> int:
        """Number of collectors down at ``slot``."""
        return int(self._down[:, self._offset(slot)].sum())

    # -- sample-granular access (collector internals) ------------------

    def _sample_masks(self, vm_rows: np.ndarray):
        """Per-sample (drop, nan, spike, delay) for a set of VM rows."""
        return (
            self._drop[vm_rows],
            self._nan[vm_rows],
            self._spike[vm_rows],
            self._delay[vm_rows],
        )


def zero_telemetry_faults(
    n_vms: int,
    horizon_start: int,
    horizon_end: int,
    n_collectors: int = 1,
) -> TelemetryFaultSchedule:
    """A degradation-free schedule (the bit-identity control)."""
    return TelemetryFaultSchedule(
        n_vms, horizon_start, horizon_end, n_collectors=n_collectors
    )


def generate_telemetry_faults(
    n_vms: int,
    horizon_start: int,
    horizon_end: int,
    config: Optional[TelemetryFaultConfig] = None,
    seed: int = 0,
    n_collectors: int = 1,
) -> TelemetryFaultSchedule:
    """Draw a seeded degradation timeline from the config's parameters.

    One ``default_rng(seed)`` drives a fixed draw order (drop mask, NaN
    mask, spike mask, delays, then collector outages in slot order), so
    the same seed yields the identical schedule regardless of the
    consumer — the house determinism convention.
    """
    cfg = config or TelemetryFaultConfig()
    if n_vms < 1:
        raise ConfigurationError("n_vms must be >= 1")
    if horizon_end <= horizon_start:
        raise ConfigurationError(
            f"empty telemetry horizon [{horizon_start}, {horizon_end})"
        )
    if n_collectors < 1:
        raise ConfigurationError(
            f"n_collectors must be >= 1, got {n_collectors}"
        )
    rng = np.random.default_rng(seed)
    horizon = horizon_end - horizon_start
    shape = (n_vms, horizon * SAMPLES_PER_SLOT)

    drop = nan = spike = delay = None
    if cfg.drop_prob > 0.0:
        drop = rng.random(shape) < cfg.drop_prob
    if cfg.nan_prob > 0.0:
        nan = rng.random(shape) < cfg.nan_prob
    if cfg.spike_prob > 0.0:
        spike = rng.random(shape) < cfg.spike_prob
    if cfg.late_prob > 0.0:
        late = rng.random(shape) < cfg.late_prob
        delay = np.where(
            late,
            rng.integers(1, cfg.max_delay_slots + 1, size=shape),
            0,
        )

    outages: List[CollectorOutage] = []
    if cfg.outage_rate_per_slot > 0.0:
        rate = cfg.outage_rate_per_slot * n_collectors
        for off in range(horizon):
            for _ in range(int(rng.poisson(rate))):
                cid = int(rng.integers(n_collectors))
                dur = max(
                    1,
                    int(
                        round(
                            rng.exponential(cfg.outage_duration_mean_slots)
                        )
                    ),
                )
                outages.append(
                    (
                        cid,
                        off + horizon_start,
                        min(off + dur, horizon) + horizon_start,
                    )
                )

    return TelemetryFaultSchedule(
        n_vms,
        horizon_start,
        horizon_end,
        n_collectors=n_collectors,
        drop=drop,
        corrupt_nan=nan,
        corrupt_spike=spike,
        delay_slots=delay,
        collector_outages=outages,
        spike_pct=cfg.spike_pct,
    )


@dataclass(frozen=True)
class TelemetryScenario:
    """A named degradation regime of the registry.

    Attributes:
        name: registry key.
        description: one-line summary for reports.
        config: the stochastic parameters (``None`` = lossless).
        n_collectors: collectors the VM rows stripe over.
        seed_offset: added to the build seed so scenarios sharing a
            sweep seed still draw independent corruption.
    """

    name: str
    description: str
    config: Optional[TelemetryFaultConfig] = None
    n_collectors: int = 1
    seed_offset: int = 0

    def build(
        self,
        n_vms: int,
        horizon_start: int,
        horizon_end: int,
        seed: int = 2018,
    ) -> TelemetryFaultSchedule:
        """Materialize the schedule for one VM pool and horizon."""
        if self.config is None:
            return zero_telemetry_faults(
                n_vms,
                horizon_start,
                horizon_end,
                n_collectors=self.n_collectors,
            )
        return generate_telemetry_faults(
            n_vms,
            horizon_start,
            horizon_end,
            config=self.config,
            seed=seed + self.seed_offset,
            n_collectors=self.n_collectors,
        )


TELEMETRY_SCENARIOS: Dict[str, TelemetryScenario] = {
    scenario.name: scenario
    for scenario in (
        TelemetryScenario(
            name="clean",
            description="lossless telemetry (bit-identity control)",
        ),
        TelemetryScenario(
            name="lossy-1pct",
            description="1% sample drops, occasional NaN corruption",
            config=TelemetryFaultConfig(drop_prob=0.01, nan_prob=0.002),
            seed_offset=1,
        ),
        TelemetryScenario(
            name="lossy-10pct",
            description="10% sample drops, 1% NaN corruption",
            config=TelemetryFaultConfig(drop_prob=0.10, nan_prob=0.01),
            seed_offset=2,
        ),
        TelemetryScenario(
            name="collector-outage",
            description="two collectors with recurring dropout windows",
            config=TelemetryFaultConfig(
                outage_rate_per_slot=0.02,
                outage_duration_mean_slots=5.0,
            ),
            n_collectors=2,
            seed_offset=3,
        ),
        TelemetryScenario(
            name="late-burst",
            description="30% of samples arrive up to 4 slots late",
            config=TelemetryFaultConfig(late_prob=0.30, max_delay_slots=4),
            seed_offset=4,
        ),
        TelemetryScenario(
            name="corrupt-spikes",
            description="garbage 400% spikes plus NaN corruption",
            config=TelemetryFaultConfig(spike_prob=0.02, nan_prob=0.01),
            seed_offset=5,
        ),
    )
}


def get_telemetry_scenario(name: str) -> TelemetryScenario:
    """Look up a telemetry scenario by registry name."""
    try:
        return TELEMETRY_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(TELEMETRY_SCENARIOS))
        raise ConfigurationError(
            f"unknown telemetry scenario {name!r}; known: {known}"
        ) from None


def list_telemetry_scenarios() -> Dict[str, str]:
    """Name -> description for every registered telemetry scenario."""
    return {
        name: scenario.description
        for name, scenario in TELEMETRY_SCENARIOS.items()
    }


# -- collectors --------------------------------------------------------


class TraceCollector:
    """File-replay collector: the trace dataset as a delivery stream.

    The reference implementation of the
    :class:`repro.serve.adapters.CollectorAdapter` protocol (live
    adapters live there).

    A sample measured during slot ``s`` becomes available at the poll
    of slot ``s + 1`` (monitoring reports trail the interval they
    cover) plus its scheduled delay; dropped samples never become
    available.  Deliveries come back sorted by availability, so a
    delayed sample from slot ``s`` arrives *after* on-time samples
    from slots ``s+1 .. s+delay`` — genuine out-of-order delivery —
    and everything that queued up during a dropout window arrives as
    one burst at the first successful poll after recovery.

    The cursor (how far the availability stream has been consumed,
    plus the last successful poll slot) is the only mutable state —
    exactly what :meth:`state` snapshots for checkpoint/resume.

    Args:
        collector_id: this collector's id within the schedule.
        dataset: the true traces to replay.
        schedule: the degradation timeline.

    Raises:
        ConfigurationError: if the schedule's VM pool does not match
            the dataset.
    """

    def __init__(
        self,
        collector_id: int,
        dataset: TraceDataset,
        schedule: TelemetryFaultSchedule,
    ) -> None:
        if schedule.n_vms != dataset.n_vms:
            raise ConfigurationError(
                f"telemetry schedule covers {schedule.n_vms} VMs, "
                f"dataset has {dataset.n_vms}"
            )
        self._id = int(collector_id)
        self._schedule = schedule
        vm_rows = schedule.collector_vm_rows(collector_id)
        drop, nan, spike, delay = schedule._sample_masks(vm_rows)
        n_local, n_samp = drop.shape
        first_sample = schedule.horizon_start * SAMPLES_PER_SLOT

        # Availability slot per (local VM, sample): measured during
        # slot_of + delivered at the next poll + scheduled delay;
        # dropped samples are pushed past every reachable poll slot.
        slot_of = (
            schedule.horizon_start + np.arange(n_samp) // SAMPLES_PER_SLOT
        )
        avail = slot_of[None, :] + 1 + delay
        never = schedule.horizon_end + int(delay.max(initial=0)) + 2
        avail = np.where(drop, never, avail)

        # Flatten to a single availability-ordered delivery stream
        # (stable sort: ties deliver in (VM row, sample) order).
        flat_avail = avail.ravel()
        order = np.argsort(flat_avail, kind="stable")
        self._avail = flat_avail[order]
        local_idx, sample_idx = np.unravel_index(order, (n_local, n_samp))
        self._vm_rows = vm_rows[local_idx]
        self._samples = sample_idx + first_sample

        cpu = dataset.cpu_pct[self._vm_rows, self._samples]
        mem = dataset.mem_pct[self._vm_rows, self._samples]
        nan_f = nan.ravel()[order]
        spike_f = spike.ravel()[order] & ~nan_f
        cpu = np.where(nan_f, np.nan, cpu)
        mem = np.where(nan_f, np.nan, mem)
        cpu = np.where(spike_f, schedule.spike_pct, cpu)
        mem = np.where(spike_f, schedule.spike_pct, mem)
        self._cpu = cpu
        self._mem = mem

        self._cursor = 0
        self._last_success = schedule.horizon_start

    @property
    def collector_id(self) -> int:
        """This collector's id within the schedule."""
        return self._id

    def poll(self, slot: int) -> "_TelemetryBatch":
        """Everything that became available by the poll at ``slot``.

        Raises:
            CollectorTimeoutError: when the collector is inside a
                dropout window at ``slot`` (nothing is consumed; the
                queued samples arrive at the next successful poll).
        """
        schedule = self._schedule
        if (
            schedule.horizon_start <= slot < schedule.horizon_end
            and schedule.collector_down(self._id, slot)
        ):
            raise CollectorTimeoutError(
                f"collector {self._id} timed out polling slot {slot} "
                f"(inside a dropout window)"
            )
        lo = self._cursor
        hi = int(np.searchsorted(self._avail, slot, side="right"))
        self._cursor = max(lo, hi)
        self._last_success = max(self._last_success, int(slot))
        return _TelemetryBatch(
            vm_rows=self._vm_rows[lo : self._cursor],
            samples=self._samples[lo : self._cursor],
            cpu=self._cpu[lo : self._cursor],
            mem=self._mem[lo : self._cursor],
        )

    # -- checkpoint ----------------------------------------------------

    def state(self) -> Tuple[int, int]:
        """Cursor snapshot: ``(stream position, last successful poll)``."""
        return (self._cursor, self._last_success)

    def restore(self, state: Tuple[int, int]) -> None:
        """Reset the cursor to a :meth:`state` snapshot."""
        cursor, last_success = state
        self._cursor = int(cursor)
        self._last_success = int(last_success)


# -- ingestion / imputation -------------------------------------------


class TelemetryIngest:
    """Observation buffers with gap-filling reads and quality marks.

    Delivered samples are validated — finite and inside [0, 100];
    NaN/spike corruption fails validation and the sample stays missing
    — into dataset-shaped observation buffers.  Reads fill the gaps:
    last observation carried forward into a window's leading edge,
    linear interpolation between observed samples inside, carry-forward
    past the last observed sample, and the cold-start value for VMs
    never observed at all.  :meth:`fill_into` additionally materializes
    the filled window into the shared *imputed* buffers that back the
    observed :class:`~repro.traces.dataset.TraceDataset` the
    :class:`ForecastLadder` fits on.

    The all-valid fast path (clean telemetry) is a plain copy, which is
    what makes clean streaming runs bit-identical to the batch engine.
    """

    def __init__(
        self, dataset: TraceDataset, cold_start_util_pct: float = 50.0
    ) -> None:
        if not 0.0 <= cold_start_util_pct <= 100.0:
            raise ConfigurationError(
                f"cold_start_util_pct must be in [0, 100], got "
                f"{cold_start_util_pct}"
            )
        shape = dataset.cpu_pct.shape
        self._cold = float(cold_start_util_pct)
        self.obs_cpu = np.zeros(shape)
        self.obs_mem = np.zeros(shape)
        self.valid = np.zeros(shape, dtype=bool)
        # Imputed buffers double as the observed dataset's storage:
        # TraceDataset is frozen but holds references, so in-place
        # fills are visible to the predictor without rebuilding it.
        self.imp_cpu = np.zeros(shape)
        self.imp_mem = np.zeros(shape)
        self.observed_dataset = TraceDataset(
            specs=dataset.specs,
            cpu_pct=self.imp_cpu,
            mem_pct=self.imp_mem,
        )
        #: Newest slot with at least one validly delivered sample
        #: (-1 until first delivery): the blind-window detector.
        self.newest_delivery_slot = -1

    def ingest(self, batch: _TelemetryBatch) -> None:
        """Validate and store one poll's deliveries."""
        if batch.n_samples == 0:
            return
        with np.errstate(invalid="ignore"):
            ok = (
                np.isfinite(batch.cpu)
                & np.isfinite(batch.mem)
                & (batch.cpu >= 0.0)
                & (batch.cpu <= 100.0)
                & (batch.mem >= 0.0)
                & (batch.mem <= 100.0)
            )
        if not ok.any():
            return
        rows = batch.vm_rows[ok]
        samples = batch.samples[ok]
        self.obs_cpu[rows, samples] = batch.cpu[ok]
        self.obs_mem[rows, samples] = batch.mem[ok]
        self.valid[rows, samples] = True
        newest = int(samples.max()) // SAMPLES_PER_SLOT
        if newest > self.newest_delivery_slot:
            self.newest_delivery_slot = newest

    # -- quality -------------------------------------------------------

    def sample_quality(self, lo: int, hi: int) -> np.ndarray:
        """Per-VM quality marks for sample range ``[lo, hi)``.

        ``QUALITY_OBSERVED`` where a valid reading was delivered,
        ``QUALITY_IMPUTED`` everywhere a read would have to fill in.
        """
        return np.where(
            self.valid[:, lo:hi], QUALITY_OBSERVED, QUALITY_IMPUTED
        ).astype(np.int8)

    def missing_fraction(self, lo: int, hi: int) -> float:
        """Fraction of ``[lo, hi)`` samples without a valid reading."""
        window = self.valid[:, lo:hi]
        return float(1.0 - window.mean()) if window.size else 0.0

    def missing_count(self, rows: np.ndarray, lo: int, hi: int) -> int:
        """Samples of ``rows`` in ``[lo, hi)`` without a valid reading."""
        return int((~self.valid[rows, lo:hi]).sum())

    # -- gap-filling reads ---------------------------------------------

    def _carry_before(self, lo: int):
        """Last valid value (and its existence) before sample ``lo``."""
        n_vms = self.valid.shape[0]
        if lo <= 0:
            has = np.zeros(n_vms, dtype=bool)
            return has, np.zeros(n_vms), np.zeros(n_vms)
        prefix = self.valid[:, :lo]
        has = prefix.any(axis=1)
        last = lo - 1 - np.argmax(prefix[:, ::-1], axis=1)
        rows = np.arange(n_vms)
        cpu = np.where(has, self.obs_cpu[rows, last], self._cold)
        mem = np.where(has, self.obs_mem[rows, last], self._cold)
        return has, cpu, mem

    def last_values(self, before_sample: int):
        """Per-VM last observed (cpu, mem) before ``before_sample``.

        VMs never observed get the cold-start value — the persistence
        rung's flat pattern source.
        """
        _, cpu, mem = self._carry_before(before_sample)
        return cpu, mem

    def filled_window(self, lo: int, hi: int):
        """LOCF/linear-filled copies of ``[lo, hi)`` (buffers untouched)."""
        return self._fill(lo, hi)

    def fill_into(self, lo: int, hi: int) -> None:
        """Fill ``[lo, hi)`` into the shared imputed buffers."""
        cpu, mem = self._fill(lo, hi)
        self.imp_cpu[:, lo:hi] = cpu
        self.imp_mem[:, lo:hi] = mem

    def _fill(self, lo: int, hi: int):
        window_valid = self.valid[:, lo:hi]
        cpu = self.obs_cpu[:, lo:hi].copy()
        mem = self.obs_mem[:, lo:hi].copy()
        if window_valid.all():
            return cpu, mem  # clean fast path: nothing to fill
        has_carry, carry_cpu, carry_mem = self._carry_before(lo)
        n = hi - lo
        grid = np.arange(n)
        for row in np.flatnonzero(~window_valid.all(axis=1)):
            idx = np.flatnonzero(window_valid[row])
            if idx.size == 0:
                # No observation inside the window: carry the last
                # value across it wholesale (cold start if none ever).
                cpu[row] = carry_cpu[row]
                mem[row] = carry_mem[row]
                continue
            # np.interp: linear inside, edge-value (carry/backfill)
            # outside; exact at the observed nodes.
            cpu[row] = np.interp(grid, idx, cpu[row, idx])
            mem[row] = np.interp(grid, idx, mem[row, idx])
            if idx[0] > 0 and has_carry[row]:
                # The leading gap has history: carry it forward
                # instead of backfilling from the window's first
                # observation.
                cpu[row, : idx[0]] = carry_cpu[row]
                mem[row, : idx[0]] = carry_mem[row]
        return cpu, mem

    # -- checkpoint ----------------------------------------------------

    def state(self) -> Dict[str, object]:
        """Deep snapshot of every mutable buffer."""
        return {
            "obs_cpu": self.obs_cpu.copy(),
            "obs_mem": self.obs_mem.copy(),
            "valid": self.valid.copy(),
            "imp_cpu": self.imp_cpu.copy(),
            "imp_mem": self.imp_mem.copy(),
            "newest_delivery_slot": self.newest_delivery_slot,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state` snapshot (in place, so the observed
        dataset's array references stay valid)."""
        self.obs_cpu[:] = state["obs_cpu"]
        self.obs_mem[:] = state["obs_mem"]
        self.valid[:] = state["valid"]
        self.imp_cpu[:] = state["imp_cpu"]
        self.imp_mem[:] = state["imp_mem"]
        self.newest_delivery_slot = int(state["newest_delivery_slot"])


# -- the fallback ladder ----------------------------------------------

#: Ladder rung labels, freshest first.
RUNG_FRESH = "fresh"
RUNG_STALE = "stale"
RUNG_PERSISTENCE = "persistence"
RUNG_BLIND = "reactive-only"


class ForecastLadder:
    """Day-ahead forecasts with staleness-aware fallback (see module
    docstring for the ladder diagram).

    Day-level decisions (fresh vs stale vs no usable forecast) are
    cached **at decision time**: a later-arriving backfill of history
    must not retroactively change a forecast that was already used —
    that property is what makes checkpoint/resume bit-exact.

    Args:
        ingest: the ingestion stage whose imputed buffers back the
            observed dataset.
        history_days: the fit window (mirrors the batch predictor).
        max_imputed_frac: highest imputed fraction of the history
            window that still counts as a fresh fit.
        staleness_budget_slots: how long a last-good day forecast may
            be re-used, in slots (day-granular: a day-ahead forecast
            ages in whole days, so the budget must be at least
            ``SLOTS_PER_DAY`` or the stale rung is unreachable).
        factory: forecaster factory for the internal predictor
            (``None`` = the house Hannan-Rissanen/companion-matrix
            default); pass the batch predictor's factory so clean
            telemetry reproduces its forecasts bit-exactly.
        clip_range: forecast clip range of the internal predictor.
        predictor: optional pre-built predictor over
            ``ingest.observed_dataset`` — e.g. the incremental
            :class:`repro.serve.incremental.IncrementalDayAheadForecaster`
            — used instead of constructing a
            :class:`~repro.forecast.DayAheadPredictor` (``history_days``
            is then taken from it; ``factory`` / ``clip_range`` are
            ignored).  If it exposes ``state()`` / ``restore()``, its
            rolling state rides the ladder's checkpoint snapshots.
    """

    def __init__(
        self,
        ingest: TelemetryIngest,
        history_days: int = 7,
        max_imputed_frac: float = 0.25,
        staleness_budget_slots: int = 3 * SLOTS_PER_DAY,
        factory=None,
        clip_range: Tuple[float, float] = (0.0, 100.0),
        predictor=None,
    ) -> None:
        if not 0.0 <= max_imputed_frac <= 1.0:
            raise ConfigurationError(
                f"max_imputed_frac must be in [0, 1], got "
                f"{max_imputed_frac}"
            )
        if staleness_budget_slots < SLOTS_PER_DAY:
            raise ConfigurationError(
                f"staleness_budget_slots must be >= {SLOTS_PER_DAY} "
                f"(one day): a day-ahead forecast ages in whole days, "
                f"so a budget of {staleness_budget_slots} slots makes "
                f"the stale rung unreachable — raise the budget or "
                f"drop straight to persistence"
            )
        self._ingest = ingest
        self._max_imputed = float(max_imputed_frac)
        self._budget = int(staleness_budget_slots)
        if predictor is not None:
            self._predictor = predictor
            self._history_days = int(
                getattr(predictor, "history_days", history_days)
            )
        else:
            self._history_days = int(history_days)
            self._predictor = DayAheadPredictor(
                ingest.observed_dataset,
                history_days=history_days,
                factory=factory,
                clip_range=clip_range,
            )
        # day -> (rung, cpu_day, mem_day); arrays are None on the
        # "no usable forecast" rung.
        self._days: Dict[int, Tuple[str, object, object]] = {}
        self._last_fresh_day = -1
        #: Optional :class:`~repro.obs.tracer.RunTracer`; when set,
        #: every *new* day decision (a cache miss) emits a
        #: ``ladder_rung`` event.  Restored (checkpointed) decisions
        #: do not re-emit — they were already traced when made.
        self.tracer = None

    def day_decision(self, day: int) -> Tuple[str, object, object]:
        """The ladder's (rung, cpu, mem) for one forecast day (cached)."""
        cached = self._days.get(day)
        if cached is not None:
            return cached
        lo = (day - self._history_days) * SAMPLES_PER_DAY
        hi = day * SAMPLES_PER_DAY
        frac = self._ingest.missing_fraction(max(lo, 0), hi)
        if frac <= self._max_imputed:
            self._ingest.fill_into(max(lo, 0), hi)
            cpu, mem = self._predictor.forecast_day(day)
            decision = (RUNG_FRESH, cpu, mem)
            self._last_fresh_day = day
        elif (
            self._last_fresh_day >= 0
            and (day - self._last_fresh_day) * SLOTS_PER_DAY
            <= self._budget
        ):
            _, cpu, mem = self._days[self._last_fresh_day]
            decision = (RUNG_STALE, cpu, mem)
        else:
            decision = (RUNG_PERSISTENCE, None, None)
        self._days[day] = decision
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("ladder_rung", day=day, rung=decision[0])
        return decision

    # -- checkpoint ----------------------------------------------------

    def state(self) -> Dict[str, object]:
        """Snapshot of the day-decision cache.

        When the predictor itself is stateful (the incremental
        forecaster's rolling epoch), its snapshot rides along so a
        resumed run refits exactly where the original would have.
        """
        state: Dict[str, object] = {
            "days": dict(self._days),
            "last_fresh_day": self._last_fresh_day,
        }
        pred_state = getattr(self._predictor, "state", None)
        if callable(pred_state):
            state["predictor"] = pred_state()
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state` snapshot.

        The day cache carries the decision-time forecast arrays, so
        the internal predictor is never re-consulted for restored days
        — late backfills cannot rewrite history after a resume.
        """
        self._days = dict(state["days"])
        self._last_fresh_day = int(state["last_fresh_day"])
        pred_state = state.get("predictor")
        if pred_state is not None:
            restore = getattr(self._predictor, "restore", None)
            if callable(restore):
                restore(pred_state)
