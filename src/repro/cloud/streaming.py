"""Streaming cloud simulation: windowed decisions from degraded telemetry.

:class:`StreamingCloudSimulation` turns the batch
:class:`~repro.dcsim.cloud.CloudSimulation` into the windowed driver
ROADMAP item 2 asks for: instead of planning from the pre-known trace
week, every allocation window first *ingests* — each collector is
polled once per elapsed slot (bounded retry/backoff,
:func:`~repro.cloud.telemetry.poll_with_retry`), deliveries pass the
imputation/quality stage (:class:`~repro.cloud.telemetry.TelemetryIngest`)
— and then *decides* from whatever rung of the forecast-staleness
fallback ladder (:class:`~repro.cloud.telemetry.ForecastLadder`) the
degradation leaves reachable:

* **fresh** — the history window is clean enough: a day-ahead
  Hannan-Rissanen/companion-matrix fit on the imputed observations;
* **stale** — too gappy to re-fit, but a recent fresh forecast exists:
  re-use it while its age stays within the staleness budget;
* **persistence** — no usable forecast: flat last-observed patterns;
* **reactive-only** — telemetry entirely dark for longer than
  ``blind_after_slots``: skip re-planning and *freeze* the previous
  placement (departed VMs dropped, arrivals spread round-robin), the
  engine's blind-window mode.

Degradation touches only the *decision inputs* — accounting always
runs on the true traces, so the energy/SLA cost of flying blind is
measured, not assumed.  With lossless telemetry every input is
bit-identical to the batch engine's, which is the equivalence the
telemetry test-suite asserts (and a ``telemetry=None`` run uses the
caller's predictor directly, exercising only the windowed driver).

The windowed driver also brings **checkpoint/resume**: accounting is
eager (``superbatch`` is forced off), so at any window boundary the
complete run state — records so far, policy, previous placement,
collector cursors, ingest buffers, ladder cache — is a picklable
snapshot.  A run resumed from a snapshot is bit-identical to the
uninterrupted run, because nothing downstream of the snapshot consults
a clock or an unseeded RNG.

Two service-mode extensions (PR 10) ride on the same loop:

* **live collectors** — ``collectors=`` accepts any sequence of
  :class:`~repro.serve.adapters.CollectorAdapter` implementations
  (synthetic push, HTTP feed, ...) in place of the replay
  ``telemetry=`` schedule; poll/timeout/retry semantics are unchanged.
* **incremental forecasts** — ``incremental_forecasts=True`` swaps the
  ladder's internal batch predictor for the
  :class:`~repro.serve.incremental.IncrementalDayAheadForecaster`,
  which refreshes the Hannan-Rissanen fit day-over-day instead of
  re-fitting from scratch (full re-fit kept callable as the oracle).

:meth:`StreamingCloudSimulation.windows` exposes the loop one decision
at a time for operator front ends (``repro.serve.service``); ``run()``
simply drains it.
"""

from __future__ import annotations

import copy
import os
import pickle
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.online import OnlinePolicy
from ..core.types import Allocation, AllocationPolicy, ServerPlan
from ..errors import ConfigurationError
from ..serve.adapters import CollectorAdapter, poll_with_retry
from ..serve.incremental import IncrementalDayAheadForecaster
from ..traces.dataset import TraceDataset
from ..traces.lifecycle import LifecycleSchedule
from ..units import SAMPLES_PER_SLOT, SLOTS_PER_DAY
from ..dcsim.cloud import CloudSimulation
from ..dcsim.engine import count_migrations
from ..dcsim.metrics import SimulationResult, SlotRecord
from .telemetry import (
    RUNG_STALE,
    ForecastLadder,
    TelemetryFaultSchedule,
    TelemetryIngest,
    TraceCollector,
)


@dataclass(frozen=True)
class WindowDecision:
    """One allocation window's decision, as seen by an operator.

    Yielded by :meth:`StreamingCloudSimulation.windows` after the
    window has been planned *and* accounted — every field is final.
    This is the payload the ``repro.serve`` service loop turns into
    ``decision_*`` tracer events.

    Attributes:
        slot: first slot of the window.
        n_window: window length in slots.
        case: the engine case chosen (``"blind-freeze"`` on the
            reactive-only rung; ``""`` for an empty cloud).
        rung: the forecast ladder rung this window planned from
            (``None`` when the telemetry layer is disabled or the
            cloud is empty — no ladder consultation happened).
        blind: the window froze the previous placement.
        stale: the window planned from an aged forecast.
        n_active_vms: VMs active in the window.
        arrivals: VMs that arrived at the window boundary.
        departures: VMs that departed at the window boundary.
        migrations: VM moves relative to the previous placement.
        active_servers: servers powered on.
        forced_placements: placements that violated the policy's
            preferred packing (capacity pressure).
        collectors_down: collectors dark at the window's first slot.
        imputed_samples: imputed samples in the last observed slot.
        energy_j: total energy accounted to the window.
        violations: SLA violation count accounted to the window.
        checkpointed: a run snapshot was taken at this boundary.
    """

    slot: int
    n_window: int
    case: str
    rung: Optional[str]
    blind: bool
    stale: bool
    n_active_vms: int
    arrivals: int
    departures: int
    migrations: int
    active_servers: int
    forced_placements: int
    collectors_down: int
    imputed_samples: int
    energy_j: float
    violations: int
    checkpointed: bool


class _LadderPredictor:
    """Predictor facade routing the engine through the fallback ladder.

    Quacks like :class:`~repro.forecast.DayAheadPredictor` for the
    engine's ``_window_predictions`` loop: day-rung forecasts come from
    the ladder's decision cache; slots whose day has no usable forecast
    fall back to the window's frozen persistence patterns (flat
    last-observed values, set once per window by
    :meth:`StreamingCloudSimulation._ladder_begin`).
    """

    def __init__(self, ladder: ForecastLadder, first_day: int) -> None:
        self._ladder = ladder
        self._first_day = int(first_day)
        self._persist: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def first_predictable_day(self) -> int:
        return self._first_day

    def set_persist(
        self, cpu_vals: np.ndarray, mem_vals: np.ndarray
    ) -> None:
        """Freeze the window's persistence patterns (per-VM flats)."""
        self._persist = (
            np.repeat(cpu_vals[:, None], SAMPLES_PER_SLOT, axis=1),
            np.repeat(mem_vals[:, None], SAMPLES_PER_SLOT, axis=1),
        )

    def predicted_slot(self, slot: int):
        _, cpu, mem = self._ladder.day_decision(slot // SLOTS_PER_DAY)
        if cpu is not None:
            lo = (slot % SLOTS_PER_DAY) * SAMPLES_PER_SLOT
            hi = lo + SAMPLES_PER_SLOT
            return cpu[:, lo:hi], mem[:, lo:hi]
        if self._persist is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                "ladder predictor consulted before the window began"
            )
        return self._persist


class StreamingCloudSimulation(CloudSimulation):
    """Windowed cloud simulation fed by (possibly degraded) telemetry.

    See the module docstring for the decision ladder.  Everything the
    batch :class:`~repro.dcsim.cloud.CloudSimulation` supports — churn,
    resizes, heterogeneous fleets, infrastructure faults — runs
    unchanged underneath; this class only swaps where the *decision
    inputs* come from and accounts the windows as they arrive.

    Args:
        dataset: true utilization traces (accounting ground truth, and
            the stream the file-replay collectors play back).
        predictor: the batch day-ahead predictor.  With telemetry it
            contributes its configuration (history window, forecaster
            factory, clip range) to the ladder's internal predictor,
            which re-fits on *observed* data instead; without telemetry
            it is used directly.
        policy: as in the batch engine.
        schedule: the VM lifecycle schedule.
        telemetry: the degradation timeline; ``None`` disables the
            telemetry layer entirely (the windowed driver over perfect
            observations).
        max_imputed_frac: fresh-fit threshold — highest imputed
            fraction of the forecast history window that still earns a
            re-fit (ladder rung 1 vs 2).
        staleness_budget_slots: how long a last-good forecast may be
            re-used (>= ``SLOTS_PER_DAY``; day-granular aging).
        blind_after_slots: windows with no successful delivery for more
            than this many slots freeze the previous placement
            (>= 1; normal operation has age exactly 1).
        cold_start_util_pct: assumed utilization for VMs never observed
            (imputation cold start and persistence fallback).
        poll_retries: bounded retries per collector poll.
        poll_backoff_s: base exponential-backoff delay between retries
            (0 keeps replay instant).
        sleep: injectable backoff sleep (tests).
        checkpoint_every_slots: snapshot the run state at the first
            window boundary at or past every multiple of this many
            slots (``None`` disables checkpointing).  Snapshots are
            collected on :attr:`checkpoints` and, when
            ``checkpoint_path`` is set, pickled there atomically
            (last snapshot wins).
        checkpoint_path: where to persist the latest snapshot.
        collectors: live :class:`~repro.serve.adapters.CollectorAdapter`
            feed — polled with the same once-per-elapsed-slot
            retry/backoff loop the replay collectors use.  Mutually
            exclusive with ``telemetry`` (replay builds its own
            :class:`~repro.cloud.telemetry.TraceCollector` set).
        incremental_forecasts: route the ladder's fresh rung through
            the :class:`~repro.serve.incremental.IncrementalDayAheadForecaster`
            (day-over-day Hannan-Rissanen refresh) instead of the full
            daily re-fit.  Requires a telemetry stream (``telemetry=``
            or ``collectors=``).
        refit_every_days: incremental mode's epoch length — a full
            oracle re-fit at least this often (see the forecaster).
        **kwargs: forwarded to the batch engine.  ``superbatch`` is
            forced off — streaming accounts windows eagerly so a
            checkpoint never holds deferred accounting (the accounting
            tiers are bit-identical, so results do not change).
    """

    _ENGINE_NAME = "streaming"

    def __init__(
        self,
        dataset: TraceDataset,
        predictor,
        policy: AllocationPolicy,
        schedule: LifecycleSchedule,
        telemetry: Optional[TelemetryFaultSchedule] = None,
        max_imputed_frac: float = 0.25,
        staleness_budget_slots: int = 3 * SLOTS_PER_DAY,
        blind_after_slots: int = 2,
        cold_start_util_pct: float = 50.0,
        poll_retries: int = 2,
        poll_backoff_s: float = 0.0,
        sleep=None,
        checkpoint_every_slots: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        collectors: Optional[Sequence[CollectorAdapter]] = None,
        incremental_forecasts: bool = False,
        refit_every_days: int = 7,
        **kwargs,
    ):
        kwargs["superbatch"] = False
        super().__init__(dataset, predictor, policy, schedule, **kwargs)
        if blind_after_slots < 1:
            raise ConfigurationError(
                f"blind_after_slots must be >= 1, got {blind_after_slots}"
                " — under normal operation the newest delivery is "
                "exactly one slot old"
            )
        if poll_retries < 0:
            raise ConfigurationError(
                f"poll_retries must be >= 0, got {poll_retries}"
            )
        if poll_backoff_s < 0:
            raise ConfigurationError(
                f"poll_backoff_s must be >= 0, got {poll_backoff_s}"
            )
        if checkpoint_every_slots is not None and checkpoint_every_slots < 1:
            raise ConfigurationError(
                f"checkpoint_every_slots must be >= 1, got "
                f"{checkpoint_every_slots}"
            )
        if telemetry is not None and collectors is not None:
            raise ConfigurationError(
                "telemetry= and collectors= are mutually exclusive: a "
                "replay degradation schedule builds its own "
                "TraceCollector set, a live feed brings its own "
                "adapters"
            )
        if incremental_forecasts and telemetry is None and collectors is None:
            raise ConfigurationError(
                "incremental_forecasts requires a telemetry stream "
                "(telemetry= or collectors=): without one the engine "
                "plans from the caller's batch predictor, which has "
                "nothing to update day-over-day"
            )
        self._telemetry = telemetry
        self._blind_after = int(blind_after_slots)
        self._poll_retries = int(poll_retries)
        self._poll_backoff_s = float(poll_backoff_s)
        self._sleep = sleep
        self._ckpt_every = checkpoint_every_slots
        self._ckpt_path = checkpoint_path
        #: In-memory snapshots collected during :meth:`run` (one per
        #: checkpoint boundary); pass one to :meth:`restore`.
        self.checkpoints: List[dict] = []
        self._resume_state: Optional[dict] = None
        self._result: Optional[SimulationResult] = None

        self._collectors: List[CollectorAdapter] = []
        self._ingest: Optional[TelemetryIngest] = None
        self._ladder: Optional[ForecastLadder] = None
        self._window_rung: Optional[str] = None
        if telemetry is None and collectors is None:
            self._ingested_until = 0
            return

        if telemetry is not None:
            end = self._start_slot + self._n_slots
            if telemetry.n_vms != dataset.n_vms:
                raise ConfigurationError(
                    f"telemetry schedule covers {telemetry.n_vms} VMs, "
                    f"dataset has {dataset.n_vms}"
                )
            if telemetry.horizon_start != 0 or telemetry.horizon_end < end:
                raise ConfigurationError(
                    f"telemetry schedule must cover the full trace horizon "
                    f"[0, {end}) — the forecaster's history streams in from "
                    f"slot 0 — got [{telemetry.horizon_start}, "
                    f"{telemetry.horizon_end})"
                )
            self._collectors = [
                TraceCollector(cid, dataset, telemetry)
                for cid in range(telemetry.n_collectors)
            ]
            self._ingested_until = telemetry.horizon_start
        else:
            self._collectors = list(collectors)
            if not self._collectors:
                raise ConfigurationError(
                    "collectors= must name at least one adapter"
                )
            self._ingested_until = 0
        self._ingest = TelemetryIngest(
            dataset, cold_start_util_pct=cold_start_util_pct
        )
        ladder_predictor = None
        if incremental_forecasts:
            ladder_predictor = IncrementalDayAheadForecaster(
                self._ingest.observed_dataset,
                history_days=getattr(predictor, "history_days", 7),
                factory=getattr(predictor, "_factory", None),
                clip_range=getattr(predictor, "_clip", (0.0, 100.0)),
                refit_every_days=refit_every_days,
            )
        self._ladder = ForecastLadder(
            self._ingest,
            history_days=getattr(predictor, "history_days", 7),
            max_imputed_frac=max_imputed_frac,
            staleness_budget_slots=staleness_budget_slots,
            factory=getattr(predictor, "_factory", None),
            clip_range=getattr(predictor, "_clip", (0.0, 100.0)),
            predictor=ladder_predictor,
        )
        self._ladder.tracer = self._tracer
        # The engine plans through the ladder from here on; the user's
        # predictor contributed start slot + fit configuration above.
        self._predictor = _LadderPredictor(
            self._ladder, getattr(predictor, "first_predictable_day", 0)
        )

    # -- ingestion -----------------------------------------------------

    def _ingest_to(self, slot: int) -> None:
        """Poll every collector once per elapsed slot up to ``slot``."""
        for s in range(self._ingested_until + 1, slot + 1):
            for collector in self._collectors:
                batch = poll_with_retry(
                    collector,
                    s,
                    retries=self._poll_retries,
                    backoff_s=self._poll_backoff_s,
                    sleep=self._sleep,
                    tracer=self._tracer,
                )
                if batch is not None:
                    self._ingest.ingest(batch)
        self._ingested_until = max(self._ingested_until, slot)

    def _ladder_begin(self, slot: int) -> None:
        """Freeze the window's persistence patterns and day rung."""
        cpu_vals, mem_vals = self._ingest.last_values(
            slot * SAMPLES_PER_SLOT
        )
        self._predictor.set_persist(cpu_vals, mem_vals)
        rung, _, _ = self._ladder.day_decision(slot // SLOTS_PER_DAY)
        self._window_rung = rung

    def _last_observed(self, slot: int, active: np.ndarray):
        """The reactive signal as *delivered*: imputed where degraded."""
        if self._ingest is None:
            return super()._last_observed(slot, active)
        prev = slot - 1
        if prev < 0:
            return None, None
        lo = prev * SAMPLES_PER_SLOT
        cpu_f, mem_f = self._ingest.filled_window(lo, lo + SAMPLES_PER_SLOT)
        last_cpu = cpu_f[active]
        last_mem = mem_f[active]
        scale_prev = self._schedule.scale_at(prev)
        if scale_prev is not None:
            last_cpu *= scale_prev[0][active][:, None]
            last_mem *= scale_prev[1][active][:, None]
        ran = self._schedule.active_mask(prev)[active]
        last_cpu[~ran] = np.nan
        last_mem[~ran] = np.nan
        return last_cpu, last_mem

    # -- blind windows -------------------------------------------------

    def _blind_allocation(
        self,
        prev_alloc: Allocation,
        prev_active: np.ndarray,
        active: np.ndarray,
    ) -> Allocation:
        """Freeze the previous placement (the reactive-only rung).

        Departed VMs leave their plans; arrivals are spread round-robin
        onto the already-running servers with the fewest VMs (an empty
        plan — a switched-off server — is powered on only when nothing
        is running).  Caps, planned frequencies and pool tags are kept
        verbatim: without telemetry there is no basis to re-tune them.
        """
        new_local = {int(g): i for i, g in enumerate(active)}
        plans: List[ServerPlan] = []
        for plan in prev_alloc.plans:
            kept = [
                new_local[int(prev_active[v])]
                for v in plan.vm_ids
                if int(prev_active[v]) in new_local
            ]
            plans.append(
                ServerPlan(
                    vm_ids=kept,
                    cap_cpu_pct=plan.cap_cpu_pct,
                    cap_mem_pct=plan.cap_mem_pct,
                    planned_freq_ghz=plan.planned_freq_ghz,
                )
            )
        placed = {v for plan in plans for v in plan.vm_ids}
        counts = np.array([len(p.vm_ids) for p in plans], dtype=float)
        occupied = counts > 0
        for i in range(len(active)):
            if i in placed:
                continue
            pool = counts.copy()
            if occupied.any():
                pool[~occupied] = np.inf
            j = int(np.argmin(pool))
            plans[j].vm_ids.append(i)
            counts[j] += 1
            occupied[j] = True
        return Allocation(
            policy_name=prev_alloc.policy_name,
            plans=plans,
            dynamic_governor=prev_alloc.dynamic_governor,
            violation_cap_pct=prev_alloc.violation_cap_pct,
            case="blind-freeze",
            f_opt_ghz=prev_alloc.f_opt_ghz,
            forced_placements=0,
            server_pools=(
                None
                if prev_alloc.server_pools is None
                else np.array(prev_alloc.server_pools, copy=True)
            ),
            shed_vm_ids=[],
        )

    # -- checkpoint/resume ---------------------------------------------

    def restore(self, source) -> None:
        """Arm the next :meth:`run` to resume from a snapshot.

        Args:
            source: a snapshot dict (from :attr:`checkpoints`) or a
                path to a pickled one (``checkpoint_path``).
        """
        if isinstance(source, (str, os.PathLike)):
            with open(source, "rb") as fh:
                source = pickle.load(fh)
        self._resume_state = source

    def _snapshot(
        self,
        next_slot: int,
        records: List[SlotRecord],
        prev_active,
        prev_alloc,
        prev_ids,
        prev_map,
        prev_pools,
        prev_fw,
    ) -> dict:
        stream = self._ingest is not None
        return {
            "next_slot": int(next_slot),
            "records": list(records),
            "prev_active": None if prev_active is None else prev_active.copy(),
            "prev_alloc": copy.deepcopy(prev_alloc),
            "prev_ids": None if prev_ids is None else prev_ids.copy(),
            "prev_map": None if prev_map is None else prev_map.copy(),
            "prev_pools": None if prev_pools is None else prev_pools.copy(),
            "prev_fw": prev_fw,
            "policy": copy.deepcopy(self._policy),
            "ingested_until": self._ingested_until,
            "collectors": (
                [c.state() for c in self._collectors] if stream else None
            ),
            "ingest": self._ingest.state() if stream else None,
            "ladder": self._ladder.state() if stream else None,
        }

    def _write_checkpoint(self, state: dict) -> None:
        tmp = f"{self._ckpt_path}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(state, fh)
        os.replace(tmp, self._ckpt_path)

    def _apply_state(self, state: dict) -> None:
        stream = self._ingest is not None
        if stream != (state["collectors"] is not None):
            raise ConfigurationError(
                "checkpoint and simulation disagree about the telemetry "
                "layer (one has it, the other does not)"
            )
        self._policy = copy.deepcopy(state["policy"])
        self._ingested_until = int(state["ingested_until"])
        if stream:
            for collector, cstate in zip(
                self._collectors, state["collectors"]
            ):
                collector.restore(cstate)
            self._ingest.restore(state["ingest"])
            self._ladder.restore(state["ladder"])

    # -- the windowed driver -------------------------------------------

    @property
    def result(self) -> SimulationResult:
        """The last completed run's result.

        Available after :meth:`run` returns or after a
        :meth:`windows` generator has been exhausted.
        """
        if self._result is None:
            raise ConfigurationError(
                "no completed run: the result is available after run() "
                "returns or the windows() generator is exhausted"
            )
        return self._result

    def run(self) -> SimulationResult:
        """Stream the horizon: ingest, decide, account, checkpoint."""
        for _ in self.windows():
            pass
        return self.result

    def windows(self) -> Iterator[WindowDecision]:
        """Stream the horizon one allocation window at a time.

        Yields a final (planned *and* accounted) :class:`WindowDecision`
        per window — the operator-facing form of the loop :meth:`run`
        drains.  Checkpoints are taken at the same boundaries, so a
        consumer may stop mid-stream and resume later.  When the
        generator is exhausted the full :class:`SimulationResult` is
        available on :attr:`result`.
        """
        stream = self._ingest is not None
        resume = self._resume_state
        self._resume_state = None
        self.checkpoints = []
        self._result = None
        if resume is not None:
            self._apply_state(resume)
            records: List[SlotRecord] = list(resume["records"])
            slot = int(resume["next_slot"])
            prev_active = resume["prev_active"]
            prev_alloc = copy.deepcopy(resume["prev_alloc"])
            prev_ids = resume["prev_ids"]
            prev_map = resume["prev_map"]
            prev_pools = resume["prev_pools"]
            prev_fw = resume["prev_fw"]
        else:
            if isinstance(self._policy, OnlinePolicy):
                self._policy.reset()
            records = []
            slot = self._start_slot
            prev_active = prev_alloc = None
            prev_ids = prev_map = prev_pools = prev_fw = None

        self._trace_run_start()
        period = max(1, int(self._policy.reallocation_period_slots))
        sched = self._schedule
        end = self._start_slot + self._n_slots
        if self._ckpt_every is not None:
            every = self._ckpt_every
            next_ckpt = (
                self._start_slot
                + every * ((slot - self._start_slot) // every + 1)
            )
        while slot < end:
            active = sched.active_ids(slot)
            n_window = min(
                period, end - slot, max(1, sched.next_change(slot) - slot)
            )
            fw = None
            if self._faults is not None:
                n_window = min(
                    n_window,
                    max(1, self._faults.next_change(slot) - slot),
                )
                fw = self._fault_window(slot)
            if stream:
                self._ingest_to(slot)
            arrivals = departures = 0
            if prev_ids is not None:
                arrivals = int(
                    np.setdiff1d(active, prev_ids, assume_unique=True).size
                )
                departures = int(
                    np.setdiff1d(prev_ids, active, assume_unique=True).size
                )

            blind = False
            imputed = 0
            stale = False
            if self._telemetry is not None:
                down = [
                    self._telemetry.down_collectors(s)
                    for s in range(slot, slot + n_window)
                ]
            else:
                # A live feed has no fault schedule to consult; dropout
                # shows up as timeouts (poll_retry events), not here.
                down = [0] * n_window

            if active.size == 0:
                # Empty cloud: every server off, nothing to place.
                window_records = [
                    SlotRecord(
                        slot_index=s,
                        case="",
                        n_active_servers=0,
                        violations=0,
                        forced_placements=0,
                        energy_j=0.0,
                        mean_freq_ghz=0.0,
                        f_opt_ghz=0.0,
                        n_failed_servers=fw.n_failed if fw else 0,
                    )
                    for s in range(slot, slot + n_window)
                ]
                n_active_vms = 0
                migrations = 0
                case = ""
                active_servers = forced = 0
                prev_ids = active
                prev_map = np.empty(0, dtype=int)
                prev_pools = None
                prev_active = active
                prev_alloc = None
            else:
                if stream:
                    self._ladder_begin(slot)
                    stale = self._window_rung == RUNG_STALE
                    if slot >= 1:
                        imputed = self._ingest.missing_count(
                            active,
                            (slot - 1) * SAMPLES_PER_SLOT,
                            slot * SAMPLES_PER_SLOT,
                        )
                    # Reactive-only rung: the stream has been dark for
                    # longer than the blind budget and there is a
                    # placement to freeze.
                    blind = (
                        prev_alloc is not None
                        and slot - self._ingest.newest_delivery_slot
                        > self._blind_after
                    )
                scale = sched.scale_at(slot)
                scale_loc = (
                    None
                    if scale is None
                    else (scale[0][active], scale[1][active])
                )
                if stream and self._tracer.enabled:
                    self._tracer.emit(
                        "telemetry_window",
                        slot=slot,
                        rung=(
                            "reactive-only" if blind else self._window_rung
                        ),
                        imputed_samples=imputed,
                        collectors_down=down[0],
                        blind=blind,
                    )
                if blind:
                    allocation = self._blind_allocation(
                        prev_alloc, prev_active, active
                    )
                    stale = False
                else:
                    ctx = self._cloud_context(
                        slot, n_window, active, scale_loc, fw
                    )
                    with self._metrics.phase("policy"):
                        allocation = self._policy.allocate(ctx)
                with self._metrics.phase("allocate"):
                    acct = self._prepare_allocation(
                        allocation,
                        vm_rows=active,
                        scale=scale_loc,
                        fault=fw,
                        fault_boundary=fw != prev_fw,
                    )
                migrations = 0
                if prev_ids is not None and prev_ids.size:
                    common, ia, ib = np.intersect1d(
                        prev_ids,
                        acct.vm_rows,
                        assume_unique=True,
                        return_indices=True,
                    )
                    if common.size:
                        migrations = count_migrations(
                            prev_map[ia],
                            acct.vm2srv[ib],
                            previous_pools=prev_pools,
                            new_pools=acct.pool_idx,
                        )
                self._trace_window(
                    slot,
                    n_window,
                    allocation,
                    acct,
                    migrations,
                    n_active_vms=int(active.size),
                    arrivals=arrivals,
                    departures=departures,
                )
                with self._metrics.phase("account"):
                    if self._window_batch:
                        window_records = self._account_window(
                            slot, n_window, allocation, acct, migrations
                        )
                    else:
                        window_records = [
                            self._account_slot(
                                s,
                                allocation,
                                acct,
                                migrations if s == slot else 0,
                            )
                            for s in range(slot, slot + n_window)
                        ]
                n_active_vms = int(active.size)
                case = allocation.case
                active_servers = window_records[0].n_active_servers
                forced = window_records[0].forced_placements
                prev_ids = acct.vm_rows
                prev_map = acct.vm2srv
                prev_pools = acct.pool_idx
                prev_active = active
                prev_alloc = allocation
            records.extend(
                replace(
                    rec,
                    n_active_vms=n_active_vms,
                    arrivals=arrivals if i == 0 else 0,
                    departures=departures if i == 0 else 0,
                    collectors_down=down[i],
                    imputed_samples=imputed if i == 0 else 0,
                    stale_forecast=1 if stale and i == 0 else 0,
                    blind_window=1 if blind and i == 0 else 0,
                )
                for i, rec in enumerate(window_records)
            )
            if fw != prev_fw:
                self._trace_fault_transition(slot, fw)
            prev_fw = fw
            window_start = slot
            slot += n_window
            checkpointed = False
            if self._ckpt_every is not None and slot >= next_ckpt:
                state = self._snapshot(
                    slot,
                    records,
                    prev_active,
                    prev_alloc,
                    prev_ids,
                    prev_map,
                    prev_pools,
                    prev_fw,
                )
                self.checkpoints.append(state)
                checkpointed = True
                if self._ckpt_path is not None:
                    self._write_checkpoint(state)
                if self._tracer.enabled:
                    self._tracer.emit(
                        "checkpoint",
                        slot=slot,
                        n_records=len(records),
                        persisted=self._ckpt_path is not None,
                    )
                next_ckpt = (
                    self._start_slot
                    + every * ((slot - self._start_slot) // every + 1)
                )
            yield WindowDecision(
                slot=window_start,
                n_window=n_window,
                case=case,
                rung=(
                    ("reactive-only" if blind else self._window_rung)
                    if stream and n_active_vms
                    else None
                ),
                blind=blind,
                stale=stale,
                n_active_vms=n_active_vms,
                arrivals=arrivals,
                departures=departures,
                migrations=migrations,
                active_servers=active_servers,
                forced_placements=forced,
                collectors_down=down[0],
                imputed_samples=imputed,
                energy_j=float(sum(r.energy_j for r in window_records)),
                violations=int(sum(r.violations for r in window_records)),
                checkpointed=checkpointed,
            )
        result = SimulationResult(policy_name=self._policy.name)
        result.records.extend(records)
        self._result = result
        self._trace_run_end(result)


def _run_one_streaming_policy(
    dataset,
    predictor,
    policy: AllocationPolicy,
    schedule: LifecycleSchedule,
    telemetry: Optional[TelemetryFaultSchedule],
    kwargs: Dict,
) -> SimulationResult:
    """Worker entry point: one policy's full streaming run (picklable).

    ``dataset`` may be a :class:`~repro.shard.shm.SharedTraces` handle
    (mapped zero-copy) or a plain :class:`TraceDataset`.
    """
    from ..shard.shm import materialize

    return StreamingCloudSimulation(
        materialize(dataset),
        predictor,
        policy,
        schedule,
        telemetry=telemetry,
        **kwargs,
    ).run()


def run_streaming_policies(
    dataset: TraceDataset,
    predictor,
    policies: Iterable[AllocationPolicy],
    schedule: LifecycleSchedule,
    telemetry: Optional[TelemetryFaultSchedule] = None,
    jobs: int = 1,
    tracer=None,
    metrics=None,
    shared=None,
    **kwargs,
) -> Dict[str, SimulationResult]:
    """Run several policies over the same degraded stream.

    The streaming counterpart of
    :func:`repro.dcsim.cloud.run_cloud_policies`, sharing the common
    runner surface (``jobs`` / ``tracer`` / ``metrics`` / ``shared``).
    With telemetry the workers ship the *configured* predictor — each
    run re-fits on its own observed stream, deterministically, so
    parallel equals serial exactly — and only the traces go through a
    zero-copy shared-memory buffer; without telemetry the day-ahead
    predictions are frozen into shared memory too, as in the batch
    runners.  Serial runs thread ``tracer`` / ``metrics`` into every
    engine; parallel fans drop them (pool task events cover the sweep).
    """
    policy_list = list(policies)
    if kwargs.get("collectors") is not None and jobs is not None and jobs > 1:
        raise ConfigurationError(
            "live collectors cannot fan out across processes — a feed "
            "is consumed once; run live policies with jobs=1"
        )
    if jobs is None or jobs <= 1 or len(policy_list) <= 1:
        serial_kwargs = dict(kwargs, tracer=tracer, metrics=metrics)
        results: Dict[str, SimulationResult] = {}
        for policy in policy_list:
            results[policy.name] = _run_one_streaming_policy(
                dataset, predictor, policy, schedule, telemetry,
                serial_kwargs,
            )
        return results

    from concurrent.futures import ProcessPoolExecutor

    from ..shard.shm import SharedRunInputs, SharedTraces

    owned = []
    if shared is not None:
        traces = shared.traces
        shipped = shared.predictions if telemetry is None else predictor
    elif telemetry is None:
        handle = SharedRunInputs.create(
            dataset,
            predictor,
            start_slot=kwargs.get("start_slot"),
            n_slots=kwargs.get("n_slots"),
        )
        owned.append(handle)
        traces = handle.traces
        shipped = handle.predictions
    else:
        traces = SharedTraces.from_dataset(dataset)
        owned.append(traces)
        shipped = predictor
    try:
        workers = min(jobs, len(policy_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_one_streaming_policy,
                    traces,
                    shipped,
                    policy,
                    schedule,
                    telemetry,
                    kwargs,
                )
                for policy in policy_list
            ]
            return {
                policy.name: future.result()
                for policy, future in zip(policy_list, futures)
            }
    finally:
        for handle in owned:
            handle.close()
            handle.unlink()
