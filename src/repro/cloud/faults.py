"""Seeded fault injection: server/rack outages and power-cap windows.

The robustness layer of the scenario registry: a
:class:`FaultSchedule` is a deterministic, pre-materialized event
timeline — which servers are down at which slots, and what fraction of
the fleet's nominal power budget is available — that both engines
consume by cutting allocation windows at every fault-state change and
reducing the capacity policies see.

Everything is derived from a seed: :func:`generate_faults` draws
outage and cap events from Poisson/MTBF parameters with a single
``numpy`` generator in slot order, so the same seed always produces
the identical schedule (the house determinism convention).  A
zero-event schedule is exact: engines gate every fault branch on
``has_events``, keeping no-fault runs bit-identical to runs without a
schedule at all.

Survivor rule: generated outages are truncated so at least one server
per pool (and fleet-wide) stays up at every slot — a fully-dark fleet
has no defined allocation.  Explicitly constructed schedules violating
this raise at construction time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

#: (server_id, start_slot, end_slot) — down for slots [start, end).
OutageEvent = Tuple[int, int, int]

#: (start_slot, end_slot, cap_frac) — fleet power capped to
#: ``cap_frac`` of nominal full-load power for slots [start, end).
CapEvent = Tuple[int, int, float]


@dataclass(frozen=True)
class FaultConfig:
    """Stochastic parameters for :func:`generate_faults`.

    All rates are per 1-hour slot; MTBFs are in slots.  A zero rate or
    MTBF disables that event class, so the default config generates no
    events at all.

    Attributes:
        server_mtbf_slots: mean slots between failures *per server*
            (0 disables independent server outages).
        outage_duration_mean_slots: mean outage length (exponential,
            rounded, at least one slot).
        rack_size: servers per rack for rack-level outages (0 disables;
            server ids are grouped ``[0..rack_size)``, ...).
        rack_mtbf_slots: mean slots between failures *per rack*.
        cap_rate_per_slot: Poisson rate of power-cap window starts.
        cap_duration_mean_slots: mean cap-window length.
        cap_frac: fleet power budget during a cap window, as a fraction
            of nominal full-load power.
    """

    server_mtbf_slots: float = 0.0
    outage_duration_mean_slots: float = 6.0
    rack_size: int = 0
    rack_mtbf_slots: float = 0.0
    cap_rate_per_slot: float = 0.0
    cap_duration_mean_slots: float = 4.0
    cap_frac: float = 0.7

    def __post_init__(self) -> None:
        for name in (
            "server_mtbf_slots",
            "outage_duration_mean_slots",
            "rack_mtbf_slots",
            "cap_rate_per_slot",
            "cap_duration_mean_slots",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"FaultConfig.{name} must be >= 0, got {value}"
                )
        if self.rack_size < 0:
            raise ConfigurationError(
                f"FaultConfig.rack_size must be >= 0, got {self.rack_size}"
            )
        if self.rack_mtbf_slots > 0 and self.rack_size <= 0:
            raise ConfigurationError(
                "rack_mtbf_slots > 0 needs rack_size >= 1 to define racks"
            )
        if not 0.0 < self.cap_frac <= 1.0:
            raise ConfigurationError(
                f"FaultConfig.cap_frac must be in (0, 1], got "
                f"{self.cap_frac}"
            )


class FaultSchedule:
    """A materialized fault timeline over ``[horizon_start, horizon_end)``.

    Args:
        n_servers: fleet size the server ids refer to.
        horizon_start: first simulated slot the schedule covers.
        horizon_end: one past the last covered slot.
        server_outages: ``(server_id, start, end)`` down-intervals
            (half-open, clamped to the horizon; ids in
            ``[0, n_servers)``).
        cap_windows: ``(start, end, cap_frac)`` fleet power-cap windows
            (overlaps take the tightest cap).
        pool_sizes: per-pool server counts for heterogeneous fleets —
            server ids are pool-major (pool 0's servers first).  Needed
            so engines can reduce per-pool capacity; ``None`` treats
            the fleet as one pool.

    Raises:
        ConfigurationError: on out-of-range events, or if any pool
            (or the whole fleet) is left with zero up servers at any
            slot.
    """

    def __init__(
        self,
        n_servers: int,
        horizon_start: int,
        horizon_end: int,
        server_outages: Sequence[OutageEvent] = (),
        cap_windows: Sequence[CapEvent] = (),
        pool_sizes: Optional[Sequence[int]] = None,
    ) -> None:
        if n_servers < 1:
            raise ConfigurationError("n_servers must be >= 1")
        if horizon_end <= horizon_start:
            raise ConfigurationError(
                f"empty fault horizon [{horizon_start}, {horizon_end})"
            )
        self._n_servers = int(n_servers)
        self._start = int(horizon_start)
        self._end = int(horizon_end)
        horizon = self._end - self._start

        if pool_sizes is not None:
            sizes = tuple(int(s) for s in pool_sizes)
            if any(s < 1 for s in sizes):
                raise ConfigurationError(
                    f"pool_sizes must all be >= 1, got {sizes}"
                )
            if sum(sizes) != self._n_servers:
                raise ConfigurationError(
                    f"pool_sizes sum to {sum(sizes)} but n_servers is "
                    f"{self._n_servers}"
                )
        else:
            sizes = (self._n_servers,)
        self._pool_sizes = sizes
        pool_of = np.repeat(np.arange(len(sizes)), sizes)

        down = np.zeros((self._n_servers, horizon), dtype=bool)
        outages: List[OutageEvent] = []
        for sid, s0, s1 in server_outages:
            sid, s0, s1 = int(sid), int(s0), int(s1)
            if not 0 <= sid < self._n_servers:
                raise ConfigurationError(
                    f"outage server id {sid} out of range "
                    f"[0, {self._n_servers})"
                )
            if s1 <= s0:
                raise ConfigurationError(
                    f"outage interval [{s0}, {s1}) is empty"
                )
            lo = max(s0, self._start) - self._start
            hi = min(s1, self._end) - self._start
            if hi <= lo:
                continue  # entirely outside the horizon
            down[sid, lo:hi] = True
            outages.append((sid, lo + self._start, hi + self._start))
        self._server_outages = tuple(outages)

        # Per-slot, per-pool failed counts; survivor rule enforced.
        n_pools = len(sizes)
        failed = np.zeros((n_pools, horizon), dtype=np.int64)
        for m in range(n_pools):
            failed[m] = down[pool_of == m].sum(axis=0)
            if np.any(failed[m] >= sizes[m]):
                slot = int(np.argmax(failed[m] >= sizes[m])) + self._start
                raise ConfigurationError(
                    f"pool {m} has all {sizes[m]} servers down at slot "
                    f"{slot}; a schedule must leave at least one server "
                    f"per pool up (generated schedules truncate events "
                    f"to guarantee this)"
                )
        self._pool_failed = failed
        self._n_failed = failed.sum(axis=0)

        cap = np.ones(horizon, dtype=float)
        caps: List[CapEvent] = []
        for s0, s1, frac in cap_windows:
            s0, s1, frac = int(s0), int(s1), float(frac)
            if not 0.0 < frac <= 1.0:
                raise ConfigurationError(
                    f"cap_frac must be in (0, 1], got {frac}"
                )
            if s1 <= s0:
                raise ConfigurationError(
                    f"cap interval [{s0}, {s1}) is empty"
                )
            lo = max(s0, self._start) - self._start
            hi = min(s1, self._end) - self._start
            if hi <= lo:
                continue
            np.minimum(cap[lo:hi], frac, out=cap[lo:hi])
            caps.append((lo + self._start, hi + self._start, frac))
        self._cap = cap
        self._cap_windows = tuple(caps)

        # Slots where the fault state changes (first slot included when
        # it already differs from the implicit "all up" state before
        # the horizon): window cuts happen exactly here.
        state = np.vstack([self._pool_failed, cap[None, :]])
        before = np.zeros((state.shape[0], 1))
        before[-1, 0] = 1.0
        changed = np.any(np.diff(np.hstack([before, state]), axis=1) != 0, axis=0)
        self._change_slots = np.flatnonzero(changed) + self._start

        self._has_events = bool(
            self._n_failed.any() or np.any(cap < 1.0)
        )

    # -- introspection -------------------------------------------------

    @property
    def n_servers(self) -> int:
        """Fleet size the schedule describes."""
        return self._n_servers

    @property
    def horizon_start(self) -> int:
        """First covered slot."""
        return self._start

    @property
    def horizon_end(self) -> int:
        """One past the last covered slot."""
        return self._end

    @property
    def pool_sizes(self) -> Tuple[int, ...]:
        """Per-pool server counts (single entry when pool-less)."""
        return self._pool_sizes

    @property
    def has_events(self) -> bool:
        """False for an all-up, uncapped (zero-event) schedule."""
        return self._has_events

    @property
    def server_outages(self) -> Tuple[OutageEvent, ...]:
        """Horizon-clamped ``(server_id, start, end)`` outages."""
        return self._server_outages

    @property
    def cap_windows(self) -> Tuple[CapEvent, ...]:
        """Horizon-clamped ``(start, end, cap_frac)`` cap windows."""
        return self._cap_windows

    # -- observability --------------------------------------------------

    def trace_events(self, tracer) -> None:
        """Emit the schedule as ``fault_event`` preamble events.

        Outages sharing a ``(start, end)`` interval collapse into one
        event carrying the affected server count (a rack failure is one
        event, not 20); cap windows emit one event each.  Ordering is
        deterministic (sorted by interval), so same-seed schedules
        trace byte-identically.
        """
        if not getattr(tracer, "enabled", False):
            return
        grouped: Dict[Tuple[int, int], int] = {}
        for _sid, s0, s1 in self._server_outages:
            grouped[(s0, s1)] = grouped.get((s0, s1), 0) + 1
        for (s0, s1), count in sorted(grouped.items()):
            tracer.emit(
                "fault_event",
                kind="outage",
                start_slot=s0,
                end_slot=s1,
                n_servers=count,
            )
        for s0, s1, frac in sorted(self._cap_windows):
            tracer.emit(
                "fault_event",
                kind="cap",
                start_slot=s0,
                end_slot=s1,
                cap_frac=frac,
            )

    # -- per-slot queries ----------------------------------------------

    def _offset(self, slot: int) -> int:
        if not self._start <= slot < self._end:
            raise ConfigurationError(
                f"slot {slot} outside fault horizon "
                f"[{self._start}, {self._end})"
            )
        return slot - self._start

    def n_failed(self, slot: int) -> int:
        """Servers down at ``slot`` (fleet-wide)."""
        return int(self._n_failed[self._offset(slot)])

    def pool_failed(self, slot: int) -> Tuple[int, ...]:
        """Per-pool down-server counts at ``slot``."""
        return tuple(int(f) for f in self._pool_failed[:, self._offset(slot)])

    def cap_frac(self, slot: int) -> float:
        """Fleet power budget fraction at ``slot`` (1.0 = uncapped)."""
        return float(self._cap[self._offset(slot)])

    def next_change(self, slot: int) -> int:
        """First slot > ``slot`` where the fault state changes.

        Returns ``horizon_end`` when the state is constant for the rest
        of the horizon — the same contract as
        :meth:`~repro.traces.lifecycle.LifecycleSchedule.next_change`,
        so engines can cut windows with one ``min``.
        """
        self._offset(slot)  # bounds check
        idx = np.searchsorted(self._change_slots, slot, side="right")
        if idx >= self._change_slots.size:
            return self._end
        return int(self._change_slots[idx])


def zero_faults(
    n_servers: int,
    horizon_start: int,
    horizon_end: int,
    pool_sizes: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """An event-free schedule (the bit-identity control)."""
    return FaultSchedule(
        n_servers, horizon_start, horizon_end, pool_sizes=pool_sizes
    )


def generate_faults(
    n_servers: int,
    horizon_start: int,
    horizon_end: int,
    config: Optional[FaultConfig] = None,
    seed: int = 0,
    pool_sizes: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Draw a seeded fault timeline from Poisson/MTBF parameters.

    One ``default_rng(seed)`` drives a single pass over the horizon in
    slot order (server outages, then rack outages, then cap windows per
    slot), so the same seed yields the identical schedule regardless of
    the consumer.  Outages that would darken a whole pool (or the
    fleet) are truncated at the offending slot — the survivor rule.
    """
    cfg = config or FaultConfig()
    if n_servers < 1:
        raise ConfigurationError("n_servers must be >= 1")
    if horizon_end <= horizon_start:
        raise ConfigurationError(
            f"empty fault horizon [{horizon_start}, {horizon_end})"
        )
    if pool_sizes is not None:
        sizes = tuple(int(s) for s in pool_sizes)
    else:
        sizes = (int(n_servers),)
    pool_of = np.repeat(np.arange(len(sizes)), sizes)
    up_in_pool = np.array(sizes, dtype=np.int64)

    rng = np.random.default_rng(seed)
    horizon = horizon_end - horizon_start
    down = np.zeros((n_servers, horizon), dtype=bool)
    pool_down = np.zeros((len(sizes), horizon), dtype=np.int64)
    outages: List[OutageEvent] = []
    caps: List[CapEvent] = []

    def try_fail(sid: int, lo: int, hi: int) -> None:
        """Mark ``sid`` down for [lo, hi) offsets, truncated to keep
        one server per pool up at every slot."""
        m = int(pool_of[sid])
        end = lo
        while end < hi:
            if down[sid, end]:
                end += 1  # already down: overlapping event, no change
                continue
            if pool_down[m, end] + 1 >= up_in_pool[m]:
                break  # would darken the pool: truncate here
            end += 1
        if end <= lo:
            return
        newly = ~down[sid, lo:end]
        down[sid, lo:end] = True
        pool_down[m, lo:end] += newly
        outages.append((sid, lo + horizon_start, end + horizon_start))

    server_rate = (
        n_servers / cfg.server_mtbf_slots
        if cfg.server_mtbf_slots > 0
        else 0.0
    )
    n_racks = (
        math.ceil(n_servers / cfg.rack_size) if cfg.rack_size > 0 else 0
    )
    rack_rate = (
        n_racks / cfg.rack_mtbf_slots if cfg.rack_mtbf_slots > 0 else 0.0
    )

    for off in range(horizon):
        if server_rate > 0.0:
            for _ in range(int(rng.poisson(server_rate))):
                sid = int(rng.integers(n_servers))
                dur = max(
                    1,
                    int(
                        round(
                            rng.exponential(
                                cfg.outage_duration_mean_slots
                            )
                        )
                    ),
                )
                try_fail(sid, off, min(off + dur, horizon))
        if rack_rate > 0.0:
            for _ in range(int(rng.poisson(rack_rate))):
                rack = int(rng.integers(n_racks))
                dur = max(
                    1,
                    int(
                        round(
                            rng.exponential(
                                cfg.outage_duration_mean_slots
                            )
                        )
                    ),
                )
                first = rack * cfg.rack_size
                last = min(first + cfg.rack_size, n_servers)
                for sid in range(first, last):
                    try_fail(sid, off, min(off + dur, horizon))
        if cfg.cap_rate_per_slot > 0.0:
            for _ in range(int(rng.poisson(cfg.cap_rate_per_slot))):
                dur = max(
                    1,
                    int(
                        round(
                            rng.exponential(cfg.cap_duration_mean_slots)
                        )
                    ),
                )
                caps.append(
                    (
                        off + horizon_start,
                        min(off + dur, horizon) + horizon_start,
                        cfg.cap_frac,
                    )
                )

    return FaultSchedule(
        n_servers,
        horizon_start,
        horizon_end,
        server_outages=outages,
        cap_windows=caps,
        pool_sizes=pool_sizes,
    )


@dataclass(frozen=True)
class FaultScenario:
    """A named fault regime of the registry.

    Attributes:
        name: registry key.
        description: one-line summary for reports.
        config: the stochastic parameters (``None`` = no events).
        seed_offset: added to the build seed so scenarios sharing a
            sweep seed still draw independent timelines.
    """

    name: str
    description: str
    config: Optional[FaultConfig] = None
    seed_offset: int = 0

    def build(
        self,
        n_servers: int,
        horizon_start: int,
        horizon_end: int,
        seed: int = 2018,
        pool_sizes: Optional[Sequence[int]] = None,
    ) -> FaultSchedule:
        """Materialize the schedule for one fleet and horizon."""
        if self.config is None:
            return zero_faults(
                n_servers, horizon_start, horizon_end, pool_sizes
            )
        return generate_faults(
            n_servers,
            horizon_start,
            horizon_end,
            config=self.config,
            seed=seed + self.seed_offset,
            pool_sizes=pool_sizes,
        )


FAULT_SCENARIOS: Dict[str, FaultScenario] = {
    scenario.name: scenario
    for scenario in (
        FaultScenario(
            name="none",
            description="no faults (bit-identity control)",
        ),
        FaultScenario(
            name="rare-outages",
            description="occasional single-server outages",
            config=FaultConfig(
                server_mtbf_slots=2000.0,
                outage_duration_mean_slots=8.0,
            ),
            seed_offset=1,
        ),
        FaultScenario(
            name="frequent-outages",
            description="unreliable hardware, frequent server outages",
            config=FaultConfig(
                server_mtbf_slots=500.0,
                outage_duration_mean_slots=6.0,
            ),
            seed_offset=2,
        ),
        FaultScenario(
            name="rack-outage",
            description="correlated rack-level outages (10-server racks)",
            config=FaultConfig(
                rack_size=10,
                rack_mtbf_slots=400.0,
                outage_duration_mean_slots=6.0,
            ),
            seed_offset=3,
        ),
        # Cap fractions are relative to *provisioned* full-load fleet
        # power (the breaker/contract view), and a consolidating
        # policy runs the fleet far below that: caps only bind when
        # they dip toward the consolidated operating point.  "Mild"
        # is chosen to throttle rarely, "severe" to force degraded
        # operation on a tightly-provisioned fleet.
        FaultScenario(
            name="power-cap-mild",
            description="mild fleet power caps (40% of nominal)",
            config=FaultConfig(
                cap_rate_per_slot=0.07,
                cap_duration_mean_slots=6.0,
                cap_frac=0.40,
            ),
            seed_offset=4,
        ),
        FaultScenario(
            name="power-cap-severe",
            description="severe fleet power caps (25% of nominal)",
            config=FaultConfig(
                cap_rate_per_slot=0.07,
                cap_duration_mean_slots=6.0,
                cap_frac=0.25,
            ),
            seed_offset=5,
        ),
        FaultScenario(
            name="cap-and-outages",
            description="server outages combined with 35% power caps",
            config=FaultConfig(
                server_mtbf_slots=800.0,
                outage_duration_mean_slots=6.0,
                cap_rate_per_slot=0.05,
                cap_duration_mean_slots=5.0,
                cap_frac=0.35,
            ),
            seed_offset=6,
        ),
    )
}


def get_fault_scenario(name: str) -> FaultScenario:
    """Look up a fault scenario by registry name."""
    try:
        return FAULT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_SCENARIOS))
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; known: {known}"
        ) from None


def list_fault_scenarios() -> Dict[str, str]:
    """Name -> description for every registered fault scenario."""
    return {
        name: scenario.description
        for name, scenario in FAULT_SCENARIOS.items()
    }
