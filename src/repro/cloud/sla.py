"""SLA and churn summary metrics for cloud simulation runs.

The fixed-population metrics count raw violations (overutilized
server-samples); under churn the *rates* matter, because the active
population and server pool vary over the horizon.  :func:`summarize`
condenses a run into the quantities the "Consolidating or Not?"
trade-off is judged on:

* **SLA violation rate** — overutilized server-samples as a fraction of
  the active server-samples (the SLATAH-style metric of the online
  consolidation literature);
* **migration churn** — total migrations and migrations per active
  VM-slot (consolidation aggressiveness);
* **energy per VM-slot** — energy normalized by delivered VM capacity,
  the energy-proportionality view that stays comparable across
  scenarios with different populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..dcsim.metrics import SimulationResult
from ..dcsim.reporting import format_table
from ..units import SAMPLES_PER_SLOT, SLOT_PERIOD_S


@dataclass(frozen=True)
class SlaSummary:
    """Aggregate SLA / churn / energy metrics of one cloud run.

    Attributes:
        policy_name: the policy the run belongs to.
        total_energy_mj: horizon energy in MJ.
        total_violations: overutilized server-samples.
        violation_rate: violations / active server-samples (0 when no
            server was ever on).
        total_migrations: VMs moved at reallocation boundaries.
        migrations_per_vm_slot: migrations / active VM-slots.
        mean_active_servers: average powered servers per slot.
        mean_active_vms: average running VMs per slot.
        energy_per_vm_slot_kj: energy / active VM-slots, in kJ.
        total_arrivals: VM arrivals over the horizon.
        total_departures: VM departures over the horizon.
        forced_placements: VMs placed outside the policy's caps.
        shed_vm_minutes: minutes of VM downtime accrued as SLA debt by
            degraded operation (shed VMs x slot length; 0 without a
            fault layer).
        downtime_server_minutes: server-minutes lost to outages.
        fault_migrations: migrations forced by fault-state changes.
        capped_samples: samples throttled by a fleet power cap.
        imputed_samples: degraded-telemetry decision-input samples the
            streaming engine had to impute (0 without a telemetry
            layer).
        stale_forecast_windows: windows decided on an aged day-ahead
            forecast (the fallback ladder's stale rung).
        collector_downtime_minutes: collector-minutes lost to dropout
            windows (each down collector counts separately).
        blind_windows: windows where telemetry was dark past the blind
            budget and the previous placement was frozen.
    """

    policy_name: str
    total_energy_mj: float
    total_violations: int
    violation_rate: float
    total_migrations: int
    migrations_per_vm_slot: float
    mean_active_servers: float
    mean_active_vms: float
    energy_per_vm_slot_kj: float
    total_arrivals: int
    total_departures: int
    forced_placements: int
    shed_vm_minutes: float = 0.0
    downtime_server_minutes: float = 0.0
    fault_migrations: int = 0
    capped_samples: int = 0
    imputed_samples: int = 0
    stale_forecast_windows: int = 0
    collector_downtime_minutes: float = 0.0
    blind_windows: int = 0


def summarize(result: SimulationResult) -> SlaSummary:
    """Condense a cloud run into an SLA summary.

    The per-VM-slot rates need the population series only the cloud
    engine tracks; for a fixed-population
    :class:`~repro.dcsim.engine.DataCenterSimulation` run (every
    ``n_active_vms`` zero) those fields come back ``NaN`` — rendered as
    ``n/a`` by :func:`sla_table` — rather than a silently wrong 0.
    """
    server_samples = int(
        result.active_servers_per_slot.sum() * SAMPLES_PER_SLOT
    )
    vm_slots = int(result.active_vms_per_slot.sum())
    return SlaSummary(
        policy_name=result.policy_name,
        total_energy_mj=result.total_energy_mj,
        total_violations=result.total_violations,
        violation_rate=(
            result.total_violations / server_samples
            if server_samples
            else 0.0
        ),
        total_migrations=result.total_migrations,
        migrations_per_vm_slot=(
            result.total_migrations / vm_slots if vm_slots else float("nan")
        ),
        mean_active_servers=result.mean_active_servers,
        mean_active_vms=(
            float(result.active_vms_per_slot.mean())
            if result.n_slots
            else 0.0
        ),
        energy_per_vm_slot_kj=(
            result.total_energy_mj * 1.0e3 / vm_slots
            if vm_slots
            else float("nan")
        ),
        total_arrivals=result.total_arrivals,
        total_departures=result.total_departures,
        forced_placements=result.total_forced_placements,
        shed_vm_minutes=result.total_shed_vm_slots * SLOT_PERIOD_S / 60.0,
        downtime_server_minutes=(
            result.total_failed_server_slots * SLOT_PERIOD_S / 60.0
        ),
        fault_migrations=result.total_fault_migrations,
        capped_samples=result.total_capped_samples,
        imputed_samples=result.total_imputed_samples,
        stale_forecast_windows=result.total_stale_forecast_windows,
        collector_downtime_minutes=(
            result.total_collector_down_slots * SLOT_PERIOD_S / 60.0
        ),
        blind_windows=result.total_blind_windows,
    )


def sla_table(results: Dict[str, SimulationResult]) -> str:
    """ASCII comparison table of SLA summaries, one row per policy."""
    headers = [
        "policy",
        "energy (MJ)",
        "kJ/VM-slot",
        "viol.",
        "viol. rate",
        "migr.",
        "migr./VM-slot",
        "servers",
        "VMs",
        "forced",
    ]
    def fmt(value: float, spec: str) -> str:
        return "n/a" if value != value else format(value, spec)

    rows = []
    for name, result in results.items():
        s = summarize(result)
        rows.append(
            [
                name,
                f"{s.total_energy_mj:.1f}",
                fmt(s.energy_per_vm_slot_kj, ".2f"),
                s.total_violations,
                f"{s.violation_rate:.4f}",
                s.total_migrations,
                fmt(s.migrations_per_vm_slot, ".3f"),
                f"{s.mean_active_servers:.1f}",
                f"{s.mean_active_vms:.1f}",
                s.forced_placements,
            ]
        )
    return format_table(headers, rows)


def fault_table(results: Dict[str, SimulationResult]) -> str:
    """ASCII table of degraded-operation metrics, one row per policy.

    Complements :func:`sla_table` for runs with a fault layer: how much
    VM downtime (SLA debt) each policy accrued by shedding, the server
    downtime the schedule imposed (identical across policies of one
    scenario), fault-forced migrations, and power-cap throttling.
    """
    headers = [
        "policy",
        "shed VM-min",
        "server down-min",
        "fault migr.",
        "capped smp.",
        "forced",
        "energy (MJ)",
    ]
    rows = []
    for name, result in results.items():
        s = summarize(result)
        rows.append(
            [
                name,
                f"{s.shed_vm_minutes:.0f}",
                f"{s.downtime_server_minutes:.0f}",
                s.fault_migrations,
                s.capped_samples,
                s.forced_placements,
                f"{s.total_energy_mj:.1f}",
            ]
        )
    return format_table(headers, rows)


def telemetry_table(results: Dict[str, SimulationResult]) -> str:
    """ASCII table of degraded-telemetry metrics, one row per policy.

    Complements :func:`sla_table` for streaming runs: how much of each
    policy's decision input was imputed, how often the forecast ladder
    fell back to a stale forecast or to a frozen (blind) placement, and
    the collector downtime the schedule imposed (identical across
    policies of one scenario) — next to the energy bill those
    degradations produced.
    """
    headers = [
        "policy",
        "imputed smp.",
        "stale wins.",
        "blind wins.",
        "coll. down-min",
        "viol.",
        "energy (MJ)",
    ]
    rows = []
    for name, result in results.items():
        s = summarize(result)
        rows.append(
            [
                name,
                s.imputed_samples,
                s.stale_forecast_windows,
                s.blind_windows,
                f"{s.collector_downtime_minutes:.0f}",
                s.total_violations,
                f"{s.total_energy_mj:.1f}",
            ]
        )
    return format_table(headers, rows)
