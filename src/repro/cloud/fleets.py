"""Named heterogeneous fleet compositions (NTC vs conventional mixes).

The paper's title question is answered per platform: spread on NTC
servers, consolidate on conventional big-core servers.  A real cloud
retires and refreshes hardware incrementally, so at any moment it runs
a *mix*; this registry names the compositions the hybrid experiments
sweep, from all-NTC to all-conventional:

* ``all-ntc`` / ``all-conventional`` — the homogeneous controls (the
  paper's two regimes);
* ``ntc-heavy`` (75% NTC), ``hybrid-50/50``, ``conventional-heavy``
  (25% NTC) — the migration path between them.

Each :class:`FleetMix` builds a :class:`~repro.core.types.FleetSpec`
with an NTC pool (full near-threshold DVFS range, per-sample governor)
and a conventional E5-2620-like pool (narrow DVFS window, ``x86``
stall/traffic calibration) sized from one total server count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.types import FleetSpec, PoolSpec
from ..errors import ConfigurationError
from ..power.server_power import (
    conventional_server_power_model,
    ntc_server_power_model,
)


@dataclass(frozen=True)
class FleetMix:
    """A named NTC/conventional fleet composition.

    Attributes:
        name: registry key (also the report label).
        description: one-line summary for listings.
        ntc_fraction: share of the total servers in the NTC pool.
        conventional_opp_policy: frequency policy of the conventional
            pool (``"governor"`` or ``"fixed-opt"``; conventional
            consolidation at a pinned frequency is the paper's Fig. 1(b)
            operating mode).
    """

    name: str
    description: str
    ntc_fraction: float
    conventional_opp_policy: str = "governor"

    def __post_init__(self) -> None:
        if not (0.0 <= self.ntc_fraction <= 1.0):
            raise ConfigurationError("ntc_fraction must be in [0, 1]")

    def build(self, total_servers: int = 600) -> FleetSpec:
        """Materialize the mix as a :class:`FleetSpec`.

        Pool sizes are rounded so they always sum to ``total_servers``;
        empty pools are dropped (the homogeneous controls are genuine
        single-pool fleets, which the engine treats bit-identically to
        the homogeneous protocol).
        """
        if total_servers < 1:
            raise ConfigurationError("total_servers must be >= 1")
        n_ntc = round(total_servers * self.ntc_fraction)
        n_conv = total_servers - n_ntc
        pools = []
        if n_ntc > 0:
            pools.append(
                PoolSpec(
                    name="ntc",
                    power_model=ntc_server_power_model(),
                    n_servers=n_ntc,
                )
            )
        if n_conv > 0:
            pools.append(
                PoolSpec(
                    name="conventional",
                    power_model=conventional_server_power_model(),
                    n_servers=n_conv,
                    opp_policy=self.conventional_opp_policy,
                    perf_platform="x86",
                )
            )
        return FleetSpec(pools=tuple(pools))


FLEETS: Dict[str, FleetMix] = {
    mix.name: mix
    for mix in (
        FleetMix(
            name="all-ntc",
            description="homogeneous NTC fleet (the paper's proposed "
            "data center; spreading wins)",
            ntc_fraction=1.0,
        ),
        FleetMix(
            name="ntc-heavy",
            description="75% NTC / 25% conventional (late in the "
            "refresh cycle)",
            ntc_fraction=0.75,
        ),
        FleetMix(
            name="hybrid-50/50",
            description="half NTC, half conventional servers",
            ntc_fraction=0.5,
        ),
        FleetMix(
            name="conventional-heavy",
            description="25% NTC / 75% conventional (early in the "
            "refresh cycle)",
            ntc_fraction=0.25,
        ),
        FleetMix(
            name="all-conventional",
            description="homogeneous conventional fleet (consolidation "
            "wins; the Fig. 1(b) regime)",
            ntc_fraction=0.0,
        ),
    )
}


def get_fleet(name: str, total_servers: Optional[int] = None):
    """Look up a registered mix; with ``total_servers``, build it.

    Returns the :class:`FleetMix` when ``total_servers`` is omitted,
    the built :class:`FleetSpec` otherwise.

    Raises:
        ConfigurationError: for unknown names (lists the registry).
    """
    try:
        mix = FLEETS[name]
    except KeyError:
        known = ", ".join(sorted(FLEETS))
        raise ConfigurationError(
            f"unknown fleet mix {name!r}; known: {known}"
        ) from None
    if total_servers is None:
        return mix
    return mix.build(total_servers)


def list_fleets() -> Dict[str, str]:
    """Mapping of registered mix names to their descriptions."""
    return {name: mix.description for name, mix in FLEETS.items()}
