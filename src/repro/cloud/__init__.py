"""repro.cloud — online cloud simulation over the Section VI-C engine.

The paper consolidates a *fixed* VM population; this subsystem asks the
"Consolidating or Not?" question in the regime production clouds live
in: VMs arrive, resize and depart continuously, and consolidation
decisions are made online under SLA pressure.  It ties together

* the lifecycle substrate (:mod:`repro.traces.lifecycle`) — seeded
  Poisson/heavy-tailed arrival, departure and resize schedules;
* the churn-aware engine (:mod:`repro.dcsim.cloud`) — window-batched
  accounting over time-varying active sets, bit-identical to the
  per-slot reference;
* the online policies (:mod:`repro.baselines.online`) — placement on
  arrival plus threshold-/forecast-driven reactive consolidation,
  comparable head-to-head with the paper's day-ahead EPACT;
* the scenario registry (:mod:`repro.cloud.scenarios`) and the SLA
  metrics layer (:mod:`repro.cloud.sla`);
* the degraded-telemetry streaming layer (:mod:`repro.cloud.telemetry`
  and :mod:`repro.cloud.streaming`) — seeded sample drop/corruption/
  late-delivery schedules, file-replay collectors with retry/backoff,
  imputation, the forecast-staleness fallback ladder, and the
  checkpoint/resume-capable :class:`StreamingCloudSimulation`.

Quick start::

    from repro.cloud import get_scenario, run_cloud_policies, sla_table
    from repro.baselines import OnlineReactivePolicy
    from repro.core import EpactPolicy
    from repro.forecast import DayAheadPredictor

    dataset, schedule = get_scenario("diurnal-burst").build(n_vms=120,
                                                           n_days=9,
                                                           n_slots=48)
    predictor = DayAheadPredictor(dataset)
    results = run_cloud_policies(
        dataset, predictor, [EpactPolicy(), OnlineReactivePolicy()],
        schedule, n_slots=48)
    print(sla_table(results))
"""

from ..baselines.online import OnlineBestFitPolicy, OnlineReactivePolicy
from ..core.online import CloudAllocationContext, OnlinePolicy
from ..dcsim.cloud import CloudSimulation, run_cloud_policies
from ..serve.adapters import poll_with_retry
from ..traces.lifecycle import (
    ChurnConfig,
    LifecycleSchedule,
    fixed_schedule,
    generate_lifecycle,
)
from .faults import (
    FAULT_SCENARIOS,
    FaultConfig,
    FaultScenario,
    FaultSchedule,
    generate_faults,
    get_fault_scenario,
    list_fault_scenarios,
    zero_faults,
)
from .fleets import FLEETS, FleetMix, get_fleet, list_fleets
from .scenarios import (
    SCENARIOS,
    CloudScenario,
    get_scenario,
    list_scenarios,
)
from .sla import (
    SlaSummary,
    fault_table,
    sla_table,
    summarize,
    telemetry_table,
)
from .telemetry import (
    TELEMETRY_SCENARIOS,
    ForecastLadder,
    TelemetryFaultConfig,
    TelemetryFaultSchedule,
    TelemetryIngest,
    TelemetryScenario,
    TraceCollector,
    generate_telemetry_faults,
    get_telemetry_scenario,
    list_telemetry_scenarios,
    zero_telemetry_faults,
)
from .streaming import (
    StreamingCloudSimulation,
    WindowDecision,
    run_streaming_policies,
)

__all__ = [
    "FAULT_SCENARIOS",
    "FLEETS",
    "FaultConfig",
    "FaultScenario",
    "FaultSchedule",
    "FleetMix",
    "ForecastLadder",
    "SCENARIOS",
    "TELEMETRY_SCENARIOS",
    "ChurnConfig",
    "CloudAllocationContext",
    "CloudScenario",
    "CloudSimulation",
    "LifecycleSchedule",
    "OnlineBestFitPolicy",
    "OnlinePolicy",
    "OnlineReactivePolicy",
    "SlaSummary",
    "StreamingCloudSimulation",
    "TelemetryFaultConfig",
    "TelemetryFaultSchedule",
    "TelemetryIngest",
    "TelemetryScenario",
    "TraceCollector",
    "WindowDecision",
    "fault_table",
    "fixed_schedule",
    "generate_faults",
    "generate_lifecycle",
    "generate_telemetry_faults",
    "get_fault_scenario",
    "get_fleet",
    "get_scenario",
    "get_telemetry_scenario",
    "list_fault_scenarios",
    "list_fleets",
    "list_scenarios",
    "list_telemetry_scenarios",
    "poll_with_retry",
    "run_cloud_policies",
    "run_streaming_policies",
    "sla_table",
    "summarize",
    "telemetry_table",
    "zero_telemetry_faults",
    "zero_faults",
]
