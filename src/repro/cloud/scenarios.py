"""Named cloud workload scenarios: trace mix + churn schedule.

A :class:`CloudScenario` bundles a trace-generator configuration with a
:class:`~repro.traces.lifecycle.ChurnConfig`, so one name reproducibly
yields both the utilization traces and the VM lifecycle:

* ``steady`` — slow trickle of long-lived VMs; the closest online
  analogue of the paper's fixed population.
* ``diurnal-burst`` — arrivals follow the business day, lifetimes
  moderate; the rate the forecast-assisted detectors can anticipate.
* ``flash-crowd`` — two sudden arrival spikes on top of a quiet
  baseline; the regime where day-ahead planning is blind.
* ``batch-latency`` — a bimodal mix of short-lived batch VMs over
  long-lived latency-critical services, with occasional resizes.

``zero-churn`` is the degenerate control scenario: the full population
active for the whole horizon, which must reproduce the fixed-population
engine exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..traces.dataset import TraceDataset
from ..traces.generator import ClusterTraceGenerator, GeneratorConfig
from ..traces.lifecycle import (
    ChurnConfig,
    LifecycleSchedule,
    fixed_schedule,
    generate_lifecycle,
)
from ..units import SLOTS_PER_DAY


@dataclass(frozen=True)
class CloudScenario:
    """A named, fully reproducible cloud workload.

    Attributes:
        name: registry key (also the report label).
        description: one-line summary for listings.
        churn: lifecycle knobs; ``None`` means zero churn.
        class_weights: optional (low, mid, high)-mem trace-mix override.
        seed_offset: folded into the user seed so scenarios sharing a
            seed still draw distinct traces/schedules.
    """

    name: str
    description: str
    churn: Optional[ChurnConfig] = None
    class_weights: Optional[Tuple[float, float, float]] = None
    seed_offset: int = 0

    def build(
        self,
        n_vms: int = 600,
        n_days: int = 14,
        seed: int = 2018,
        start_slot: Optional[int] = None,
        n_slots: Optional[int] = None,
        history_days: int = 7,
    ) -> Tuple[TraceDataset, LifecycleSchedule]:
        """Materialize the traces and the lifecycle schedule.

        The horizon defaults to everything after the forecaster's
        training window — the same derivation the engines use.
        """
        config_kwargs = dict(
            n_vms=n_vms, n_days=n_days, seed=seed + self.seed_offset
        )
        if self.class_weights is not None:
            config_kwargs["class_weights"] = self.class_weights
        dataset = ClusterTraceGenerator(
            GeneratorConfig(**config_kwargs)
        ).generate()

        start = (
            start_slot
            if start_slot is not None
            else history_days * SLOTS_PER_DAY
        )
        count = n_slots if n_slots is not None else dataset.n_slots - start
        if count < 1:
            raise ConfigurationError(
                "scenario horizon must cover at least one slot"
            )
        if self.churn is None:
            schedule = fixed_schedule(n_vms, start, start + count)
        else:
            schedule = generate_lifecycle(
                n_vms,
                start,
                start + count,
                config=self.churn,
                seed=seed + self.seed_offset + 1,
            )
        return dataset, schedule


SCENARIOS: Dict[str, CloudScenario] = {
    scenario.name: scenario
    for scenario in (
        CloudScenario(
            name="zero-churn",
            description="fixed population (control: equals the paper's "
            "Section VI-C protocol)",
            churn=None,
        ),
        CloudScenario(
            name="steady",
            description="slow trickle of long-lived VMs",
            churn=ChurnConfig(
                initial_fraction=0.7,
                arrival_rate_frac=0.002,
                lifetime_mean_slots=96.0,
                lifetime_sigma=0.7,
            ),
            seed_offset=11,
        ),
        CloudScenario(
            name="diurnal-burst",
            description="business-day arrival waves, moderate lifetimes",
            churn=ChurnConfig(
                initial_fraction=0.5,
                arrival_rate_frac=0.006,
                lifetime_mean_slots=36.0,
                lifetime_sigma=0.9,
                arrival_diurnal_amplitude=0.9,
            ),
            seed_offset=23,
        ),
        CloudScenario(
            name="flash-crowd",
            description="sudden arrival spikes over a quiet baseline",
            churn=ChurnConfig(
                initial_fraction=0.45,
                arrival_rate_frac=0.001,
                lifetime_mean_slots=30.0,
                lifetime_sigma=0.8,
                flash_slots=(10, 29),
                flash_arrivals=40,
            ),
            seed_offset=37,
        ),
        CloudScenario(
            name="batch-latency",
            description="short-lived batch jobs over long-lived "
            "latency-critical services, with resizes",
            churn=ChurnConfig(
                initial_fraction=0.55,
                arrival_rate_frac=0.008,
                lifetime_mean_slots=120.0,
                lifetime_sigma=0.6,
                short_lived_fraction=0.65,
                short_lifetime_mean_slots=5.0,
                resize_rate_per_slot=0.002,
                resize_range=(0.7, 1.4),
            ),
            class_weights=(0.30, 0.35, 0.35),
            seed_offset=53,
        ),
    )
}


def get_scenario(name: str) -> CloudScenario:
    """Look up a registered scenario by name.

    Raises:
        ConfigurationError: for unknown names (lists the registry).
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown cloud scenario {name!r}; known: {known}"
        ) from None


def list_scenarios() -> Dict[str, str]:
    """Mapping of registered scenario names to their descriptions."""
    return {name: sc.description for name, sc in SCENARIOS.items()}
