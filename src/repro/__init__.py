"""repro — reproduction of "Energy Proportionality in Near-Threshold
Computing Servers and Cloud Data Centers: Consolidating or Not?"
(Pahlevan et al., DATE 2018).

The package is organized by substrate (see DESIGN.md):

* :mod:`repro.technology` — FD-SOI / bulk voltage-frequency and leakage
* :mod:`repro.arch` — server platforms (NTC, ThunderX, Intel references)
* :mod:`repro.perf` — analytic gem5 stand-in, calibrated to Table I
* :mod:`repro.power` — Section IV power models, Fig. 1 DC analysis
* :mod:`repro.traces` — synthetic Google-cluster-like workload traces
* :mod:`repro.forecast` — from-scratch ARIMA day-ahead prediction
* :mod:`repro.core` — EPACT (Algorithms 1-2, Eq. 1-2, DVFS governor)
* :mod:`repro.baselines` — COAT, COAT-OPT, FFD, load-balancing
* :mod:`repro.dcsim` — the slot/sample data-center simulator
* :mod:`repro.cloud` — online cloud simulation (VM churn, reactive
  consolidation, scenario registry, SLA metrics, degraded-telemetry
  streaming)
* :mod:`repro.serve` — live-operator service mode (incremental
  forecasts, collector adapters, the ``repro-serve`` decision stream)
* :mod:`repro.experiments` — one module per paper table/figure

``from repro import ...`` is the documented import path for the
supported surface below (engines, configs, policies, runners, serve
entry points); moved names keep working through deprecation-warning
shims at their old locations.

Quick start::

    from repro import PerformanceSimulator, ntc_server_power_model
    from repro import EpactPolicy, CoatPolicy, run_policies
    from repro.traces import default_dataset
    from repro.forecast import DayAheadPredictor

    dataset = default_dataset(n_vms=120, n_days=9)
    predictor = DayAheadPredictor(dataset)
    results = run_policies(dataset, predictor,
                           [EpactPolicy(), CoatPolicy()], n_slots=48)
"""

from .baselines import (
    CoatOptPolicy,
    CoatPolicy,
    FfdPolicy,
    LoadBalancePolicy,
    OnlineBestFitPolicy,
    OnlineReactivePolicy,
)
from .core import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    DvfsGovernor,
    EpactPolicy,
    OnlinePolicy,
)
from .cloud.streaming import StreamingCloudSimulation, WindowDecision
from .dcsim import (
    CloudSimulation,
    DataCenterSimulation,
    SimulationConfig,
    SimulationResult,
    StreamingConfig,
    inspect_slot,
    run_cloud_policies,
    run_geo_policies,
    run_policies,
    run_streaming_policies,
    total_energy_savings_pct,
)
from .errors import (
    CalibrationError,
    ConfigurationError,
    DomainError,
    ForecastError,
    InfeasibleError,
    ReproError,
)
from .forecast import ArimaModel, ArimaOrder, DayAheadPredictor
from .perf import MemoryClass, PerformanceSimulator, QosModel
from .power import (
    DataCenterPowerAnalysis,
    PsuModel,
    ServerPowerModel,
    conventional_server_power_model,
    ntc_psu,
    ntc_server_power_model,
)
from .serve import IncrementalDayAheadForecaster
from .serve.service import ServeConfig, serve
from .traces import (
    ClusterTraceGenerator,
    GeneratorConfig,
    TraceDataset,
    load_dataset,
    save_dataset,
)
from .validation import validate_reproduction

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AllocationContext",
    "AllocationPolicy",
    "ArimaModel",
    "ArimaOrder",
    "CalibrationError",
    "CloudSimulation",
    "ClusterTraceGenerator",
    "CoatOptPolicy",
    "CoatPolicy",
    "ConfigurationError",
    "DataCenterPowerAnalysis",
    "DataCenterSimulation",
    "DayAheadPredictor",
    "DomainError",
    "DvfsGovernor",
    "EpactPolicy",
    "FfdPolicy",
    "ForecastError",
    "GeneratorConfig",
    "IncrementalDayAheadForecaster",
    "InfeasibleError",
    "LoadBalancePolicy",
    "MemoryClass",
    "OnlineBestFitPolicy",
    "OnlinePolicy",
    "OnlineReactivePolicy",
    "PerformanceSimulator",
    "PsuModel",
    "QosModel",
    "ReproError",
    "ServeConfig",
    "ServerPowerModel",
    "SimulationConfig",
    "SimulationResult",
    "StreamingCloudSimulation",
    "StreamingConfig",
    "TraceDataset",
    "WindowDecision",
    "conventional_server_power_model",
    "inspect_slot",
    "load_dataset",
    "ntc_psu",
    "ntc_server_power_model",
    "run_cloud_policies",
    "run_geo_policies",
    "run_policies",
    "run_streaming_policies",
    "save_dataset",
    "serve",
    "total_energy_savings_pct",
    "validate_reproduction",
]
