"""DRAM power model (paper Section IV-4).

Measured on a real Xeon-v3-based server and interpolated linearly:

* idle (banks powered down): **15.5 mW per GB**,
* active (banks activated):  **155 mW per GB**,
* plus **800 pJ per byte** read/written.

A server whose banks are active a fraction ``rho`` of the time pays the
idle power plus ``rho`` times the idle-to-active delta, plus the traffic
term — which is the linear-in-accesses behaviour the paper's Section V-A
argument relies on ("memory power consumption is a linear function of the
number of memory accesses per second").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.dram import DramModel
from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class DramPowerModel:
    """Background + access power of a server's DRAM.

    Attributes:
        capacity_gb: DRAM capacity in GiB.
        idle_mw_per_gb: background power per GiB with banks powered down.
        active_mw_per_gb: background power per GiB with banks activated.
        access_pj_per_byte: energy per byte transferred.
    """

    capacity_gb: float
    idle_mw_per_gb: float = 15.5
    active_mw_per_gb: float = 155.0
    access_pj_per_byte: float = 800.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0.0:
            raise ConfigurationError("DRAM capacity must be positive")
        if not (0.0 <= self.idle_mw_per_gb <= self.active_mw_per_gb):
            raise ConfigurationError(
                "DRAM background powers must satisfy 0 <= idle <= active"
            )
        if self.access_pj_per_byte < 0.0:
            raise ConfigurationError("access energy must be non-negative")

    @classmethod
    def from_dram_model(cls, dram: DramModel) -> "DramPowerModel":
        """Build the power model from an architecture DRAM descriptor."""
        return cls(
            capacity_gb=dram.capacity_gb,
            idle_mw_per_gb=dram.idle_power_mw_per_gb,
            active_mw_per_gb=dram.active_power_mw_per_gb,
            access_pj_per_byte=dram.access_energy_pj_per_byte,
        )

    def background_w(self, active_fraction: float) -> float:
        """Background (bank state) power in watts.

        Args:
            active_fraction: fraction of time the banks are activated
                (0 = fully powered down, 1 = always active).
        """
        if not (0.0 <= active_fraction <= 1.0):
            raise DomainError(
                f"active_fraction must be in [0, 1], got {active_fraction}"
            )
        per_gb_mw = self.idle_mw_per_gb + active_fraction * (
            self.active_mw_per_gb - self.idle_mw_per_gb
        )
        return per_gb_mw * self.capacity_gb / 1000.0

    def access_w(self, bytes_per_s: float) -> float:
        """Traffic-proportional power in watts."""
        if bytes_per_s < 0.0:
            raise DomainError("traffic must be non-negative")
        return bytes_per_s * self.access_pj_per_byte * 1.0e-12

    def power_w(
        self, active_fraction: float, bytes_per_s: float = 0.0
    ) -> float:
        """Total DRAM power: background plus access."""
        return self.background_w(active_fraction) + self.access_w(bytes_per_s)
