"""Last-level-cache power model (paper Section IV-2).

The paper's LLC model was extracted from measurements of a 256KB SRAM
block in 28nm UTBB FD-SOI: leakage power per block, plus read and write
energies per 128-bit access, at several voltage levels.  We reproduce that
structure:

* leakage scales with capacity (number of 256KB blocks) and follows the
  exponential-in-voltage law;
* access energies are quoted at a nominal voltage and scale with ``V^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError
from ..technology.leakage import LeakageModel, fdsoi28_sram_leakage

ACCESS_BITS = 128
"""Width of one LLC access in the paper's measurement (bits)."""

ACCESS_BYTES = ACCESS_BITS // 8
"""Bytes moved per 128-bit LLC access."""


@dataclass(frozen=True)
class LlcPowerModel:
    """Leakage + access power of the shared last-level cache.

    Attributes:
        size_mb: LLC capacity in MiB.
        leakage: leakage model for the whole array.
        read_energy_pj: energy per 128-bit read at the nominal voltage.
        write_energy_pj: energy per 128-bit write at the nominal voltage.
        nominal_voltage_v: voltage at which the access energies are quoted.
        write_fraction: fraction of accesses that are writes.
    """

    size_mb: float
    leakage: LeakageModel
    read_energy_pj: float = 20.0
    write_energy_pj: float = 24.0
    nominal_voltage_v: float = 1.0
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.size_mb <= 0.0:
            raise ConfigurationError("LLC size must be positive")
        if self.read_energy_pj < 0.0 or self.write_energy_pj < 0.0:
            raise ConfigurationError("access energies must be non-negative")
        if self.nominal_voltage_v <= 0.0:
            raise ConfigurationError("nominal voltage must be positive")
        if not (0.0 <= self.write_fraction <= 1.0):
            raise ConfigurationError("write fraction must be in [0, 1]")

    def leakage_w(self, voltage_v: float) -> float:
        """Array leakage power in watts at ``voltage_v``."""
        return self.leakage.power_w(voltage_v)

    def energy_per_access_j(self, voltage_v: float) -> float:
        """Average energy of one 128-bit access at ``voltage_v``.

        Mixes read and write energies by ``write_fraction`` and scales the
        nominal-voltage numbers by ``(V / V_nominal)^2``.
        """
        if voltage_v <= 0.0:
            raise DomainError("voltage must be positive")
        nominal_pj = (
            self.read_energy_pj * (1.0 - self.write_fraction)
            + self.write_energy_pj * self.write_fraction
        )
        scale = (voltage_v / self.nominal_voltage_v) ** 2
        return nominal_pj * scale * 1.0e-12

    def access_w(self, voltage_v: float, accesses_per_s: float) -> float:
        """Access (dynamic) power in watts for a given access rate."""
        if accesses_per_s < 0.0:
            raise DomainError("access rate must be non-negative")
        return self.energy_per_access_j(voltage_v) * accesses_per_s

    def access_w_from_bytes(
        self, voltage_v: float, bytes_per_s: float
    ) -> float:
        """Access power from a byte-traffic figure (128-bit granules)."""
        if bytes_per_s < 0.0:
            raise DomainError("traffic must be non-negative")
        return self.access_w(voltage_v, bytes_per_s / ACCESS_BYTES)

    def power_w(self, voltage_v: float, accesses_per_s: float = 0.0) -> float:
        """Total LLC power: leakage plus access energy."""
        return self.leakage_w(voltage_v) + self.access_w(
            voltage_v, accesses_per_s
        )


def ntc_llc_power_model(size_mb: float = 16.0) -> LlcPowerModel:
    """LLC power model of the NTC server's 16MB cache."""
    return LlcPowerModel(
        size_mb=size_mb,
        leakage=fdsoi28_sram_leakage(size_mb=size_mb),
    )
