"""Power-supply-unit efficiency model.

The paper's data center gives "each NTC server ... its dedicated power
supply" (Section III-A) but folds conversion losses into its measurements.
This module makes the PSU explicit so wall-plug energy can be studied:
server DC power divided by a load-dependent efficiency curve.

Real PSUs (80 PLUS-style) are inefficient at light load, peak around half
load, and sag slightly toward full load.  We model efficiency with the
standard loss decomposition::

    loss(P) = loss_fixed + k_prop * P + k_sq * P^2
    eta(P)  = P / (P + loss(P))

which produces exactly that shape.  Because NTC servers often idle far
below their PSU's rating, right-sizing the PSU matters more for them than
for conventional servers — an effect invisible in the paper but easy to
explore here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class PsuModel:
    """Load-dependent PSU efficiency via a quadratic loss model.

    Attributes:
        rated_w: the PSU's rated output power.
        loss_fixed_w: constant conversion loss (fans, control, standby).
        loss_prop: proportional loss coefficient (dimensionless).
        loss_sq_per_w: quadratic loss coefficient (1/W), modeling ohmic
            losses that grow with current squared.
    """

    rated_w: float
    loss_fixed_w: float = 4.0
    loss_prop: float = 0.03
    loss_sq_per_w: float = 0.0002

    def __post_init__(self) -> None:
        if self.rated_w <= 0.0:
            raise ConfigurationError("PSU rating must be positive")
        if (
            self.loss_fixed_w < 0.0
            or self.loss_prop < 0.0
            or self.loss_sq_per_w < 0.0
        ):
            raise ConfigurationError("loss coefficients must be >= 0")

    def loss_w(self, dc_power_w: float) -> float:
        """Conversion loss at a DC-side load."""
        if dc_power_w < 0.0:
            raise DomainError("load must be non-negative")
        return (
            self.loss_fixed_w
            + self.loss_prop * dc_power_w
            + self.loss_sq_per_w * dc_power_w**2
        )

    def efficiency(self, dc_power_w: float) -> float:
        """Efficiency ``P / (P + loss(P))`` at a DC-side load.

        Zero load returns 0 (the PSU burns its fixed loss for nothing).
        """
        if dc_power_w < 0.0:
            raise DomainError("load must be non-negative")
        if dc_power_w == 0.0:
            return 0.0
        return dc_power_w / (dc_power_w + self.loss_w(dc_power_w))

    def wall_power_w(self, dc_power_w: float) -> float:
        """AC (wall-plug) power drawn for a DC-side load.

        A powered PSU with zero load still draws its fixed loss.
        """
        if dc_power_w < 0.0:
            raise DomainError("load must be non-negative")
        return dc_power_w + self.loss_w(dc_power_w)

    def load_fraction(self, dc_power_w: float) -> float:
        """Load as a fraction of the rating (can exceed 1 if overloaded)."""
        return dc_power_w / self.rated_w

    def peak_efficiency_load_w(self) -> float:
        """DC load at which efficiency peaks (``sqrt(fixed / k_sq)``).

        With no quadratic term the efficiency is monotone increasing and
        the rated power is returned.
        """
        if self.loss_sq_per_w == 0.0:
            return self.rated_w
        return (self.loss_fixed_w / self.loss_sq_per_w) ** 0.5


def ntc_psu(rated_w: float = 200.0) -> PsuModel:
    """A right-sized PSU for the NTC server (~139 W peak DC load).

    Peak efficiency lands near mid-load (~140 W), i.e. around the server's
    busy operating region, with ~94% efficiency there.
    """
    return PsuModel(rated_w=rated_w)


def conventional_psu(rated_w: float = 450.0) -> PsuModel:
    """An enterprise-class PSU for the conventional server.

    Oversized relative to the ~140 W server (typical of legacy platforms),
    with a higher fixed loss — the server therefore sits on the
    inefficient left side of the efficiency curve most of the time.
    """
    return PsuModel(
        rated_w=rated_w,
        loss_fixed_w=9.0,
        loss_prop=0.035,
        loss_sq_per_w=0.00012,
    )
