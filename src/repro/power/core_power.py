"""Core-region power model (paper Section IV-1).

The core region covers the cores' logic plus their L1/L2 caches.  Its
power has two parts:

* **dynamic**: ``P = Ceff * V^2 * f`` scaled by the fraction of time the
  cores are busy.  While a busy core waits for memory (WFM state) it
  consumes 24% less than when actively executing — the paper measured this
  on an Intel Xeon v3 and applies it to the A57 core region;
* **leakage**: an exponential-in-voltage static component
  (:class:`~repro.technology.leakage.LeakageModel`), which collapses in the
  near-threshold region — the property that makes NTC servers energy
  proportional.

Idle cores are assumed clock-gated: they stop switching but keep leaking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..anchors import WFM_POWER_REDUCTION
from ..errors import ConfigurationError, DomainError
from ..technology.leakage import LeakageModel, fdsoi28_core_leakage


@dataclass(frozen=True)
class CoreRegionPowerModel:
    """Dynamic + leakage power of the whole core region.

    Attributes:
        ceff_nf: total effective switching capacitance of all cores in
            nanofarads (so that ``nF * V^2 * GHz`` yields watts).
        leakage: leakage model for the core region.
        wfm_reduction: relative power reduction in the wait-for-memory
            state (the paper's 24%).
    """

    ceff_nf: float
    leakage: LeakageModel
    wfm_reduction: float = WFM_POWER_REDUCTION

    def __post_init__(self) -> None:
        if self.ceff_nf <= 0.0:
            raise ConfigurationError("effective capacitance must be positive")
        if not (0.0 <= self.wfm_reduction < 1.0):
            raise ConfigurationError(
                f"WFM reduction must be in [0, 1), got {self.wfm_reduction}"
            )

    def dynamic_w(
        self,
        voltage_v: float,
        freq_ghz: float,
        busy_fraction: float = 1.0,
        stall_fraction: float = 0.0,
    ) -> float:
        """Dynamic power of the core region in watts.

        Args:
            voltage_v: supply voltage.
            freq_ghz: clock frequency.
            busy_fraction: fraction of core-time the cores are occupied by
                jobs (0 = fully idle/clock-gated, 1 = fully busy).
            stall_fraction: within busy time, the fraction spent in the
                WFM state (consumes ``1 - wfm_reduction`` of active power).

        Raises:
            DomainError: on out-of-range fractions or non-positive
                operating points.
        """
        if voltage_v <= 0.0 or freq_ghz <= 0.0:
            raise DomainError("voltage and frequency must be positive")
        if not (0.0 <= busy_fraction <= 1.0):
            raise DomainError(
                f"busy_fraction must be in [0, 1], got {busy_fraction}"
            )
        if not (0.0 <= stall_fraction <= 1.0):
            raise DomainError(
                f"stall_fraction must be in [0, 1], got {stall_fraction}"
            )
        wfm_factor = 1.0 - self.wfm_reduction * stall_fraction
        return (
            self.ceff_nf
            * voltage_v**2
            * freq_ghz
            * busy_fraction
            * wfm_factor
        )

    def leakage_w(self, voltage_v: float) -> float:
        """Core-region leakage power in watts at ``voltage_v``."""
        return self.leakage.power_w(voltage_v)

    def power_w(
        self,
        voltage_v: float,
        freq_ghz: float,
        busy_fraction: float = 1.0,
        stall_fraction: float = 0.0,
    ) -> float:
        """Total core-region power (dynamic + leakage) in watts."""
        return self.dynamic_w(
            voltage_v, freq_ghz, busy_fraction, stall_fraction
        ) + self.leakage_w(voltage_v)


def ntc_core_power_model(n_cores: int = 16) -> CoreRegionPowerModel:
    """Core-region power model of the proposed NTC server.

    The per-core effective capacitance (1.0 nF) is the single calibrated
    constant of the power model: it is chosen so that the *emergent*
    energy-optimal frequency of the Fig. 1(a) data-center analysis lands at
    the paper's ≈1.9 GHz, and it puts the fully loaded 16-core chip at
    ≈84 W of dynamic power at the 1.30 V / 3.1 GHz corner — consistent with
    the ≈11 kW the paper's 80-server worst case reaches.
    """
    if n_cores < 1:
        raise ConfigurationError("n_cores must be >= 1")
    return CoreRegionPowerModel(
        ceff_nf=1.0 * n_cores,
        leakage=fdsoi28_core_leakage(cores=n_cores),
    )
