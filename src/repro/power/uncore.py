"""Uncore and platform power (paper Section IV-3).

The paper measured the memory controller, peripherals and IO subsystem of
an Intel Xeon v3 and split the overhead into:

* a **constant** component of 11.84 W present at every operating point,
* a component **proportional to the operating condition**, ranging from
  1.6 W at the lowest operating point to 9 W at the highest,

plus 15 W of motherboard power (low fan speed, one SSD disk), taken from
the Cavium ThunderX server.

We model the proportional part as scaling with switching activity
``V^2 * f`` normalized to the maximum operating point, which reproduces
both published endpoints by construction.  The motherboard term is the
"static power" knob the paper sweeps in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..anchors import (
    MOTHERBOARD_W,
    UNCORE_CONSTANT_W,
    UNCORE_PROPORTIONAL_RANGE_W,
)
from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class UncorePowerModel:
    """Memory controller / peripherals / IO / motherboard power.

    Attributes:
        constant_w: always-on uncore component (paper: 11.84 W).
        proportional_min_w: proportional component at the lowest operating
            point (paper: 1.6 W).
        proportional_max_w: proportional component at the highest operating
            point (paper: 9 W).
        motherboard_w: motherboard + fan + disk power (paper: 15 W); the
            Fig. 7 static-power sweep varies this field.
        v_max: voltage of the highest operating point (normalization).
        f_max_ghz: frequency of the highest operating point (normalization).
    """

    constant_w: float = UNCORE_CONSTANT_W
    proportional_min_w: float = UNCORE_PROPORTIONAL_RANGE_W[0]
    proportional_max_w: float = UNCORE_PROPORTIONAL_RANGE_W[1]
    motherboard_w: float = MOTHERBOARD_W
    v_max: float = 1.30
    f_max_ghz: float = 3.1

    def __post_init__(self) -> None:
        if self.constant_w < 0.0 or self.motherboard_w < 0.0:
            raise ConfigurationError(
                "constant and motherboard power must be non-negative"
            )
        if not (0.0 <= self.proportional_min_w <= self.proportional_max_w):
            raise ConfigurationError(
                "proportional range must satisfy 0 <= min <= max"
            )
        if self.v_max <= 0.0 or self.f_max_ghz <= 0.0:
            raise ConfigurationError(
                "normalization operating point must be positive"
            )

    def activity(self, voltage_v: float, freq_ghz: float) -> float:
        """Switching-activity factor ``V^2 f`` normalized to the max OPP."""
        if voltage_v <= 0.0 or freq_ghz <= 0.0:
            raise DomainError("voltage and frequency must be positive")
        return (voltage_v**2 * freq_ghz) / (self.v_max**2 * self.f_max_ghz)

    def proportional_w(self, voltage_v: float, freq_ghz: float) -> float:
        """Operating-condition-proportional component in watts.

        Equals ``proportional_max_w`` at the maximum operating point and
        approaches ``proportional_min_w`` at the lowest.
        """
        act = min(1.0, self.activity(voltage_v, freq_ghz))
        return self.proportional_min_w + (
            self.proportional_max_w - self.proportional_min_w
        ) * act

    def static_w(self) -> float:
        """Operating-point-independent platform power (constant + board)."""
        return self.constant_w + self.motherboard_w

    def power_w(self, voltage_v: float, freq_ghz: float) -> float:
        """Total uncore + platform power at an operating point."""
        return self.static_w() + self.proportional_w(voltage_v, freq_ghz)

    def with_motherboard(self, motherboard_w: float) -> "UncorePowerModel":
        """Copy of this model with a different motherboard/static power.

        This is the knob the Fig. 7 sweep turns (5-45 W).
        """
        return UncorePowerModel(
            constant_w=self.constant_w,
            proportional_min_w=self.proportional_min_w,
            proportional_max_w=self.proportional_max_w,
            motherboard_w=motherboard_w,
            v_max=self.v_max,
            f_max_ghz=self.f_max_ghz,
        )


def ntc_uncore_power_model() -> UncorePowerModel:
    """The NTC server's uncore model with the paper's published constants."""
    return UncorePowerModel()


def conventional_uncore_power_model() -> UncorePowerModel:
    """Uncore/platform model for the conventional E5-2620 server.

    Enterprise platforms carry heavier chipsets, more fans and redundant
    power delivery: 25 W constant uncore, a 4-16 W proportional window, and
    a 30 W board, normalized to the 1.35 V / 2.4 GHz top operating point.
    """
    return UncorePowerModel(
        constant_w=25.0,
        proportional_min_w=4.0,
        proportional_max_w=16.0,
        motherboard_w=30.0,
        v_max=1.35,
        f_max_ghz=2.4,
    )
