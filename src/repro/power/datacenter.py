"""Data-center-level power analysis (paper Section V-A, Fig. 1).

Models the paper's worst-case thought experiment: a data center of ``N``
servers must serve a given *CPU utilization rate* — the ratio of required
CPU resources (MHz) to total CPU resources (``N x Fmax``).  At a chosen
uniform frequency ``f``, servers are filled one by one to capacity; the
number of active servers and the total power follow.

The headline result reproduced here: for the NTC server the power-vs-
frequency curve at fixed utilization has an interior minimum near 1.9 GHz
(energy proportionality beats consolidation), while for the conventional
server it decreases monotonically toward ``Fmax`` (consolidation wins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import DomainError, InfeasibleError
from .server_power import ServerPowerModel

_EPSILON = 1.0e-9


@dataclass(frozen=True)
class DcOperatingPoint:
    """One point of a data-center power curve.

    Attributes:
        freq_ghz: the uniform server frequency.
        utilization_pct: the data-center CPU utilization rate.
        n_active_servers: servers that must be on to serve the demand.
        power_kw: total data-center power in kilowatts.
    """

    freq_ghz: float
    utilization_pct: float
    n_active_servers: int
    power_kw: float


class DataCenterPowerAnalysis:
    """Worst-case data-center power vs. frequency (the Fig. 1 analysis).

    Args:
        server_power: the per-server power model (NTC or conventional).
        n_servers: data-center size (the paper uses 80 for Fig. 1).
    """

    def __init__(self, server_power: ServerPowerModel, n_servers: int = 80):
        if n_servers < 1:
            raise DomainError("n_servers must be >= 1")
        self._power = server_power
        self._n_servers = n_servers

    @property
    def n_servers(self) -> int:
        """Total number of servers in the data center."""
        return self._n_servers

    @property
    def server_power(self) -> ServerPowerModel:
        """The per-server power model."""
        return self._power

    # -- demand bookkeeping ---------------------------------------------------

    def demand_ghz(self, utilization_pct: float) -> float:
        """Aggregate compute demand in GHz for a utilization rate.

        ``demand = N x Fmax x utilization``; the utilization rate is the
        paper's definition (required MHz over total MHz).
        """
        if not (0.0 <= utilization_pct <= 100.0):
            raise DomainError(
                f"utilization must be in [0, 100], got {utilization_pct}"
            )
        f_max = self._power.spec.f_max_ghz
        return self._n_servers * f_max * utilization_pct / 100.0

    def min_feasible_frequency_ghz(self, utilization_pct: float) -> float:
        """Lowest OPP at which the demand fits on the available servers."""
        demand = self.demand_ghz(utilization_pct)
        for freq in self._power.spec.opps.frequencies_ghz:
            if self._n_servers * freq + _EPSILON >= demand:
                return freq
        raise InfeasibleError(
            f"utilization {utilization_pct}% cannot be served even at Fmax"
        )

    # -- power ---------------------------------------------------------------

    def operating_point(
        self, freq_ghz: float, utilization_pct: float
    ) -> DcOperatingPoint:
        """Power and active-server count at a uniform frequency.

        Servers are packed to capacity at ``freq_ghz`` (worst-case,
        CPU-bound: fully busy, no dynamic memory power); the last server
        runs partially busy.

        Raises:
            InfeasibleError: if the demand does not fit on ``n_servers``
                at this frequency.
        """
        demand = self.demand_ghz(utilization_pct)
        if demand <= _EPSILON:
            return DcOperatingPoint(
                freq_ghz=freq_ghz,
                utilization_pct=utilization_pct,
                n_active_servers=0,
                power_kw=0.0,
            )
        n_active = math.ceil(demand / freq_ghz - _EPSILON)
        if n_active > self._n_servers:
            raise InfeasibleError(
                f"{utilization_pct}% utilization needs {n_active} servers at "
                f"{freq_ghz} GHz but only {self._n_servers} exist"
            )
        n_full = int(demand / freq_ghz + _EPSILON)
        remainder_ghz = demand - n_full * freq_ghz
        power_w = n_full * self._power.full_load_power_w(freq_ghz)
        if remainder_ghz > _EPSILON:
            power_w += self._power.power_w(
                freq_ghz, busy_fraction=remainder_ghz / freq_ghz
            )
        return DcOperatingPoint(
            freq_ghz=freq_ghz,
            utilization_pct=utilization_pct,
            n_active_servers=n_active,
            power_kw=power_w / 1000.0,
        )

    def power_curve(
        self,
        utilization_pct: float,
        freqs_ghz: Optional[Sequence[float]] = None,
    ) -> List[DcOperatingPoint]:
        """Feasible portion of the power-vs-frequency curve (one Fig. 1 line).

        Infeasible frequencies (demand would need more than ``n_servers``)
        are skipped, which is why high-utilization curves only span the
        upper frequency range.
        """
        grid = (
            freqs_ghz
            if freqs_ghz is not None
            else self._power.spec.opps.frequencies_ghz
        )
        points: List[DcOperatingPoint] = []
        for freq in grid:
            try:
                points.append(self.operating_point(freq, utilization_pct))
            except InfeasibleError:
                continue
        return points

    def optimal_point(
        self,
        utilization_pct: float,
        freqs_ghz: Optional[Sequence[float]] = None,
    ) -> DcOperatingPoint:
        """Minimum-power operating point for a utilization rate.

        Raises:
            InfeasibleError: if no frequency on the grid is feasible.
        """
        curve = self.power_curve(utilization_pct, freqs_ghz)
        if not curve:
            raise InfeasibleError(
                f"no feasible frequency for {utilization_pct}% utilization"
            )
        return min(curve, key=lambda p: p.power_kw)
