"""Power substrate: component, server and data-center power models.

Implements the paper's Section IV power characterization (core region,
LLC, uncore/motherboard, DRAM) and the Section V-A data-center worst-case
analysis behind Fig. 1.
"""

from .core_power import CoreRegionPowerModel, ntc_core_power_model
from .datacenter import DataCenterPowerAnalysis, DcOperatingPoint
from .dram_power import DramPowerModel
from .llc import LlcPowerModel, ntc_llc_power_model
from .psu import PsuModel, conventional_psu, ntc_psu
from .server_power import (
    PowerBreakdown,
    ServerPowerModel,
    conventional_server_power_model,
    ntc_server_power_model,
)
from .uncore import (
    UncorePowerModel,
    conventional_uncore_power_model,
    ntc_uncore_power_model,
)

__all__ = [
    "CoreRegionPowerModel",
    "DataCenterPowerAnalysis",
    "DcOperatingPoint",
    "DramPowerModel",
    "LlcPowerModel",
    "PowerBreakdown",
    "PsuModel",
    "ServerPowerModel",
    "UncorePowerModel",
    "conventional_psu",
    "conventional_server_power_model",
    "ntc_psu",
    "conventional_uncore_power_model",
    "ntc_core_power_model",
    "ntc_llc_power_model",
    "ntc_server_power_model",
    "ntc_uncore_power_model",
]
