"""Ordinary and seasonal differencing with exact inversion.

ARIMA handles trends by differencing the series ``d`` times and daily
periodicity by differencing at the seasonal lag (period 288 for 5-minute
samples).  Forecasts are produced on the differenced scale and must be
*integrated* back; the inversion helpers here are exact (they reconstruct
the original series when fed its own differences).
"""

from __future__ import annotations

import numpy as np

from ..errors import ForecastError


def difference(series: np.ndarray, d: int = 1) -> np.ndarray:
    """Apply ``d`` rounds of first differencing.

    Raises:
        ForecastError: if the series is too short to difference.
    """
    if d < 0:
        raise ForecastError("differencing order must be >= 0")
    out = np.asarray(series, dtype=float)
    for _ in range(d):
        if out.shape[0] < 2:
            raise ForecastError("series too short to difference")
        out = np.diff(out)
    return out


def integrate(
    forecasts: np.ndarray, history: np.ndarray, d: int = 1
) -> np.ndarray:
    """Invert ``d`` rounds of first differencing for a forecast block.

    Args:
        forecasts: forecasts on the ``d``-times-differenced scale.
        history: the *original* (undifferenced) series the model was fit
            on; its tail supplies the integration constants.
        d: differencing order used at fit time.

    Returns:
        Forecasts on the original scale.
    """
    if d < 0:
        raise ForecastError("differencing order must be >= 0")
    if d == 0:
        return np.asarray(forecasts, dtype=float).copy()
    hist = np.asarray(history, dtype=float)
    if hist.shape[0] < d:
        raise ForecastError("history too short to integrate forecasts")
    # Tails of each differencing level: level 0 is the original series.
    tails = [hist]
    for _ in range(d - 1):
        tails.append(np.diff(tails[-1]))
    out = np.asarray(forecasts, dtype=float).copy()
    for level in reversed(range(d)):
        out = np.cumsum(out) + tails[level][-1]
    return out


def seasonal_difference(
    series: np.ndarray, period: int, big_d: int = 1
) -> np.ndarray:
    """Apply ``big_d`` rounds of seasonal differencing at lag ``period``.

    Raises:
        ForecastError: if the series is shorter than the seasonal lag.
    """
    if period < 1:
        raise ForecastError("seasonal period must be >= 1")
    if big_d < 0:
        raise ForecastError("seasonal differencing order must be >= 0")
    out = np.asarray(series, dtype=float)
    for _ in range(big_d):
        if out.shape[0] <= period:
            raise ForecastError(
                f"series of length {out.shape[0]} too short for seasonal "
                f"differencing at period {period}"
            )
        out = out[period:] - out[:-period]
    return out


def seasonal_integrate(
    forecasts: np.ndarray,
    history: np.ndarray,
    period: int,
    big_d: int = 1,
) -> np.ndarray:
    """Invert seasonal differencing for a forecast block.

    Args:
        forecasts: forecasts on the seasonally differenced scale.
        history: original series (its last ``big_d * period`` values feed
            the inversion).
        period: seasonal lag.
        big_d: seasonal differencing order used at fit time.
    """
    if big_d < 0:
        raise ForecastError("seasonal differencing order must be >= 0")
    if big_d == 0:
        return np.asarray(forecasts, dtype=float).copy()
    hist = np.asarray(history, dtype=float)
    if hist.shape[0] < big_d * period:
        raise ForecastError("history too short for seasonal integration")
    # Tails at each seasonal-differencing level.
    tails = [hist]
    for _ in range(big_d - 1):
        tails.append(tails[-1][period:] - tails[-1][:-period])
    out = np.asarray(forecasts, dtype=float).copy()
    for level in reversed(range(big_d)):
        tail = tails[level][-period:]
        restored = np.empty_like(out)
        for i in range(out.shape[0]):
            base = tail[i] if i < period else restored[i - period]
            restored[i] = out[i] + base
        out = restored
    return out
