"""Day-ahead per-VM utilization prediction (paper Section V-B).

EPACT "requires predicting, at the beginning of T, the per-VM CPU and
memory utilization patterns"; the paper fits ARIMA on the previous week
and forecasts the next day for every VM, refreshed daily.  All policies
consume the *same* predictions, so forecast quality is a shared input, not
a policy differentiator — exactly the paper's setup.

:class:`DayAheadPredictor` implements this protocol over a
:class:`~repro.traces.dataset.TraceDataset`; :class:`PerfectPredictor`
is the oracle variant used in ablations and tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError, ForecastError
from ..traces.dataset import TraceDataset
from ..units import SAMPLES_PER_DAY, SAMPLES_PER_SLOT, SLOTS_PER_DAY
from .arima import ArimaOrder
from .batch import batched_decomposed_forecast
from .decomposed import DecomposedArimaForecaster
from .seasonal import SeasonalNaiveForecaster

ForecasterFactory = Callable[[], object]


def default_forecaster_factory() -> DecomposedArimaForecaster:
    """The evaluation's default model: seasonal profile + ARMA(2,1).

    See :mod:`repro.forecast.decomposed` for why decomposition beats plain
    seasonal differencing at day-ahead horizons.
    """
    return DecomposedArimaForecaster(
        order=ArimaOrder(p=2, d=0, q=1), period=SAMPLES_PER_DAY
    )


class DayAheadPredictor:
    """Per-VM day-ahead forecasts over a trace dataset.

    Args:
        dataset: the utilization traces.
        history_days: trailing window the models are fitted on (the paper
            uses the previous week).
        factory: builds a fresh forecaster per (VM, resource, day); must
            expose ``fit(series)`` and ``forecast(horizon)``.
        clip_range: forecasts are clipped into this range (utilization
            percentages cannot leave [0, 100]).
        batch: fit all VMs' models per day through the stacked
            least-squares path of :mod:`repro.forecast.batch` (a handful
            of NumPy calls instead of ``n_vms * 2`` Python-level fits).
            Only applies when ``factory`` produces a
            :class:`~repro.forecast.decomposed.DecomposedArimaForecaster`
            with ``d == 0``; otherwise the scalar path is used.  Rows the
            batched solver flags as rank-deficient (or non-finite) are
            transparently re-fitted with the scalar reference path, so
            forecasts match the scalar route to ~1e-8 relative.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        history_days: int = 7,
        factory: Optional[ForecasterFactory] = None,
        clip_range: Tuple[float, float] = (0.0, 100.0),
        batch: bool = True,
    ):
        if history_days < 2:
            raise DomainError("history_days must be >= 2 (seasonal fit)")
        self._dataset = dataset
        self._history_days = history_days
        self._factory = (
            factory if factory is not None else default_forecaster_factory
        )
        self._clip = clip_range
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._fallback_count = 0
        self._batch_params = None
        if batch:
            probe = self._factory()
            if (
                isinstance(probe, DecomposedArimaForecaster)
                and probe.order.d == 0
            ):
                self._batch_params = (
                    probe.order,
                    probe.period,
                    probe.decay,
                )

    # -- properties -----------------------------------------------------------

    @property
    def history_days(self) -> int:
        """Trailing training-window length in days."""
        return self._history_days

    @property
    def first_predictable_day(self) -> int:
        """First day index with a full training window behind it."""
        return self._history_days

    @property
    def fallback_count(self) -> int:
        """Number of per-series fits that fell back to seasonal-naive."""
        return self._fallback_count

    # -- forecasting ----------------------------------------------------------

    def forecast_day(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for a day, shape ``(n_vms, 288)`` each.

        Models are fitted on the ``history_days`` days before
        ``day_index``; results are cached.

        Raises:
            DomainError: if the day lacks a full training window or is
                outside the dataset.
        """
        if day_index in self._cache:
            return self._cache[day_index]
        if day_index < self._history_days:
            raise DomainError(
                f"day {day_index} has no full {self._history_days}-day "
                f"training window"
            )
        if day_index >= self._dataset.n_days:
            raise DomainError(f"day {day_index} outside the dataset")

        lo = (day_index - self._history_days) * SAMPLES_PER_DAY
        hi = day_index * SAMPLES_PER_DAY
        # Day-type labels (weekday = 0 / weekend = 1) so week-aware
        # forecasters build the profile from comparable days only.
        window_days = range(day_index - self._history_days, day_index)
        season_types = np.array(
            [1 if day % 7 >= 5 else 0 for day in window_days], dtype=int
        )
        target_type = 1 if day_index % 7 >= 5 else 0
        if self._batch_params is not None:
            cpu_pred, mem_pred = self._forecast_day_batch(
                lo, hi, season_types, target_type
            )
        else:
            cpu_pred = np.empty((self._dataset.n_vms, SAMPLES_PER_DAY))
            mem_pred = np.empty((self._dataset.n_vms, SAMPLES_PER_DAY))
            for vm_id in range(self._dataset.n_vms):
                cpu_pred[vm_id] = self._forecast_series(
                    self._dataset.cpu_pct[vm_id, lo:hi],
                    season_types,
                    target_type,
                )
                mem_pred[vm_id] = self._forecast_series(
                    self._dataset.mem_pct[vm_id, lo:hi],
                    season_types,
                    target_type,
                )
        np.clip(cpu_pred, *self._clip, out=cpu_pred)
        np.clip(mem_pred, *self._clip, out=mem_pred)
        self._cache[day_index] = (cpu_pred, mem_pred)
        return self._cache[day_index]

    def predicted_slot(
        self, slot_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for one 1-hour slot, ``(n_vms, 12)`` each."""
        day_index = slot_index // SLOTS_PER_DAY
        cpu_day, mem_day = self.forecast_day(day_index)
        offset = (slot_index % SLOTS_PER_DAY) * SAMPLES_PER_SLOT
        return (
            cpu_day[:, offset : offset + SAMPLES_PER_SLOT],
            mem_day[:, offset : offset + SAMPLES_PER_SLOT],
        )

    # -- internals --------------------------------------------------------

    def _forecast_day_batch(
        self,
        lo: int,
        hi: int,
        season_types: np.ndarray,
        target_type: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One stacked fit for all VMs x both resources of a day.

        CPU and memory windows are vstacked into a single ``(2 *
        n_vms, window)`` batch; rows the batched estimator rejects are
        re-fitted through the scalar reference path (which itself falls
        back to seasonal-naive on failure, as in the scalar route).
        """
        order, period, decay = self._batch_params
        n_vms = self._dataset.n_vms
        data = np.vstack(
            [
                self._dataset.cpu_pct[:, lo:hi],
                self._dataset.mem_pct[:, lo:hi],
            ]
        )
        try:
            forecasts, ok = batched_decomposed_forecast(
                data,
                order=order,
                period=period,
                decay=decay,
                horizon=SAMPLES_PER_DAY,
                season_types=season_types,
                target_type=target_type,
            )
        except ForecastError:
            # Batch-wide failure (e.g. too-short window): the scalar path
            # raises per series and falls back to seasonal-naive.
            forecasts = np.empty((data.shape[0], SAMPLES_PER_DAY))
            ok = np.zeros(data.shape[0], dtype=bool)
        for row in np.flatnonzero(~ok):
            forecasts[row] = self._forecast_series(
                data[row], season_types, target_type
            )
        return forecasts[:n_vms], forecasts[n_vms:]

    def _forecast_series(
        self,
        series: np.ndarray,
        season_types: np.ndarray,
        target_type: int,
    ) -> np.ndarray:
        try:
            model = self._factory()
            if isinstance(model, DecomposedArimaForecaster):
                model.fit(
                    series,
                    season_types=season_types,
                    target_type=target_type,
                )
            else:
                model.fit(series)
            prediction = np.asarray(model.forecast(SAMPLES_PER_DAY))
            if not np.all(np.isfinite(prediction)):
                raise ForecastError("non-finite forecast")
            return prediction
        except ForecastError:
            self._fallback_count += 1
            fallback = SeasonalNaiveForecaster(period=SAMPLES_PER_DAY)
            fallback.fit(series)
            return fallback.forecast(SAMPLES_PER_DAY)


class PrecomputedPredictor:
    """Day-ahead predictions frozen into plain per-day arrays.

    Wraps the ``{day: (cpu, mem)}`` forecasts another predictor already
    computed.  Being nothing but arrays, it pickles cheaply — this is how
    :func:`repro.dcsim.engine.run_policies` ships the shared day-ahead
    predictions to its worker processes instead of re-fitting (or
    serializing) the full ARIMA predictor per policy.

    Args:
        days: mapping from day index to ``(cpu, mem)`` forecast arrays of
            shape ``(n_vms, 288)`` each.
        first_predictable_day: the wrapped predictor's first predictable
            day (kept so simulations derive the same start slot).
    """

    def __init__(
        self,
        days: Dict[int, Tuple[np.ndarray, np.ndarray]],
        first_predictable_day: int,
    ):
        if first_predictable_day < 0:
            raise DomainError("first_predictable_day must be >= 0")
        self._days = dict(days)
        self._first = first_predictable_day

    @classmethod
    def from_predictor(
        cls, predictor, days: "range | Sequence[int]"
    ) -> "PrecomputedPredictor":
        """Materialize ``predictor``'s forecasts for the given days."""
        return cls(
            {int(day): predictor.forecast_day(int(day)) for day in days},
            predictor.first_predictable_day,
        )

    @property
    def first_predictable_day(self) -> int:
        """First day index the wrapped predictor could predict."""
        return self._first

    @property
    def fallback_count(self) -> int:
        """Frozen forecasts carry no fitting, hence no fallbacks."""
        return 0

    def forecast_day(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The precomputed forecasts of one day.

        Raises:
            DomainError: if the day was not precomputed.
        """
        try:
            return self._days[day_index]
        except KeyError:
            raise DomainError(
                f"day {day_index} was not precomputed"
            ) from None

    def predicted_slot(
        self, slot_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for one 1-hour slot, ``(n_vms, 12)`` each."""
        cpu_day, mem_day = self.forecast_day(slot_index // SLOTS_PER_DAY)
        offset = (slot_index % SLOTS_PER_DAY) * SAMPLES_PER_SLOT
        return (
            cpu_day[:, offset : offset + SAMPLES_PER_SLOT],
            mem_day[:, offset : offset + SAMPLES_PER_SLOT],
        )


class PerfectPredictor:
    """Oracle predictor returning the actual future utilization.

    Shares :class:`DayAheadPredictor`'s interface; used to separate
    allocation quality from forecast quality in ablations, and in tests
    (with perfect prediction, a policy's violations must vanish).
    """

    def __init__(self, dataset: TraceDataset):
        self._dataset = dataset

    @property
    def first_predictable_day(self) -> int:
        """The oracle can 'predict' from day zero."""
        return 0

    @property
    def fallback_count(self) -> int:
        """The oracle never falls back."""
        return 0

    def forecast_day(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The actual traces of the requested day."""
        return self._dataset.day_slice(day_index)

    def predicted_slot(
        self, slot_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The actual traces of the requested slot."""
        return self._dataset.slot_slice(slot_index)
