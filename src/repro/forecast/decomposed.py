"""Decomposition-based ARIMA forecaster (seasonal profile + ARMA remainder).

Pure seasonal differencing (the classic SARIMA route) repeats *yesterday's
noise* along with yesterday's signal, so for day-ahead horizons it cannot
beat the seasonal-naive baseline on noisy series.  The standard practical
remedy — and what this module implements — is decomposition:

1. estimate the **seasonal profile** as an exponentially weighted average
   of the same time-of-day across the training days (recent days weigh
   more, so slow drift is tracked while sample noise averages out);
2. model the **remainder** (series minus profile) with the ARMA machinery
   of :mod:`repro.forecast.arima`;
3. forecast = profile + ARMA forecast of the remainder (which decays to
   zero within a few samples, as it should for short-memory noise).

This is the default day-ahead model of the data-center evaluation; tests
assert it beats seasonal-naive on the synthetic traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ForecastError
from ..units import SAMPLES_PER_DAY
from .arima import ArimaModel, ArimaOrder


class DecomposedArimaForecaster:
    """Exponentially weighted seasonal profile + ARMA on the remainder.

    Args:
        order: ARMA order for the remainder (d should be 0: the remainder
            is detrended by construction).
        period: seasonal period in samples (288 = one day).
        decay: per-season weight decay for the profile; ``0.6`` means the
            most recent day carries weight 1, the day before 0.6, etc.
    """

    def __init__(
        self,
        order: ArimaOrder | None = None,
        period: int = SAMPLES_PER_DAY,
        decay: float = 0.6,
    ):
        if period < 1:
            raise ForecastError("period must be >= 1")
        if not (0.0 < decay <= 1.0):
            raise ForecastError("decay must be in (0, 1]")
        self._order = order if order is not None else ArimaOrder(p=2, d=0, q=1)
        self._period = period
        self._decay = decay
        self._profile: Optional[np.ndarray] = None
        self._model: Optional[ArimaModel] = None
        self._remainder_tail_known = False

    @property
    def period(self) -> int:
        """Seasonal period in samples."""
        return self._period

    @property
    def order(self) -> ArimaOrder:
        """ARMA order used for the remainder model."""
        return self._order

    @property
    def decay(self) -> float:
        """Per-season profile weight decay."""
        return self._decay

    @property
    def profile(self) -> np.ndarray:
        """The fitted seasonal profile (length ``period``).

        Raises:
            ForecastError: if not fitted.
        """
        if self._profile is None:
            raise ForecastError("forecaster has not been fitted")
        return self._profile

    def fit(
        self,
        series: np.ndarray,
        season_types: Optional[np.ndarray] = None,
        target_type: Optional[int] = None,
    ) -> "DecomposedArimaForecaster":
        """Fit profile and remainder model on >= 2 full seasons.

        Args:
            series: the training series (a whole number of seasons is
                used; a partial leading season is dropped).
            season_types: optional integer label per season in the used
                window (e.g. 0 = weekday, 1 = weekend).  When given, the
                forecast profile is built only from seasons matching
                ``target_type`` (falling back to all seasons if none
                match), and each season's remainder is computed against
                its own type's profile.
            target_type: the label of the season to be forecast; required
                when ``season_types`` is given.
        """
        y = np.asarray(series, dtype=float)
        n_seasons = y.shape[0] // self._period
        if n_seasons < 2:
            raise ForecastError(
                f"need at least 2 full seasons ({2 * self._period} samples),"
                f" got {y.shape[0]}"
            )
        used = y[-n_seasons * self._period :]
        seasons = used.reshape(n_seasons, self._period)

        if season_types is not None:
            types = np.asarray(list(season_types), dtype=int)
            if types.shape != (n_seasons,):
                raise ForecastError(
                    f"need one season type per season "
                    f"({n_seasons}), got {types.shape}"
                )
            if target_type is None:
                raise ForecastError(
                    "target_type is required with season_types"
                )
            profiles = {
                t: self._weighted_profile(seasons, types == t)
                for t in np.unique(types)
            }
            self._profile = profiles.get(
                int(target_type), self._weighted_profile(seasons, None)
            )
            season_profiles = np.stack(
                [profiles[int(t)] for t in types]
            )
        else:
            self._profile = self._weighted_profile(seasons, None)
            season_profiles = np.tile(self._profile, (n_seasons, 1))

        remainder = (seasons - season_profiles).reshape(-1)
        model = ArimaModel(self._order)
        model.fit(remainder)
        self._model = model
        return self

    def _weighted_profile(
        self, seasons: np.ndarray, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        """Exponentially weighted season average (most recent heaviest)."""
        if mask is not None and mask.any():
            selected = seasons[mask]
        else:
            selected = seasons
        n = selected.shape[0]
        weights = self._decay ** np.arange(n - 1, -1, -1)
        weights = weights / weights.sum()
        return weights @ selected

    def forecast(self, horizon: int) -> np.ndarray:
        """Profile plus decaying ARMA remainder forecast."""
        if self._profile is None or self._model is None:
            raise ForecastError("forecaster has not been fitted")
        if horizon < 1:
            raise ForecastError("forecast horizon must be >= 1")
        reps = int(np.ceil(horizon / self._period))
        seasonal = np.tile(self._profile, reps)[:horizon]
        remainder = self._model.forecast(horizon)
        return seasonal + remainder
