"""Batched day-ahead forecasting: all VMs' models fitted in one shot.

The seed :class:`~repro.forecast.predictor.DayAheadPredictor` fits one
:class:`~repro.forecast.decomposed.DecomposedArimaForecaster` per
(VM, resource, day) — ``n_vms * 2`` Python-level Hannan-Rissanen fits per
simulated day.  Every one of those fits solves the same two small least-
squares problems on a same-length series, so the whole day batches into a
handful of NumPy calls:

1. the exponentially weighted seasonal profiles become one ``einsum``
   over the stacked ``(batch, n_seasons, period)`` season tensor;
2. both Hannan-Rissanen regressions (the long-AR stage and the ARMA
   stage) become *stacked* least squares: one batched GEMM builds the
   Gram matrix and right-hand side together from an augmented design,
   one batched LU solves the normal equations, chunked so each design
   tensor stays cache-resident;
3. the ARMA forecast recursion runs once over the horizon with vector
   states instead of once per series.

The scalar implementation remains the reference oracle: rows whose
batched solve is (near-)rank-deficient — flagged by the Gram-spectrum
test — or produces non-finite output are reported through the ``ok``
mask so the caller can re-fit them with the scalar path.  For
well-conditioned rows the refined normal-equation route matches the
scalar SVD-based ``lstsq`` route to ~1e-8 relative on the forecasts
(tolerances asserted in ``tests/test_fast_path_equivalence.py``).

Only ``d == 0`` models batch (the decomposed forecaster's remainder is
detrended by construction, so the evaluation default is ARMA(2, 1));
``d > 0`` callers stay on the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ForecastError
from .arima import ArimaOrder

# Relative Gram-spectrum threshold below which a stacked least-squares row
# is declared (near-)rank-deficient and routed to the scalar reference
# path.  1e-10 on the eigenvalue ratio bounds the design condition number
# by ~1e5, keeping the normal-equation solve at ~1e-8 accuracy.
_RANK_EPS = 1.0e-10
# Rows per least-squares chunk: keeps each chunk's design tensor a few MB
# (cache-resident) so the batched GEMMs are compute- rather than
# memory-bandwidth-bound.  Chunking does not change any result — rows are
# independent.
_CHUNK_ROWS = 8


@dataclass(frozen=True)
class BatchArmaFit:
    """Fitted ARMA parameters for a batch of series.

    Attributes:
        order: shared model order (``d`` must be 0).
        const: intercepts, shape ``(batch,)``.
        ar: AR coefficients, shape ``(batch, p)``.
        ma: MA coefficients, shape ``(batch, q)``.
        w_tail: final ``max(p, 1)`` observations per series.
        e_tail: final ``max(q, 1)`` in-sample residuals per series.
        ok: rows whose batched estimation succeeded; failed rows carry
            zeros and must be re-fitted with the scalar path.
    """

    order: ArimaOrder
    const: np.ndarray
    ar: np.ndarray
    ma: np.ndarray
    w_tail: np.ndarray
    e_tail: np.ndarray
    ok: np.ndarray


def _ols_from_aug(
    aug: np.ndarray, n_cols: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked least squares from an augmented design tensor.

    ``aug`` carries ``[1, y, x_1 .. x_{n_cols-1}]`` per row block, so a
    single batched GEMM produces the Gram matrix, the right-hand side
    and the target's squared norm at once; a batched LU solves the
    normal equations.  For the well-conditioned, cache-sized chunks this
    matches the scalar SVD ``lstsq`` to ~1e-9 on the coefficients; rows
    whose Gram spectrum reveals (near-)rank deficiency are flagged via
    ``ok`` for the scalar reference path instead.

    Args:
        aug: ``(batch, n_rows, n_cols + 1)`` tensor, target in column 1.
        n_cols: number of true design columns (intercept included).

    Returns:
        ``(coef, fitted, ok)``: coefficients ``(batch, n_cols)``, fitted
        values ``(batch, n_rows)`` and the per-row success mask.
    """
    big = np.matmul(aug.transpose(0, 2, 1), aug)
    idx = [0] + list(range(2, n_cols + 1))
    gram = big[:, idx][:, :, idx]
    rhs = big[:, idx, 1]
    eigs = np.linalg.eigvalsh(gram)
    ok = eigs[:, 0] > _RANK_EPS * np.maximum(eigs[:, -1], 1.0)
    coef = np.zeros((aug.shape[0], n_cols))
    if ok.any():
        coef[ok] = np.linalg.solve(gram[ok], rhs[ok][..., None])[..., 0]
    ok = ok & np.isfinite(coef).all(axis=-1)
    fitted = np.matmul(aug[:, :, 2:], coef[:, 1:, None])[..., 0]
    fitted += coef[:, :1]
    return coef, fitted, ok


def _fill_lags(
    aug: np.ndarray, w: np.ndarray, start: int, lags: int, offset: int
) -> None:
    """Write lag columns ``w_{t-1}..w_{t-lags}`` into ``aug`` at ``offset``.

    Column ``offset + l - 1`` receives ``w[:, start - l : n - l]``
    (mirrors the scalar ``_lagged_design`` layout).
    """
    n = w.shape[1]
    for lag in range(1, lags + 1):
        aug[:, :, offset + lag - 1] = w[:, start - lag : n - lag]


def batched_arma_fit(w: np.ndarray, order: ArimaOrder) -> BatchArmaFit:
    """Hannan-Rissanen estimation for a batch of series at once.

    Mirrors :meth:`repro.forecast.arima.ArimaModel.fit` (``d == 0``):
    constant series collapse to their constant; a long AR(m) supplies
    innovation estimates when ``q > 0``; the final OLS regresses each
    ``w_t`` on its own lags and the estimated innovations.

    Raises:
        ForecastError: on non-finite input, unsupported ``d`` or series
            too short for the requested order (all batch-wide conditions).
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2:
        raise ForecastError("batched fit expects a (batch, n) matrix")
    if order.d != 0:
        raise ForecastError("batched fit supports d=0 only")
    if not np.all(np.isfinite(w)):
        raise ForecastError("series contains non-finite values")
    batch, n = w.shape
    p, q = order.p, order.q
    start = max(p, q)
    if n - start < p + q + 2:
        raise ForecastError(
            f"series too short ({n}) for ARMA({p},{q}) estimation"
        )
    if q > 0:
        m = max(10, 2 * (p + q))
        if n <= m + 2:
            raise ForecastError("series too short for the long-AR stage")

    # Degenerate (constant) rows: the model collapses to the constant
    # (same rule as the scalar path's np.allclose check).
    first = w[:, :1]
    constant = np.isclose(w, first).all(axis=1)

    const = np.where(constant, first[:, 0], 0.0)
    ar = np.zeros((batch, p))
    ma = np.zeros((batch, q))
    e_full = np.zeros((batch, n))
    ok = np.ones(batch, dtype=bool)

    # The stacked designs are processed in row chunks sized to stay in
    # cache: one day's full design tensor runs to hundreds of MB, and the
    # batched GEMMs would be memory-bandwidth bound, forfeiting the win
    # over the (cache-resident) scalar loop.  Chunking changes no result —
    # rows are independent.
    active_rows = np.flatnonzero(~constant)
    for lo_i in range(0, active_rows.size, _CHUNK_ROWS):
        rows = active_rows[lo_i : lo_i + _CHUNK_ROWS]
        wa = w[rows]
        b = rows.size
        residuals: Optional[np.ndarray] = None
        ok_a = np.ones(b, dtype=bool)
        if q > 0:
            aug1 = np.empty((b, n - m, m + 2))
            aug1[:, :, 0] = 1.0
            aug1[:, :, 1] = wa[:, m:]
            _fill_lags(aug1, wa, m, m, 2)
            coef1, fitted1, ok1 = _ols_from_aug(aug1, m + 1)
            residuals = np.zeros_like(wa)
            residuals[:, m:] = aug1[:, :, 1] - fitted1
            ok_a &= ok1

        n_cols = 1 + p + q
        aug2 = np.empty((b, n - start, n_cols + 1))
        aug2[:, :, 0] = 1.0
        aug2[:, :, 1] = wa[:, start:]
        if p > 0:
            _fill_lags(aug2, wa, start, p, 2)
        if q > 0:
            assert residuals is not None
            _fill_lags(aug2, residuals, start, q, 2 + p)
        coef2, fitted2, ok2 = _ols_from_aug(aug2, n_cols)
        ok_a &= ok2

        const[rows] = coef2[:, 0]
        if p > 0:
            ar[rows] = coef2[:, 1 : 1 + p]
        if q > 0:
            ma[rows] = coef2[:, 1 + p :]
        ef = np.zeros_like(wa)
        ef[:, start:] = aug2[:, :, 1] - fitted2
        e_full[rows] = ef
        ok[rows] = ok_a

    w_tail = w[:, -max(p, 1) :].copy()
    if q > 0:
        e_tail = e_full[:, -max(q, 1) :].copy()
    else:
        e_tail = np.zeros((batch, 1))
    # Constant rows always succeed (no regression involved).
    ok |= constant
    return BatchArmaFit(
        order=order,
        const=const,
        ar=ar,
        ma=ma,
        w_tail=w_tail,
        e_tail=e_tail,
        ok=ok,
    )


def batched_arma_forecast(fit: BatchArmaFit, horizon: int) -> np.ndarray:
    """Mean forecasts for every series, shape ``(batch, horizon)``.

    The recursion over the horizon matches the scalar
    :meth:`~repro.forecast.arima.ArimaModel.forecast` step for step
    (future innovations at their zero mean), with vector states across
    the batch.
    """
    if horizon < 1:
        raise ForecastError("forecast horizon must be >= 1")
    p, q = fit.order.p, fit.order.q
    batch = fit.const.shape[0]
    out = np.empty((batch, horizon))
    # w history: p seed values then the forecasts as they are produced.
    w_hist = np.empty((batch, p + horizon)) if p > 0 else None
    if w_hist is not None:
        w_hist[:, :p] = fit.w_tail[:, -p:]
    for step in range(horizon):
        value = fit.const.copy()
        for lag in range(1, p + 1):
            value += fit.ar[:, lag - 1] * w_hist[:, p + step - lag]
        for lag in range(1, q + 1):
            back = step - lag
            if back < 0:  # still inside the observed residual tail
                value += fit.ma[:, lag - 1] * fit.e_tail[:, q + back]
        out[:, step] = value
        if w_hist is not None:
            w_hist[:, p + step] = value
    return out


def batched_decomposed_forecast(
    series: np.ndarray,
    order: ArimaOrder,
    period: int,
    decay: float,
    horizon: int,
    season_types: Optional[np.ndarray] = None,
    target_type: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched mirror of :class:`DecomposedArimaForecaster` fit+forecast.

    Args:
        series: stacked training series, shape ``(batch, n)``.
        order: ARMA order for the remainder (``d`` must be 0).
        period: seasonal period in samples.
        decay: per-season profile weight decay.
        horizon: forecast length.
        season_types: optional per-season labels (shared by the batch,
            like the scalar path's per-day labels).
        target_type: label of the season being forecast; required with
            ``season_types``.

    Returns:
        ``(forecasts, ok)`` with forecasts ``(batch, horizon)``; rows with
        ``ok == False`` failed the batched estimation and must be
        re-fitted with the scalar reference path.

    Raises:
        ForecastError: on batch-wide problems (too few seasons, bad
            arguments) — the same conditions the scalar path raises for.
    """
    y = np.asarray(series, dtype=float)
    if y.ndim != 2:
        raise ForecastError("batched forecast expects a (batch, n) matrix")
    if period < 1:
        raise ForecastError("period must be >= 1")
    if not (0.0 < decay <= 1.0):
        raise ForecastError("decay must be in (0, 1]")
    batch, n = y.shape
    n_seasons = n // period
    if n_seasons < 2:
        raise ForecastError(
            f"need at least 2 full seasons ({2 * period} samples), got {n}"
        )
    used = y[:, -n_seasons * period :]
    seasons = used.reshape(batch, n_seasons, period)

    def weighted(mask: Optional[np.ndarray]) -> np.ndarray:
        selected = seasons[:, mask] if mask is not None else seasons
        count = selected.shape[1]
        weights = decay ** np.arange(count - 1, -1, -1)
        weights = weights / weights.sum()
        return np.einsum("s,bsp->bp", weights, selected)

    if season_types is not None:
        types = np.asarray(list(season_types), dtype=int)
        if types.shape != (n_seasons,):
            raise ForecastError(
                f"need one season type per season ({n_seasons}), "
                f"got {types.shape}"
            )
        if target_type is None:
            raise ForecastError("target_type is required with season_types")
        profiles = {
            int(t): weighted(types == t) for t in np.unique(types)
        }
        profile = profiles.get(int(target_type))
        if profile is None:
            profile = weighted(None)
        season_profiles = np.stack(
            [profiles[int(t)] for t in types], axis=1
        )
    else:
        profile = weighted(None)
        season_profiles = np.broadcast_to(
            profile[:, None, :], seasons.shape
        )

    remainder = (seasons - season_profiles).reshape(batch, -1)
    fit = batched_arma_fit(remainder, order)
    rem_fc = batched_arma_forecast(fit, horizon)

    reps = int(np.ceil(horizon / period))
    seasonal = np.tile(profile, (1, reps))[:, :horizon]
    forecasts = seasonal + rem_fc
    ok = fit.ok & np.isfinite(forecasts).all(axis=1)
    return forecasts, ok
