"""Batched day-ahead forecasting: all VMs' models fitted in one shot.

The seed :class:`~repro.forecast.predictor.DayAheadPredictor` fits one
:class:`~repro.forecast.decomposed.DecomposedArimaForecaster` per
(VM, resource, day) — ``n_vms * 2`` Python-level Hannan-Rissanen fits per
simulated day.  Every one of those fits solves the same two small least-
squares problems on a same-length series, so the whole day batches into a
handful of NumPy calls:

1. the exponentially weighted seasonal profiles become one ``einsum``
   over the stacked ``(batch, n_seasons, period)`` season tensor;
2. both Hannan-Rissanen regressions (the long-AR stage and the ARMA
   stage) become *stacked* least squares whose normal equations are
   assembled **directly from lag correlations**: every Gram entry is a
   full-series autocorrelation (one reduction over the cache-resident
   ``(batch, n)`` matrix per lag distance) corrected by the handful of
   head/tail terms the regression window excludes, so no
   ``(batch, rows, columns)`` design tensor is ever materialized and no
   per-chunk Python loop runs; one batched LU then solves all series at
   once, and the stage-2 residuals are evaluated only at the ``q`` tail
   positions the forecast recursion actually reads;
3. the ARMA forecast recursion is evaluated through precomputed
   companion-matrix powers — a doubling scan of ``ceil(log2(horizon))``
   batched ``einsum`` contractions for all series at once — with the
   per-step vector recursion kept callable as the reference oracle
   (``method="recursion"``) and used as the fallback for rows whose
   power train goes non-finite.

The scalar implementation remains the reference oracle: rows whose
batched solve is (near-)rank-deficient — flagged by the Gram-spectrum
test — or produces non-finite output are reported through the ``ok``
mask so the caller can re-fit them with the scalar path.  For
well-conditioned rows the refined normal-equation route matches the
scalar SVD-based ``lstsq`` route to ~1e-8 relative on the forecasts
(tolerances asserted in ``tests/test_fast_path_equivalence.py``).

Only ``d == 0`` models batch (the decomposed forecaster's remainder is
detrended by construction, so the evaluation default is ARMA(2, 1));
``d > 0`` callers stay on the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ForecastError
from .arima import ArimaOrder, _companion_forecast

# Relative Gram-spectrum threshold below which a stacked least-squares row
# is declared (near-)rank-deficient and routed to the scalar reference
# path.  1e-10 on the eigenvalue ratio bounds the design condition number
# by ~1e5, keeping the normal-equation solve at ~1e-8 accuracy.
_RANK_EPS = 1.0e-10


@dataclass(frozen=True)
class BatchArmaFit:
    """Fitted ARMA parameters for a batch of series.

    Attributes:
        order: shared model order (``d`` must be 0).
        const: intercepts, shape ``(batch,)``.
        ar: AR coefficients, shape ``(batch, p)``.
        ma: MA coefficients, shape ``(batch, q)``.
        w_tail: final ``max(p, 1)`` observations per series.
        e_tail: final ``max(q, 1)`` in-sample residuals per series.
        ok: rows whose batched estimation succeeded; failed rows carry
            zeros and must be re-fitted with the scalar path.
    """

    order: ArimaOrder
    const: np.ndarray
    ar: np.ndarray
    ma: np.ndarray
    w_tail: np.ndarray
    e_tail: np.ndarray
    ok: np.ndarray


def _lag_gram(
    w: np.ndarray,
    max_lag: int,
    t0: int,
    autocorr: Optional[np.ndarray] = None,
) -> np.ndarray:
    """All lag inner products ``s[i, j] = sum_{t=t0}^{n-1} w[t-i] w[t-j]``.

    ``s`` covers ``i, j`` in ``0..max_lag`` (index 0 is the regression
    target, lag 0).  Each lag distance ``d = j - i`` needs one reduction
    over the full series — the whole-series autocorrelation ``A(d) =
    sum_{u=d}^{n-1} w[u] w[u-d]`` — from which the window's entry
    follows by subtracting the few head (``u < t0 - i``) and tail
    (``u >= n - i``) products the regression window excludes.  The
    ``(batch, n)`` source matrix stays cache-resident across the
    ``max_lag + 1`` passes, unlike a materialized design tensor.

    Requires ``max_lag <= t0`` (both regressions satisfy this: the long
    AR stage has ``t0 == max_lag`` and the ARMA stage
    ``t0 = max(p, q) >= p``).  ``autocorr`` optionally supplies the
    whole-series autocorrelations ``A(d)`` (shape ``(batch, >=
    max_lag+1)``) so both regression stages share one set of passes.
    """
    b, n = w.shape
    lags = max_lag
    s = np.empty((b, lags + 1, lags + 1))
    for d in range(lags + 1):
        total = (
            autocorr[:, d]
            if autocorr is not None
            else np.einsum("bi,bi->b", w[:, d:], w[:, : n - d])
        )
        if t0 > d:
            # hc[:, k] = sum of the first k+1 head products (u = d..d+k).
            hc = np.cumsum(w[:, d:t0] * w[:, : t0 - d], axis=1)
        if lags > 0:
            # tcs[:, k] = sum of tail products with u >= n - lags + k.
            tp = w[:, n - lags :] * w[:, n - lags - d : n - d]
            tcs = np.cumsum(tp[:, ::-1], axis=1)[:, ::-1]
        for i in range(0, lags + 1 - d):
            j = i + d
            val = total
            head_count = t0 - i - d
            if head_count > 0:
                val = val - hc[:, head_count - 1]
            if i > 0:
                val = val - tcs[:, lags - i]
            s[:, i, j] = val
            if i != j:
                s[:, j, i] = val
    return s


def _lag_sums(
    w: np.ndarray,
    max_lag: int,
    t0: int,
    cumsum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Column sums ``r[i] = sum_{t=t0}^{n-1} w[t-i]`` for ``i <= max_lag``."""
    b, n = w.shape
    cs = cumsum if cumsum is not None else np.cumsum(w, axis=1)
    out = np.empty((b, max_lag + 1))
    for i in range(max_lag + 1):
        hi = cs[:, n - 1 - i]
        out[:, i] = hi - cs[:, t0 - i - 1] if t0 - i > 0 else hi
    return out


def _ar_normal_equations(
    w: np.ndarray,
    lags: int,
    t0: int,
    autocorr: Optional[np.ndarray] = None,
    cumsum: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Normal equations of ``w_t ~ [1, w_{t-1} .. w_{t-lags}]``, batched.

    Returns ``(gram, rhs)`` of shapes ``(batch, lags+1, lags+1)`` and
    ``(batch, lags+1)`` for the regression over ``t in [t0, n)``.
    """
    s = _lag_gram(w, lags, t0, autocorr=autocorr)
    r = _lag_sums(w, lags, t0, cumsum=cumsum)
    k = lags + 1
    gram = np.empty((w.shape[0], k, k))
    rhs = np.empty((w.shape[0], k))
    gram[:, 0, 0] = w.shape[1] - t0
    gram[:, 0, 1:] = r[:, 1:]
    gram[:, 1:, 0] = r[:, 1:]
    gram[:, 1:, 1:] = s[:, 1:, 1:]
    rhs[:, 0] = r[:, 0]
    rhs[:, 1:] = s[:, 1:, 0]
    return gram, rhs


def _solve_normal(
    gram: np.ndarray, rhs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve batched normal equations with the Gram-spectrum rank test.

    Rows whose smallest eigenvalue falls below ``_RANK_EPS`` of the
    largest (or whose solution is non-finite) come back with zero
    coefficients and ``ok == False`` — the caller re-fits them through
    the scalar reference path.
    """
    eigs = np.linalg.eigvalsh(gram)
    ok = eigs[:, 0] > _RANK_EPS * np.maximum(eigs[:, -1], 1.0)
    coef = np.zeros(rhs.shape)
    if ok.any():
        coef[ok] = np.linalg.solve(gram[ok], rhs[ok][..., None])[..., 0]
    ok = ok & np.isfinite(coef).all(axis=-1)
    return coef, ok


def _extend_with_innovations(
    gram: np.ndarray,
    rhs: np.ndarray,
    w: np.ndarray,
    residuals: np.ndarray,
    p: int,
    q: int,
    start: int,
    m: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Append the ``q`` innovation-lag columns to the ARMA stage.

    ``residuals`` holds the long-AR innovations, zero before position
    ``m``; every inner product therefore starts at the first position
    where its innovation factor is non-zero (the skipped products are
    exactly zero, so the sums are unchanged).
    """
    b, n = w.shape
    k = 1 + p + q
    full_gram = np.empty((b, k, k))
    full_rhs = np.empty((b, k))
    full_gram[:, : 1 + p, : 1 + p] = gram
    full_rhs[:, : 1 + p] = rhs
    for j in range(1, q + 1):
        col = p + j
        t1 = max(start, m + j)  # first t with e[t-j] != 0
        ej = residuals[:, t1 - j : n - j]
        # <1, e_j>
        total = ej.sum(axis=1)
        full_gram[:, 0, col] = total
        full_gram[:, col, 0] = total
        # <w_{t-i}, e_{t-j}> for the target (i=0) and the AR lags.
        for i in range(0, p + 1):
            dot = np.einsum("bt,bt->b", w[:, t1 - i : n - i], ej)
            if i == 0:
                full_rhs[:, col] = dot
            else:
                full_gram[:, i, col] = dot
                full_gram[:, col, i] = dot
        # <e_{t-i}, e_{t-j}> for i <= j: both factors are non-zero from
        # the same first position t1 (t - j >= m dominates for i <= j).
        for i in range(1, j + 1):
            dot = np.einsum(
                "bt,bt->b",
                residuals[:, t1 - i : n - i],
                residuals[:, t1 - j : n - j],
            )
            full_gram[:, p + i, col] = dot
            full_gram[:, col, p + i] = dot
    return full_gram, full_rhs


def batched_arma_fit(w: np.ndarray, order: ArimaOrder) -> BatchArmaFit:
    """Hannan-Rissanen estimation for a batch of series at once.

    Mirrors :meth:`repro.forecast.arima.ArimaModel.fit` (``d == 0``):
    constant series collapse to their constant; a long AR(m) supplies
    innovation estimates when ``q > 0``; the final OLS regresses each
    ``w_t`` on its own lags and the estimated innovations.

    Raises:
        ForecastError: on non-finite input, unsupported ``d`` or series
            too short for the requested order (all batch-wide conditions).
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2:
        raise ForecastError("batched fit expects a (batch, n) matrix")
    if order.d != 0:
        raise ForecastError("batched fit supports d=0 only")
    if not np.all(np.isfinite(w)):
        raise ForecastError("series contains non-finite values")
    batch, n = w.shape
    p, q = order.p, order.q
    start = max(p, q)
    if n - start < p + q + 2:
        raise ForecastError(
            f"series too short ({n}) for ARMA({p},{q}) estimation"
        )
    if q > 0:
        m = max(10, 2 * (p + q))
        if n <= m + 2:
            raise ForecastError("series too short for the long-AR stage")

    # Degenerate (constant) rows: the model collapses to the constant.
    # Same rule as the scalar path's np.allclose check — |w - w0| <=
    # atol + rtol |w0| with numpy's default rtol=1e-5, atol=1e-8 — spelt
    # out to skip np.isclose's generic dispatch on the big matrix.
    first = w[:, :1]
    constant = (
        np.abs(w - first) <= 1.0e-8 + 1.0e-5 * np.abs(first)
    ).all(axis=1)

    const = np.where(constant, first[:, 0], 0.0)
    ar = np.zeros((batch, p))
    ma = np.zeros((batch, q))
    e_tail = np.zeros((batch, max(q, 1)))
    ok = np.ones(batch, dtype=bool)

    active_rows = np.flatnonzero(~constant)
    if active_rows.size:
        wa = w[active_rows]
        ok_a = np.ones(active_rows.size, dtype=bool)
        residuals: Optional[np.ndarray] = None
        # Whole-series autocorrelations and prefix sums shared by both
        # regression stages.
        max_lag = max(m if q > 0 else 0, p)
        autocorr = np.empty((wa.shape[0], max_lag + 1))
        for d in range(max_lag + 1):
            autocorr[:, d] = np.einsum(
                "bi,bi->b", wa[:, d:], wa[:, : n - d]
            )
        cumsum = np.cumsum(wa, axis=1)
        if q > 0:
            # Long-AR stage: innovations estimated from an AR(m) fit.
            gram1, rhs1 = _ar_normal_equations(
                wa, m, m, autocorr=autocorr, cumsum=cumsum
            )
            coef1, ok1 = _solve_normal(gram1, rhs1)
            ok_a &= ok1
            residuals = np.zeros_like(wa)
            # One einsum over a strided lag view: window t covers
            # wa[t .. t+m-1], so column m - l is lag l of target t + m.
            lag_view = sliding_window_view(wa, m, axis=1)[:, : n - m, :]
            fitted = np.einsum(
                "btk,bk->bt", lag_view, coef1[:, 1:][:, ::-1]
            )
            fitted += coef1[:, :1]
            residuals[:, m:] = wa[:, m:] - fitted

        # ARMA stage: w_t ~ [1, w-lags, innovation-lags].
        gram2, rhs2 = _ar_normal_equations(
            wa, p, start, autocorr=autocorr, cumsum=cumsum
        )
        if q > 0:
            gram2, rhs2 = _extend_with_innovations(
                gram2, rhs2, wa, residuals, p, q, start, m
            )
        coef2, ok2 = _solve_normal(gram2, rhs2)
        ok_a &= ok2

        const[active_rows] = coef2[:, 0]
        if p > 0:
            ar[active_rows] = coef2[:, 1 : 1 + p]
        if q > 0:
            ma[active_rows] = coef2[:, 1 + p :]
            # The forecast recursion only reads the last q stage-2
            # residuals, so only those positions are evaluated.
            tail = np.empty((wa.shape[0], q))
            for k, t in enumerate(range(n - q, n)):
                value = wa[:, t] - coef2[:, 0]
                for lag in range(1, p + 1):
                    value = value - coef2[:, lag] * wa[:, t - lag]
                for lag in range(1, q + 1):
                    value = value - coef2[:, p + lag] * residuals[:, t - lag]
                tail[:, k] = value
            e_tail[active_rows] = tail
        ok[active_rows] = ok_a

    w_tail = w[:, -max(p, 1) :].copy()
    # Constant rows always succeed (no regression involved).
    ok |= constant
    return BatchArmaFit(
        order=order,
        const=const,
        ar=ar,
        ma=ma,
        w_tail=w_tail,
        e_tail=e_tail,
        ok=ok,
    )


def batched_arma_forecast(
    fit: BatchArmaFit, horizon: int, method: str = "companion"
) -> np.ndarray:
    """Mean forecasts for every series, shape ``(batch, horizon)``.

    With ``method="companion"`` (the default) the whole batch's
    forecasts are evaluated through precomputed companion-matrix powers
    (:func:`repro.forecast.arima._companion_forecast`): a doubling scan
    of ``ceil(log2(horizon))`` batched ``einsum`` contractions replaces
    the Python loop over the horizon.  Rows whose power train goes
    non-finite transparently fall back to the recursion, and
    ``method="recursion"`` forces the seed per-step loop — the kept
    reference oracle, which matches the scalar
    :meth:`~repro.forecast.arima.ArimaModel.forecast` step for step
    (future innovations at their zero mean).
    """
    if horizon < 1:
        raise ForecastError("forecast horizon must be >= 1")
    if method == "companion":
        out = _companion_forecast(
            fit.const, fit.ar, fit.ma, fit.w_tail, fit.e_tail, horizon
        )
        bad = ~np.isfinite(out).all(axis=1)
        if bad.any():
            sub = BatchArmaFit(
                order=fit.order,
                const=fit.const[bad],
                ar=fit.ar[bad],
                ma=fit.ma[bad],
                w_tail=fit.w_tail[bad],
                e_tail=fit.e_tail[bad],
                ok=fit.ok[bad],
            )
            out[bad] = batched_arma_forecast(
                sub, horizon, method="recursion"
            )
        return out
    if method != "recursion":
        raise ForecastError(f"unknown forecast method {method!r}")
    p, q = fit.order.p, fit.order.q
    batch = fit.const.shape[0]
    out = np.empty((batch, horizon))
    # w history: p seed values then the forecasts as they are produced.
    w_hist = np.empty((batch, p + horizon)) if p > 0 else None
    if w_hist is not None:
        w_hist[:, :p] = fit.w_tail[:, -p:]
    for step in range(horizon):
        value = fit.const.copy()
        for lag in range(1, p + 1):
            value += fit.ar[:, lag - 1] * w_hist[:, p + step - lag]
        for lag in range(1, q + 1):
            back = step - lag
            if back < 0:  # still inside the observed residual tail
                value += fit.ma[:, lag - 1] * fit.e_tail[:, q + back]
        out[:, step] = value
        if w_hist is not None:
            w_hist[:, p + step] = value
    return out


def batched_decomposed_forecast(
    series: np.ndarray,
    order: ArimaOrder,
    period: int,
    decay: float,
    horizon: int,
    season_types: Optional[np.ndarray] = None,
    target_type: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched mirror of :class:`DecomposedArimaForecaster` fit+forecast.

    Args:
        series: stacked training series, shape ``(batch, n)``.
        order: ARMA order for the remainder (``d`` must be 0).
        period: seasonal period in samples.
        decay: per-season profile weight decay.
        horizon: forecast length.
        season_types: optional per-season labels (shared by the batch,
            like the scalar path's per-day labels).
        target_type: label of the season being forecast; required with
            ``season_types``.

    Returns:
        ``(forecasts, ok)`` with forecasts ``(batch, horizon)``; rows with
        ``ok == False`` failed the batched estimation and must be
        re-fitted with the scalar reference path.

    Raises:
        ForecastError: on batch-wide problems (too few seasons, bad
            arguments) — the same conditions the scalar path raises for.
    """
    y = np.asarray(series, dtype=float)
    if y.ndim != 2:
        raise ForecastError("batched forecast expects a (batch, n) matrix")
    if period < 1:
        raise ForecastError("period must be >= 1")
    if not (0.0 < decay <= 1.0):
        raise ForecastError("decay must be in (0, 1]")
    batch, n = y.shape
    n_seasons = n // period
    if n_seasons < 2:
        raise ForecastError(
            f"need at least 2 full seasons ({2 * period} samples), got {n}"
        )
    used = y[:, -n_seasons * period :]
    seasons = used.reshape(batch, n_seasons, period)

    def weighted(mask: Optional[np.ndarray]) -> np.ndarray:
        selected = seasons[:, mask] if mask is not None else seasons
        count = selected.shape[1]
        weights = decay ** np.arange(count - 1, -1, -1)
        weights = weights / weights.sum()
        return np.einsum("s,bsp->bp", weights, selected)

    if season_types is not None:
        types = np.asarray(list(season_types), dtype=int)
        if types.shape != (n_seasons,):
            raise ForecastError(
                f"need one season type per season ({n_seasons}), "
                f"got {types.shape}"
            )
        if target_type is None:
            raise ForecastError("target_type is required with season_types")
        profiles = {
            int(t): weighted(types == t) for t in np.unique(types)
        }
        profile = profiles.get(int(target_type))
        if profile is None:
            profile = weighted(None)
        season_profiles = np.stack(
            [profiles[int(t)] for t in types], axis=1
        )
    else:
        profile = weighted(None)
        season_profiles = np.broadcast_to(
            profile[:, None, :], seasons.shape
        )

    remainder = (seasons - season_profiles).reshape(batch, -1)
    fit = batched_arma_fit(remainder, order)
    rem_fc = batched_arma_forecast(fit, horizon)

    reps = int(np.ceil(horizon / period))
    seasonal = np.tile(profile, (1, reps))[:, :horizon]
    forecasts = seasonal + rem_fc
    ok = fit.ok & np.isfinite(forecasts).all(axis=1)
    return forecasts, ok
