"""Seasonal forecasters: SARIMA wrapper and the seasonal-naive baseline.

The utilization traces have a strong daily period (288 five-minute
samples).  :class:`SeasonalArimaForecaster` removes it by seasonal
differencing and models the remainder with the ARMA machinery of
:mod:`repro.forecast.arima`; :class:`SeasonalNaiveForecaster` simply
repeats the last observed day and serves both as a fallback (degenerate
fits) and as the accuracy baseline ARIMA must beat.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ForecastError
from ..units import SAMPLES_PER_DAY
from .arima import ArimaModel, ArimaOrder
from .differencing import seasonal_difference, seasonal_integrate


class SeasonalNaiveForecaster:
    """Forecasts by repeating the most recent full season."""

    def __init__(self, period: int = SAMPLES_PER_DAY):
        if period < 1:
            raise ForecastError("period must be >= 1")
        self._period = period
        self._history: Optional[np.ndarray] = None

    @property
    def period(self) -> int:
        """Seasonal period in samples."""
        return self._period

    def fit(self, series: np.ndarray) -> "SeasonalNaiveForecaster":
        """Store the series; requires at least one full season."""
        y = np.asarray(series, dtype=float)
        if y.shape[0] < self._period:
            raise ForecastError(
                f"need at least one full period ({self._period} samples)"
            )
        self._history = y.copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Repeat the last observed season over the horizon."""
        if self._history is None:
            raise ForecastError("forecaster has not been fitted")
        if horizon < 1:
            raise ForecastError("forecast horizon must be >= 1")
        last_season = self._history[-self._period:]
        reps = int(np.ceil(horizon / self._period))
        return np.tile(last_season, reps)[:horizon]


class SeasonalArimaForecaster:
    """SARIMA(p, d, q)(0, D, 0)_period via seasonal differencing + ARMA.

    This is the model the paper's evaluation needs: daily periodicity is
    removed exactly (D=1 seasonal differencing at period 288) and the
    residual short-term dynamics are captured by a small ARMA.

    Args:
        order: the non-seasonal ARIMA order.
        period: seasonal lag in samples (288 = one day).
        seasonal_d: seasonal differencing order ``D``.
    """

    def __init__(
        self,
        order: ArimaOrder | None = None,
        period: int = SAMPLES_PER_DAY,
        seasonal_d: int = 1,
    ):
        if period < 1:
            raise ForecastError("period must be >= 1")
        if seasonal_d < 0:
            raise ForecastError("seasonal differencing must be >= 0")
        self._order = order if order is not None else ArimaOrder(p=2, d=0, q=1)
        self._period = period
        self._seasonal_d = seasonal_d
        self._model: Optional[ArimaModel] = None
        self._history: Optional[np.ndarray] = None

    @property
    def order(self) -> ArimaOrder:
        """The non-seasonal order."""
        return self._order

    @property
    def period(self) -> int:
        """Seasonal period in samples."""
        return self._period

    def fit(self, series: np.ndarray) -> "SeasonalArimaForecaster":
        """Fit on a series covering at least ``D + 1`` seasons."""
        y = np.asarray(series, dtype=float)
        needed = (self._seasonal_d + 1) * self._period
        if y.shape[0] < needed:
            raise ForecastError(
                f"need >= {needed} samples for seasonal fitting, "
                f"got {y.shape[0]}"
            )
        w = seasonal_difference(y, self._period, self._seasonal_d)
        model = ArimaModel(self._order)
        model.fit(w)
        self._model = model
        self._history = y.copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Mean forecast on the original scale."""
        if self._model is None or self._history is None:
            raise ForecastError("forecaster has not been fitted")
        inner = self._model.forecast(horizon)
        return seasonal_integrate(
            inner, self._history, self._period, self._seasonal_d
        )
