"""ARIMA(p, d, q) estimation and forecasting, from scratch.

The paper forecasts per-VM CPU/memory utilization with ARIMA (its Ref.
[24], Box & Jenkins).  statsmodels is unavailable offline, so this module
implements the subset needed: ARMA estimation by the two-stage
Hannan-Rissanen procedure with optional ordinary differencing.

Hannan-Rissanen in brief:

1. fit a long autoregression AR(m) by ordinary least squares and take its
   residuals as estimates of the innovations ``e_t``;
2. regress ``w_t`` on ``w_{t-1..p}`` and ``e_{t-1..q}`` by OLS to obtain
   the ARMA coefficients.

The procedure is consistent, fast (two linear solves) and robust enough
for the thousands of per-VM fits the data-center simulation performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ForecastError
from .differencing import difference, integrate


@dataclass(frozen=True)
class ArimaOrder:
    """Model order ``(p, d, q)``.

    Attributes:
        p: autoregressive order.
        d: ordinary differencing order.
        q: moving-average order.
    """

    p: int
    d: int = 0
    q: int = 0

    def __post_init__(self) -> None:
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ForecastError("ARIMA orders must be non-negative")
        if self.p == 0 and self.q == 0:
            raise ForecastError("need p > 0 or q > 0")


@dataclass(frozen=True)
class ArimaFit:
    """Fitted ARIMA parameters and the state needed for forecasting."""

    order: ArimaOrder
    const: float
    ar: np.ndarray
    ma: np.ndarray
    sigma2: float
    w_tail: np.ndarray
    e_tail: np.ndarray
    history: np.ndarray


def _lagged_design(
    w: np.ndarray, e: Optional[np.ndarray], p: int, q: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the OLS design for regressing w_t on its lags and e lags."""
    start = max(p, q)
    n = w.shape[0]
    if n - start < p + q + 2:
        raise ForecastError(
            f"series too short ({n}) for ARMA({p},{q}) estimation"
        )
    columns = [np.ones(n - start)]
    for lag in range(1, p + 1):
        columns.append(w[start - lag : n - lag])
    for lag in range(1, q + 1):
        assert e is not None
        columns.append(e[start - lag : n - lag])
    design = np.column_stack(columns)
    target = w[start:]
    return design, target


def _long_ar_residuals(w: np.ndarray, m: int) -> np.ndarray:
    """Residuals of a long AR(m) fit (stage 1 of Hannan-Rissanen)."""
    n = w.shape[0]
    if n <= m + 2:
        raise ForecastError("series too short for the long-AR stage")
    columns = [np.ones(n - m)]
    for lag in range(1, m + 1):
        columns.append(w[m - lag : n - lag])
    design = np.column_stack(columns)
    target = w[m:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = np.zeros(n)
    residuals[m:] = target - design @ coef
    return residuals


class ArimaModel:
    """ARIMA(p, d, q) model: fit once, forecast any horizon.

    Example:
        >>> model = ArimaModel(ArimaOrder(p=2, d=0, q=1))
        >>> fit = model.fit(series)
        >>> prediction = model.forecast(24)
    """

    def __init__(self, order: ArimaOrder):
        self._order = order
        self._fit: Optional[ArimaFit] = None

    @property
    def order(self) -> ArimaOrder:
        """The model order."""
        return self._order

    @property
    def fitted(self) -> ArimaFit:
        """The fit result.

        Raises:
            ForecastError: if :meth:`fit` has not been called.
        """
        if self._fit is None:
            raise ForecastError("model has not been fitted")
        return self._fit

    def fit(self, series: np.ndarray) -> ArimaFit:
        """Estimate parameters from a series via Hannan-Rissanen.

        Returns the fit (also stored on the model for forecasting).

        Raises:
            ForecastError: if the series is too short or degenerate.
        """
        y = np.asarray(series, dtype=float)
        if not np.all(np.isfinite(y)):
            raise ForecastError("series contains non-finite values")
        order = self._order
        w = difference(y, order.d)
        if np.allclose(w, w[0] if w.size else 0.0):
            # Degenerate (constant) series: model collapses to the constant.
            fit = ArimaFit(
                order=order,
                const=float(w[0]) if w.size else 0.0,
                ar=np.zeros(order.p),
                ma=np.zeros(order.q),
                sigma2=0.0,
                w_tail=w[-max(order.p, 1):].copy(),
                e_tail=np.zeros(max(order.q, 1)),
                history=y.copy(),
            )
            self._fit = fit
            return fit

        residuals: Optional[np.ndarray] = None
        if order.q > 0:
            m = max(10, 2 * (order.p + order.q))
            residuals = _long_ar_residuals(w, m)

        design, target = _lagged_design(w, residuals, order.p, order.q)
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        const = float(coef[0])
        ar = np.asarray(coef[1 : 1 + order.p], dtype=float)
        ma = np.asarray(coef[1 + order.p :], dtype=float)

        fitted_values = design @ coef
        sigma2 = float(np.mean((target - fitted_values) ** 2))

        # Final in-sample residuals for the MA recursion's initial state.
        e_full = np.zeros(w.shape[0])
        start = max(order.p, order.q)
        e_full[start:] = target - fitted_values

        fit = ArimaFit(
            order=order,
            const=const,
            ar=ar,
            ma=ma,
            sigma2=sigma2,
            w_tail=w[-max(order.p, 1):].copy(),
            e_tail=e_full[-max(order.q, 1):].copy()
            if order.q > 0
            else np.zeros(1),
            history=y.copy(),
        )
        self._fit = fit
        return fit

    def forecast(self, horizon: int) -> np.ndarray:
        """Mean forecast for the next ``horizon`` steps (original scale).

        Future innovations are set to their mean (zero); differencing is
        inverted against the fit history.

        Raises:
            ForecastError: if not fitted or the horizon is not positive.
        """
        if horizon < 1:
            raise ForecastError("forecast horizon must be >= 1")
        fit = self.fitted
        order = fit.order
        p, q = order.p, order.q

        w_state = list(fit.w_tail[-p:]) if p > 0 else []
        e_state = list(fit.e_tail[-q:]) if q > 0 else []
        out = np.empty(horizon)
        for step in range(horizon):
            value = fit.const
            for lag in range(1, p + 1):
                value += fit.ar[lag - 1] * w_state[-lag]
            for lag in range(1, q + 1):
                value += fit.ma[lag - 1] * e_state[-lag]
            out[step] = value
            if p > 0:
                w_state.append(value)
            if q > 0:
                e_state.append(0.0)
        return integrate(out, fit.history, order.d)
