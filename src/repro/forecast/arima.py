"""ARIMA(p, d, q) estimation and forecasting, from scratch.

The paper forecasts per-VM CPU/memory utilization with ARIMA (its Ref.
[24], Box & Jenkins).  statsmodels is unavailable offline, so this module
implements the subset needed: ARMA estimation by the two-stage
Hannan-Rissanen procedure with optional ordinary differencing.

Hannan-Rissanen in brief:

1. fit a long autoregression AR(m) by ordinary least squares and take its
   residuals as estimates of the innovations ``e_t``;
2. regress ``w_t`` on ``w_{t-1..p}`` and ``e_{t-1..q}`` by OLS to obtain
   the ARMA coefficients.

The procedure is consistent, fast (two linear solves) and robust enough
for the thousands of per-VM fits the data-center simulation performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ForecastError
from .differencing import difference, integrate


@dataclass(frozen=True)
class ArimaOrder:
    """Model order ``(p, d, q)``.

    Attributes:
        p: autoregressive order.
        d: ordinary differencing order.
        q: moving-average order.
    """

    p: int
    d: int = 0
    q: int = 0

    def __post_init__(self) -> None:
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ForecastError("ARIMA orders must be non-negative")
        if self.p == 0 and self.q == 0:
            raise ForecastError("need p > 0 or q > 0")


@dataclass(frozen=True)
class ArimaFit:
    """Fitted ARIMA parameters and the state needed for forecasting."""

    order: ArimaOrder
    const: float
    ar: np.ndarray
    ma: np.ndarray
    sigma2: float
    w_tail: np.ndarray
    e_tail: np.ndarray
    history: np.ndarray


def _lagged_design(
    w: np.ndarray, e: Optional[np.ndarray], p: int, q: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the OLS design for regressing w_t on its lags and e lags."""
    start = max(p, q)
    n = w.shape[0]
    if n - start < p + q + 2:
        raise ForecastError(
            f"series too short ({n}) for ARMA({p},{q}) estimation"
        )
    columns = [np.ones(n - start)]
    for lag in range(1, p + 1):
        columns.append(w[start - lag : n - lag])
    for lag in range(1, q + 1):
        assert e is not None
        columns.append(e[start - lag : n - lag])
    design = np.column_stack(columns)
    target = w[start:]
    return design, target


def _companion_system(
    const: np.ndarray,
    ar: np.ndarray,
    ma: np.ndarray,
    w_tail: np.ndarray,
    e_tail: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Companion matrix and initial state of the forecast recursion.

    The mean-forecast recursion (future innovations at zero) is a linear
    map of the state ``z_h = [w_{h-1}..w_{h-P}, e_{h-1}..e_{h-q}, 1]``
    with ``P = max(p, 1)``: ``z_{h+1} = A z_h`` where row 0 of ``A``
    holds ``[ar, ma, const]``, the shift rows move the ``w``/``e``
    histories down one lag, the fresh-innovation row is zero (its mean)
    and the last row keeps the constant 1.  The step-``h`` forecast is
    then ``(A^{h+1} z_0)[0]``.

    Args:
        const: intercepts, shape ``(batch,)``.
        ar: AR coefficients, shape ``(batch, p)``.
        ma: MA coefficients, shape ``(batch, q)``.
        w_tail: final ``max(p, 1)`` observations, newest last.
        e_tail: final ``max(q, 1)`` in-sample residuals, newest last.

    Returns:
        ``(A, z0)`` of shapes ``(batch, s, s)`` and ``(batch, s)`` with
        ``s = max(p, 1) + q + 1``.
    """
    batch, p = ar.shape
    q = ma.shape[1]
    big_p = max(p, 1)
    s = big_p + q + 1
    a = np.zeros((batch, s, s))
    a[:, 0, :p] = ar
    a[:, 0, big_p : big_p + q] = ma
    a[:, 0, s - 1] = const
    for i in range(1, big_p):
        a[:, i, i - 1] = 1.0
    # Row big_p is the fresh innovation e_h = 0 (left all-zero); the
    # remaining e rows shift the residual history down one lag.
    for j in range(1, q):
        a[:, big_p + j, big_p + j - 1] = 1.0
    a[:, s - 1, s - 1] = 1.0

    z0 = np.zeros((batch, s))
    z0[:, :big_p] = w_tail[:, ::-1][:, :big_p]
    if q > 0:
        z0[:, big_p : big_p + q] = e_tail[:, ::-1][:, :q]
    z0[:, s - 1] = 1.0
    return a, z0


def _companion_row_powers(a: np.ndarray, horizon: int) -> np.ndarray:
    """First rows of ``A^1 .. A^horizon``, shape ``(batch, horizon, s)``.

    Forecasts only read row 0 of every power (``out[h] = e1' A^{h+1}
    z0``), so the doubling scan propagates row *vectors* against
    repeated-squared matrices — ``rows(A^{k+1..k+m}) = rows(A^{1..m})
    A^k`` — in ``ceil(log2(horizon))`` batched matmuls instead of one
    matrix product (or one Python recursion step) per horizon step, and
    never materializes the full ``(batch, horizon, s, s)`` power train.
    """
    batch, s, _ = a.shape
    rows = np.empty((batch, horizon, s))
    rows[:, 0] = a[:, 0, :]
    sq = a  # A^k at the top of each iteration
    k = 1
    while k < horizon:
        m = min(k, horizon - k)
        rows[:, k : k + m] = rows[:, :m] @ sq
        k += m
        if k < horizon:
            sq = sq @ sq
    return rows


def _companion_forecast(
    const: np.ndarray,
    ar: np.ndarray,
    ma: np.ndarray,
    w_tail: np.ndarray,
    e_tail: np.ndarray,
    horizon: int,
) -> np.ndarray:
    """Mean forecasts via companion-matrix powers, shape ``(batch, h)``.

    Mathematically identical to the per-step recursion (it evaluates the
    same linear map through reassociated products), so results agree to
    floating-point rounding; callers fall back to the recursion for rows
    whose power train goes non-finite.
    """
    a, z0 = _companion_system(const, ar, ma, w_tail, e_tail)
    rows = _companion_row_powers(a, horizon)
    return (rows @ z0[:, :, None])[..., 0]


def _long_ar_residuals(w: np.ndarray, m: int) -> np.ndarray:
    """Residuals of a long AR(m) fit (stage 1 of Hannan-Rissanen)."""
    n = w.shape[0]
    if n <= m + 2:
        raise ForecastError("series too short for the long-AR stage")
    columns = [np.ones(n - m)]
    for lag in range(1, m + 1):
        columns.append(w[m - lag : n - lag])
    design = np.column_stack(columns)
    target = w[m:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = np.zeros(n)
    residuals[m:] = target - design @ coef
    return residuals


class ArimaModel:
    """ARIMA(p, d, q) model: fit once, forecast any horizon.

    Example:
        >>> model = ArimaModel(ArimaOrder(p=2, d=0, q=1))
        >>> fit = model.fit(series)
        >>> prediction = model.forecast(24)
    """

    def __init__(self, order: ArimaOrder):
        self._order = order
        self._fit: Optional[ArimaFit] = None

    @property
    def order(self) -> ArimaOrder:
        """The model order."""
        return self._order

    @property
    def fitted(self) -> ArimaFit:
        """The fit result.

        Raises:
            ForecastError: if :meth:`fit` has not been called.
        """
        if self._fit is None:
            raise ForecastError("model has not been fitted")
        return self._fit

    def fit(self, series: np.ndarray) -> ArimaFit:
        """Estimate parameters from a series via Hannan-Rissanen.

        Returns the fit (also stored on the model for forecasting).

        Raises:
            ForecastError: if the series is too short or degenerate.
        """
        y = np.asarray(series, dtype=float)
        if not np.all(np.isfinite(y)):
            raise ForecastError("series contains non-finite values")
        order = self._order
        w = difference(y, order.d)
        if np.allclose(w, w[0] if w.size else 0.0):
            # Degenerate (constant) series: model collapses to the constant.
            fit = ArimaFit(
                order=order,
                const=float(w[0]) if w.size else 0.0,
                ar=np.zeros(order.p),
                ma=np.zeros(order.q),
                sigma2=0.0,
                w_tail=w[-max(order.p, 1):].copy(),
                e_tail=np.zeros(max(order.q, 1)),
                history=y.copy(),
            )
            self._fit = fit
            return fit

        residuals: Optional[np.ndarray] = None
        if order.q > 0:
            m = max(10, 2 * (order.p + order.q))
            residuals = _long_ar_residuals(w, m)

        design, target = _lagged_design(w, residuals, order.p, order.q)
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        const = float(coef[0])
        ar = np.asarray(coef[1 : 1 + order.p], dtype=float)
        ma = np.asarray(coef[1 + order.p :], dtype=float)

        fitted_values = design @ coef
        sigma2 = float(np.mean((target - fitted_values) ** 2))

        # Final in-sample residuals for the MA recursion's initial state.
        e_full = np.zeros(w.shape[0])
        start = max(order.p, order.q)
        e_full[start:] = target - fitted_values

        fit = ArimaFit(
            order=order,
            const=const,
            ar=ar,
            ma=ma,
            sigma2=sigma2,
            w_tail=w[-max(order.p, 1):].copy(),
            e_tail=e_full[-max(order.q, 1):].copy()
            if order.q > 0
            else np.zeros(1),
            history=y.copy(),
        )
        self._fit = fit
        return fit

    def forecast(
        self, horizon: int, method: str = "companion"
    ) -> np.ndarray:
        """Mean forecast for the next ``horizon`` steps (original scale).

        Future innovations are set to their mean (zero); differencing is
        inverted against the fit history.

        Args:
            horizon: number of steps to forecast.
            method: ``"companion"`` (default) evaluates the recursion
                through precomputed companion-matrix powers —
                ``O(log horizon)`` NumPy calls instead of a Python loop
                over the horizon — falling back to the recursion if the
                power train goes non-finite; ``"recursion"`` forces the
                seed per-step loop (the reference oracle).

        Raises:
            ForecastError: if not fitted, the horizon is not positive or
                the method is unknown.
        """
        if horizon < 1:
            raise ForecastError("forecast horizon must be >= 1")
        fit = self.fitted
        if method == "recursion":
            out = self._forecast_recursion(horizon)
        elif method == "companion":
            out = _companion_forecast(
                np.array([fit.const]),
                fit.ar[None, :],
                fit.ma[None, :],
                fit.w_tail[None, :],
                fit.e_tail[None, :],
                horizon,
            )[0]
            if not np.all(np.isfinite(out)):
                out = self._forecast_recursion(horizon)
        else:
            raise ForecastError(f"unknown forecast method {method!r}")
        return integrate(out, fit.history, fit.order.d)

    def _forecast_recursion(self, horizon: int) -> np.ndarray:
        """The seed per-step forecast loop (pre-integration oracle)."""
        fit = self.fitted
        p, q = fit.order.p, fit.order.q

        w_state = list(fit.w_tail[-p:]) if p > 0 else []
        e_state = list(fit.e_tail[-q:]) if q > 0 else []
        out = np.empty(horizon)
        for step in range(horizon):
            value = fit.const
            for lag in range(1, p + 1):
                value += fit.ar[lag - 1] * w_state[-lag]
            for lag in range(1, q + 1):
                value += fit.ma[lag - 1] * e_state[-lag]
            out[step] = value
            if p > 0:
                w_state.append(value)
            if q > 0:
                e_state.append(0.0)
        return out
