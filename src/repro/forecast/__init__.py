"""Forecasting substrate: from-scratch ARIMA and day-ahead prediction.

Implements the paper's Section V-B prediction step: seasonal ARIMA models
fitted per VM on the trailing week, forecasting the next day's CPU and
memory utilization.
"""

from .arima import ArimaFit, ArimaModel, ArimaOrder
from .batch import (
    BatchArmaFit,
    batched_arma_fit,
    batched_arma_forecast,
    batched_decomposed_forecast,
)
from .decomposed import DecomposedArimaForecaster
from .holtwinters import HoltWintersForecaster
from .differencing import (
    difference,
    integrate,
    seasonal_difference,
    seasonal_integrate,
)
from .metrics import bias, mae, mape, rmse, smape
from .predictor import (
    DayAheadPredictor,
    PerfectPredictor,
    PrecomputedPredictor,
    default_forecaster_factory,
)
from .seasonal import SeasonalArimaForecaster, SeasonalNaiveForecaster

__all__ = [
    "ArimaFit",
    "ArimaModel",
    "ArimaOrder",
    "BatchArmaFit",
    "batched_arma_fit",
    "batched_arma_forecast",
    "batched_decomposed_forecast",
    "DayAheadPredictor",
    "DecomposedArimaForecaster",
    "HoltWintersForecaster",
    "PerfectPredictor",
    "PrecomputedPredictor",
    "SeasonalArimaForecaster",
    "SeasonalNaiveForecaster",
    "bias",
    "default_forecaster_factory",
    "difference",
    "integrate",
    "mae",
    "mape",
    "rmse",
    "seasonal_difference",
    "seasonal_integrate",
    "smape",
]
