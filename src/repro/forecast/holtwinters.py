"""Holt-Winters (triple exponential smoothing) forecaster.

The classic alternative to ARIMA for seasonal utilization series, included
so forecast-model choice can be studied as an ablation (the paper fixes
ARIMA; `examples/forecast_accuracy.py` and the tests compare all three
families: seasonal-naive, decomposed ARIMA, Holt-Winters).

Additive formulation with level ``l``, trend ``b`` and seasonal indices
``s`` of period ``m``::

    l_t = alpha (y_t - s_{t-m}) + (1 - alpha)(l_{t-1} + b_{t-1})
    b_t = beta  (l_t - l_{t-1}) + (1 - beta) b_{t-1}
    s_t = gamma (y_t - l_t)     + (1 - gamma) s_{t-m}

    yhat_{t+h} = l_t + h b_t + s_{t-m+((h-1) mod m)+1}

Smoothing parameters default to values that suit slowly drifting
diurnal utilization (strong seasonality, weak trend); they can also be
grid-searched with :meth:`HoltWintersForecaster.fit_optimized`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ForecastError
from ..units import SAMPLES_PER_DAY


class HoltWintersForecaster:
    """Additive Holt-Winters smoothing with a daily season.

    Args:
        period: seasonal period in samples.
        alpha: level smoothing in (0, 1].
        beta: trend smoothing in [0, 1].
        gamma: seasonal smoothing in [0, 1].
        damping: trend damping factor in (0, 1]; values below 1 flatten
            the trend over long horizons (recommended for day-ahead use).
    """

    def __init__(
        self,
        period: int = SAMPLES_PER_DAY,
        alpha: float = 0.05,
        beta: float = 0.01,
        gamma: float = 0.40,
        damping: float = 0.90,
    ):
        if period < 1:
            raise ForecastError("period must be >= 1")
        if not (0.0 < alpha <= 1.0):
            raise ForecastError("alpha must be in (0, 1]")
        if not (0.0 <= beta <= 1.0) or not (0.0 <= gamma <= 1.0):
            raise ForecastError("beta and gamma must be in [0, 1]")
        if not (0.0 < damping <= 1.0):
            raise ForecastError("damping must be in (0, 1]")
        self._period = period
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._damping = damping
        self._level: Optional[float] = None
        self._trend: Optional[float] = None
        self._season: Optional[np.ndarray] = None
        self._phase: int = 0
        self._sse: float = 0.0

    # -- properties -----------------------------------------------------------

    @property
    def period(self) -> int:
        """Seasonal period in samples."""
        return self._period

    @property
    def params(self) -> Tuple[float, float, float]:
        """The (alpha, beta, gamma) smoothing parameters."""
        return (self._alpha, self._beta, self._gamma)

    @property
    def sse(self) -> float:
        """In-sample one-step sum of squared errors from the last fit."""
        return self._sse

    # -- fitting --------------------------------------------------------------

    def fit(self, series: np.ndarray) -> "HoltWintersForecaster":
        """Run the smoothing recursions over >= 2 full seasons."""
        y = np.asarray(series, dtype=float)
        m = self._period
        if y.shape[0] < 2 * m:
            raise ForecastError(
                f"need at least two seasons ({2 * m} samples), "
                f"got {y.shape[0]}"
            )
        # Initialization: first-season mean as level, season-over-season
        # drift as trend, first-season deviations as seasonal indices.
        level = float(y[:m].mean())
        trend = float((y[m : 2 * m].mean() - y[:m].mean()) / m)
        season = (y[:m] - level).astype(float)

        sse = 0.0
        for t in range(y.shape[0]):
            s_idx = t % m
            forecast = level + trend + season[s_idx]
            error = y[t] - forecast
            sse += error * error
            new_level = self._alpha * (y[t] - season[s_idx]) + (
                1.0 - self._alpha
            ) * (level + trend)
            trend = (
                self._beta * (new_level - level)
                + (1.0 - self._beta) * trend
            )
            season[s_idx] = (
                self._gamma * (y[t] - new_level)
                + (1.0 - self._gamma) * season[s_idx]
            )
            level = new_level
        self._level = level
        self._trend = trend
        self._season = season
        self._phase = y.shape[0] % m
        self._sse = sse
        return self

    def fit_optimized(
        self,
        series: np.ndarray,
        alphas: Tuple[float, ...] = (0.02, 0.05, 0.15),
        gammas: Tuple[float, ...] = (0.2, 0.4, 0.6),
    ) -> "HoltWintersForecaster":
        """Grid-search (alpha, gamma) by in-sample one-step SSE."""
        best: Optional[Tuple[float, float, float]] = None
        for alpha in alphas:
            for gamma in gammas:
                candidate = HoltWintersForecaster(
                    period=self._period,
                    alpha=alpha,
                    beta=self._beta,
                    gamma=gamma,
                    damping=self._damping,
                )
                candidate.fit(series)
                if best is None or candidate.sse < best[0]:
                    best = (candidate.sse, alpha, gamma)
        assert best is not None
        self._alpha, self._gamma = best[1], best[2]
        return self.fit(series)

    # -- forecasting ------------------------------------------------------------

    def forecast(self, horizon: int) -> np.ndarray:
        """Mean forecast for the next ``horizon`` samples."""
        if self._level is None or self._season is None:
            raise ForecastError("forecaster has not been fitted")
        if horizon < 1:
            raise ForecastError("forecast horizon must be >= 1")
        m = self._period
        out = np.empty(horizon)
        damp = self._damping
        trend_sum = 0.0
        damp_power = 1.0
        for h in range(1, horizon + 1):
            damp_power *= damp
            trend_sum += damp_power
            out[h - 1] = (
                self._level
                + trend_sum * (self._trend or 0.0)
                + self._season[(self._phase + h - 1) % m]
            )
        return out
