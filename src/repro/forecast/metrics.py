"""Forecast accuracy metrics.

Small, dependency-free implementations of the standard point-forecast
error measures, used by the forecast-accuracy experiment and by tests that
assert ARIMA beats the seasonal-naive baseline on the synthetic traces.
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError


def _validate(actual: np.ndarray, predicted: np.ndarray) -> None:
    if actual.shape != predicted.shape:
        raise DomainError(
            f"shape mismatch: actual {actual.shape} vs "
            f"predicted {predicted.shape}"
        )
    if actual.size == 0:
        raise DomainError("empty arrays")


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    _validate(a, p)
    return float(np.mean(np.abs(a - p)))


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    _validate(a, p)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def mape(
    actual: np.ndarray, predicted: np.ndarray, epsilon: float = 1.0e-6
) -> float:
    """Mean absolute percentage error (percent).

    ``epsilon`` guards against division by zero on idle samples.
    """
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    _validate(a, p)
    denom = np.maximum(np.abs(a), epsilon)
    return float(np.mean(np.abs(a - p) / denom) * 100.0)


def smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Symmetric mean absolute percentage error (percent, 0-200)."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    _validate(a, p)
    denom = (np.abs(a) + np.abs(p)) / 2.0
    denom = np.where(denom == 0.0, 1.0, denom)
    return float(np.mean(np.abs(a - p) / denom) * 100.0)


def bias(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean signed error (positive = under-prediction)."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    _validate(a, p)
    return float(np.mean(a - p))
