"""Shared precomputation for the allocation fast paths.

Algorithms 1 and 2 both reason about the same per-VM quantities over and
over: centered patterns (for Pearson correlations), centered norms,
peaks/minima (for feasibility pruning) and raw sums/squared norms (for
Euclidean distances).  The seed implementations recomputed all of them
from scratch on every greedy pick, which made the inner loops quadratic
with a large constant.  :class:`AllocationWorkspace` computes them once
per call — O(n_vms * n_samples) total — so the per-pick work collapses to
O(n_candidates) dot-product bookkeeping.

Two identities make the incremental bookkeeping exact enough to reproduce
the seed plans:

* ``pearson(x, max(S) - S) == -pearson(x, S)``: the complementary pattern
  only negates the centered server aggregate, so the fast paths never
  materialize ``PattCom``;
* ``dot(S - mean(S), x - mean(x)) == dot(S, x - mean(x))``: the centered
  VM pattern sums to ~0, so server aggregates never need re-centering.

The workspace is stateless and read-only after construction; one instance
can be shared across repeated ``allocate_1d``/``allocate_2d`` calls on the
same prediction matrices (e.g. the per-slot sizing sweep).
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError


def validate_vm_order(sequence: np.ndarray, n_vms: int) -> None:
    """Check that ``sequence`` is a permutation of ``0..n_vms-1``.

    Replaces the seed's ``sorted(sequence.tolist()) != list(range(n))``
    check — which materialized Python lists and sorted them on every
    allocation call — with an O(n) ``np.bincount`` validation.

    Raises:
        DomainError: if the sequence is not a permutation of all VM ids.
    """
    if sequence.ndim != 1 or sequence.shape[0] != n_vms:
        raise DomainError("order must be a permutation of all VM ids")
    if n_vms == 0:
        return
    if int(sequence.min()) < 0 or int(sequence.max()) >= n_vms:
        raise DomainError("order must be a permutation of all VM ids")
    if not np.all(np.bincount(sequence, minlength=n_vms) == 1):
        raise DomainError("order must be a permutation of all VM ids")


class AllocationWorkspace:
    """Per-VM precomputed quantities shared by Algorithms 1 and 2.

    Attributes:
        cpu, mem: the prediction matrices, C-contiguous float64,
            shape ``(n_vms, n_samples)``.
        cpu_centered, mem_centered: row-centered patterns.
        cpu_cnorm, mem_cnorm: L2 norms of the centered rows (the Pearson
            denominators).
        cpu_cnorm2, mem_cnorm2: squared centered norms (for incremental
            server-aggregate norm updates).
        cpu_peak, mem_peak, cpu_min, mem_min: per-row extrema (feasibility
            pruning bounds).
        cpu_mean, mem_mean, cpu_sum, mem_sum: per-row means and sums.
        cpu_sq, mem_sq: squared L2 norms of the raw rows (for incremental
            Euclidean distances).
    """

    #: Statistic groups resolved lazily on first access: Algorithm 1 only
    #: touches the CPU correlation stats, so the memory stats and the
    #: extrema/sum stats (Algorithm 2's feasibility bounds) are not
    #: computed until an allocator actually reads them.
    _LAZY_GROUPS = {
        "cpu_extrema": (
            "cpu_peak",
            "cpu_min",
            "cpu_sum",
            "cpu_sq",
        ),
        "mem_corr": (
            "mem_mean",
            "mem_centered",
            "mem_cnorm",
            "mem_cnorm2",
        ),
        "mem_extrema": (
            "mem_peak",
            "mem_min",
            "mem_sum",
            "mem_sq",
        ),
    }

    def __init__(self, pred_cpu: np.ndarray, pred_mem: np.ndarray):
        cpu = np.ascontiguousarray(np.asarray(pred_cpu, dtype=float))
        mem = np.ascontiguousarray(np.asarray(pred_mem, dtype=float))
        if cpu.ndim != 2 or cpu.shape != mem.shape:
            raise DomainError(
                "pred_cpu and pred_mem must be equal-shape 2-D arrays"
            )
        self.cpu = cpu
        self.mem = mem
        self.n_vms, self.n_samples = cpu.shape

        mean = cpu.mean(axis=1)
        centered = cpu - mean[:, None]
        cnorm = np.linalg.norm(centered, axis=1)
        self.cpu_mean = mean
        self.cpu_centered = centered
        self.cpu_cnorm = cnorm
        self.cpu_cnorm2 = cnorm * cnorm

    def shard(self, rows: np.ndarray) -> "AllocationWorkspace":
        """A workspace restricted to ``rows`` (the sharding seam).

        Every statistic is row-local (mean/centered/norm/extrema of one
        VM's own pattern), so slicing the parent's arrays is bitwise
        identical to rebuilding a workspace on the sliced predictions —
        which is what makes per-shard allocation an exact decomposition.
        Eager statistics and any lazy group the parent has already
        materialized are sliced; untouched groups stay lazy in the
        child.

        Raises:
            DomainError: if ``rows`` contains out-of-range indices.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1 or (
            rows.size > 0
            and (int(rows.min()) < 0 or int(rows.max()) >= self.n_vms)
        ):
            raise DomainError("rows must be a 1-D array of valid VM ids")
        child = object.__new__(AllocationWorkspace)
        child.cpu = np.ascontiguousarray(self.cpu[rows])
        child.mem = np.ascontiguousarray(self.mem[rows])
        child.n_vms, child.n_samples = child.cpu.shape
        sliced = ["cpu_mean", "cpu_centered", "cpu_cnorm", "cpu_cnorm2"]
        for attrs in AllocationWorkspace._LAZY_GROUPS.values():
            if attrs[0] in self.__dict__:
                sliced.extend(attrs)
        for name in sliced:
            setattr(child, name, self.__dict__[name][rows])
        return child

    def __getattr__(self, name: str):
        for group, attrs in AllocationWorkspace._LAZY_GROUPS.items():
            if name in attrs:
                self._fill_lazy(group)
                return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _fill_lazy(self, group: str) -> None:
        """Compute one lazy statistic group (same values as the seed)."""
        prefix, kind = group.split("_")
        patt = self.cpu if prefix == "cpu" else self.mem
        if kind == "corr":
            mean = patt.mean(axis=1)
            centered = patt - mean[:, None]
            cnorm = np.linalg.norm(centered, axis=1)
            setattr(self, f"{prefix}_mean", mean)
            setattr(self, f"{prefix}_centered", centered)
            setattr(self, f"{prefix}_cnorm", cnorm)
            setattr(self, f"{prefix}_cnorm2", cnorm * cnorm)
        else:
            setattr(self, f"{prefix}_peak", patt.max(axis=1))
            setattr(self, f"{prefix}_min", patt.min(axis=1))
            setattr(self, f"{prefix}_sum", patt.sum(axis=1))
            setattr(self, f"{prefix}_sq", np.einsum("ij,ij->i", patt, patt))
