"""Server-count sizing and optimal-frequency search (paper Eq. 1 + Sec V-B).

At the beginning of each slot EPACT determines, from the predicted
patterns, how many servers to turn on:

* from the **CPU** perspective, enough servers that each can run at the
  energy-optimal frequency ``F_NTC_opt``::

      N_cpu = ceil( max_n(sum_k U_cpu[k,n]) * Fmax / (F_opt * 100) )

* from the **memory** perspective, as few servers as capacity allows::

      N_mem = ceil( max_n(sum_k U_mem[k,n]) / 100 )

If ``N_cpu > N_mem`` (CPU-dominant), every server count between the two is
evaluated against the worst-case data-center power and the best
``(N, F_opt)`` pair wins (case 1, Algorithm 1).  Otherwise memory
dominates: ``N = N_mem`` and the frequency follows from spreading the CPU
demand over those servers (case 2, Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from ..power.server_power import ServerPowerModel

_EPS = 1.0e-9


@dataclass(frozen=True)
class SizingResult:
    """Outcome of the per-slot sizing step.

    Attributes:
        case: ``"cpu"`` (case 1, CPU-dominant) or ``"mem"`` (case 2).
        n_servers: number of servers to turn on.
        f_opt_ghz: the slot's target frequency (an OPP).
        cap_cpu_pct: CPU packing cap, ``100 * f_opt / Fmax``.
        cap_mem_pct: memory packing cap (100%: pack until DRAM is full).
        n_cpu: the Eq. 1 CPU-perspective server count.
        n_mem: the Eq. 1 memory-perspective server count.
    """

    case: str
    n_servers: int
    f_opt_ghz: float
    cap_cpu_pct: float
    cap_mem_pct: float
    n_cpu: int
    n_mem: int


def peak_aggregate_pct(pred: np.ndarray) -> float:
    """``max_n(sum_k U[k, n])``: peak aggregate utilization in percent."""
    if pred.ndim != 2 or pred.size == 0:
        raise DomainError("predictions must be a non-empty 2-D array")
    return float(pred.sum(axis=0).max())


def n_servers_cpu(
    pred_cpu: np.ndarray,
    f_max_ghz: float,
    f_opt_ghz: float,
    peak_pct: float | None = None,
) -> int:
    """Eq. 1 left: CPU-perspective server count at the optimal frequency.

    ``peak_pct`` lets callers that already computed the peak aggregate
    (e.g. :func:`size_slot`, which also needs it for the demand) skip
    the second reduction.
    """
    if f_opt_ghz <= 0.0 or f_max_ghz <= 0.0:
        raise DomainError("frequencies must be positive")
    peak = (
        peak_pct if peak_pct is not None else peak_aggregate_pct(pred_cpu)
    )
    return max(1, math.ceil(peak * f_max_ghz / (f_opt_ghz * 100.0) - _EPS))


def n_servers_mem(pred_mem: np.ndarray, cap_mem_pct: float = 100.0) -> int:
    """Eq. 1 right: memory-perspective server count (consolidate to cap).

    ``cap_mem_pct`` below 100 leaves headroom against memory
    mispredictions — unlike CPU, memory has no DVFS-like compensation, so
    the paper's "we do not fill up the servers to their maximum capacity"
    applies directly here.
    """
    if not (0.0 < cap_mem_pct <= 100.0):
        raise DomainError("cap_mem_pct must be in (0, 100]")
    peak = peak_aggregate_pct(pred_mem)
    return max(1, math.ceil(peak / cap_mem_pct - _EPS))


def _worst_case_power_w(
    power_model: ServerPowerModel, n_servers: int, freq_ghz: float,
    demand_ghz: float,
) -> float:
    """Worst-case power of ``n_servers`` at ``freq_ghz`` serving a demand.

    All servers are on at the given frequency with the demand spread
    evenly (the aggregate dynamic power is demand-proportional, so even
    spreading equals any packing with the same server count).
    """
    busy = min(1.0, demand_ghz / (n_servers * freq_ghz))
    return n_servers * power_model.power_w(freq_ghz, busy_fraction=busy)


def size_slot(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    power_model: ServerPowerModel,
    max_servers: int,
    f_ntc_opt_ghz: float | None = None,
    cap_mem_pct: float = 100.0,
    fast: bool = True,
) -> SizingResult:
    """Full per-slot sizing: Eq. 1, case split, and the case-1 search.

    Args:
        pred_cpu: predicted CPU patterns, ``(n_vms, n_samples)`` percent.
        pred_mem: predicted memory patterns, same shape.
        power_model: per-server power model (provides OPPs and power).
        max_servers: physical fleet size (both counts are clamped to it).
        f_ntc_opt_ghz: the platform's energy-optimal frequency; computed
            from the power model when omitted.
        cap_mem_pct: memory packing cap (headroom below 100% protects
            against memory mispredictions).
        fast: evaluate the case-1 sweep against the cached per-OPP
            tables (default); ``False`` keeps the scalar reference loop
            as the oracle.
    """
    spec = power_model.spec
    f_max = spec.f_max_ghz
    f_opt_platform = (
        f_ntc_opt_ghz
        if f_ntc_opt_ghz is not None
        else power_model.optimal_frequency_ghz()
    )
    peak_cpu = peak_aggregate_pct(pred_cpu)
    n_cpu = min(
        n_servers_cpu(pred_cpu, f_max, f_opt_platform, peak_pct=peak_cpu),
        max_servers,
    )
    n_mem = min(n_servers_mem(pred_mem, cap_mem_pct), max_servers)
    demand_ghz = peak_cpu * f_max / 100.0

    if n_cpu > n_mem:
        n_best, f_best = _search_case1(
            power_model, demand_ghz, n_mem, n_cpu, fast=fast
        )
        return SizingResult(
            case="cpu",
            n_servers=n_best,
            f_opt_ghz=f_best,
            cap_cpu_pct=100.0 * f_best / f_max,
            cap_mem_pct=cap_mem_pct,
            n_cpu=n_cpu,
            n_mem=n_mem,
        )

    # Case 2: memory dominates; spread CPU demand over the N_mem servers.
    f_required = demand_ghz / n_mem
    f_required = min(f_required, f_max)
    f_opt = (
        spec.opps.ceil(f_required).freq_ghz
        if f_required >= spec.opps.f_min_ghz
        else spec.opps.f_min_ghz
    )
    return SizingResult(
        case="mem",
        n_servers=n_mem,
        f_opt_ghz=f_opt,
        cap_cpu_pct=100.0 * f_opt / f_max,
        cap_mem_pct=cap_mem_pct,
        n_cpu=n_cpu,
        n_mem=n_mem,
    )


def _search_case1(
    power_model: ServerPowerModel,
    demand_ghz: float,
    n_mem: int,
    n_cpu: int,
    fast: bool = True,
) -> tuple[int, float]:
    """Exhaustive (N, F) exploration of case 1 (paper Section V-B-1).

    For each candidate server count between ``N_mem`` and ``N_cpu`` the
    frequency is the smallest OPP covering the spread demand; the pair with
    the lowest worst-case data-center power wins.

    The default fast path evaluates the whole candidate sweep as one
    array expression against the per-OPP coefficient tables of
    :class:`~repro.dcsim.power_tables.VectorizedServerPower` (the same
    tables the engine accounts power with) instead of one scalar
    power-model call per candidate; ``fast=False`` keeps the scalar
    reference loop.  The epsilon-hysteresis winner selection is shared,
    so both paths pick the same ``(N, F)`` pair.
    """
    if not fast:
        return _search_case1_reference(
            power_model, demand_ghz, n_mem, n_cpu
        )
    spec = power_model.spec
    freqs_tab = np.asarray(spec.opps.frequencies_ghz, dtype=float)
    f_max = spec.f_max_ghz
    ns = np.arange(max(1, n_mem), max(1, n_cpu) + 1, dtype=float)
    f_required = demand_ghz / ns
    valid = f_required <= f_max + _EPS
    if not valid.any():
        # Demand exceeds even Fmax packing on n_cpu servers; saturate.
        return max(1, n_cpu), f_max
    ns = ns[valid]
    f_required = f_required[valid]
    # Ceil quantization: bisect_left == searchsorted('left'); demands at
    # or below the table minimum land on index 0, like OppTable.ceil.
    idx = np.searchsorted(
        freqs_tab, np.minimum(f_required, f_max), side="left"
    )
    freqs = freqs_tab[idx]
    busy = np.minimum(1.0, demand_ghz / (ns * freqs))

    from ..dcsim.power_tables import cached_tables

    tables = cached_tables(power_model)
    powers = ns * tables.power_w(
        idx, busy, np.zeros_like(busy), np.zeros_like(busy)
    )
    win = _select_case1_winner(powers)
    return int(ns[win]), float(freqs[win])


def _select_case1_winner(powers: np.ndarray) -> int:
    """Index of the sweep winner under the epsilon-hysteresis rule.

    Mirrors the reference loop: a later candidate only displaces the
    incumbent when it improves the worst-case power by more than
    ``_EPS`` — near-ties keep the smaller server count.
    """
    best = 0
    for j in range(1, powers.shape[0]):
        if powers[j] < powers[best] - _EPS:
            best = j
    return best


@dataclass(frozen=True)
class FleetSizingResult:
    """Per-pool sizing of one slot over a heterogeneous fleet.

    Attributes:
        pool_sizings: one :class:`SizingResult` per pool, ``None`` for
            pools the slot's demand split left empty.
        assignments: per-pool VM index arrays (ascending, disjoint,
            covering every VM) — the demand split the sizings were
            computed against.
    """

    pool_sizings: Tuple[Optional[SizingResult], ...]
    assignments: Tuple[np.ndarray, ...]

    @property
    def total_servers(self) -> int:
        """Servers turned on across all pools."""
        return sum(
            sizing.n_servers
            for sizing in self.pool_sizings
            if sizing is not None
        )

    @property
    def case(self) -> str:
        """The per-pool case branches joined pool-major (``cpu+mem``)."""
        return "+".join(
            sizing.case
            for sizing in self.pool_sizings
            if sizing is not None
        )


def size_fleet_slot(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    fleet,
    assignments: Sequence[np.ndarray],
    f_opt_ghz: Optional[Sequence[Optional[float]]] = None,
    cap_mem_pct: float = 100.0,
    fast: bool = True,
) -> FleetSizingResult:
    """Platform-aware sizing: Eq. 1 per pool over a demand split.

    Each pool is sized independently — against its *own* power model,
    OPP table and cached :class:`~repro.dcsim.power_tables
    .VectorizedServerPower` coefficients — for the VM subset the split
    assigned to it.  The per-pool case-1 sweep inherits
    :func:`_search_case1`'s fast-path/oracle structure; ``fast=False``
    routes every pool through the scalar reference loop.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        fleet: the :class:`~repro.core.types.FleetSpec`.
        assignments: per-pool VM index arrays (e.g. from
            :func:`repro.core.fleet.split_fleet_vms`).
        f_opt_ghz: optional per-pool energy-optimal frequency overrides.
        cap_mem_pct: memory packing cap shared by all pools.
        fast: forwarded to the per-pool case-1 sweep.
    """
    if len(assignments) != fleet.n_pools:
        raise DomainError(
            f"assignments must cover all {fleet.n_pools} pools"
        )
    sizings: list[Optional[SizingResult]] = []
    for m, pool in enumerate(fleet.pools):
        idx = np.asarray(assignments[m], dtype=int)
        if idx.size == 0:
            sizings.append(None)
            continue
        f_opt = f_opt_ghz[m] if f_opt_ghz is not None else None
        sizings.append(
            size_slot(
                pred_cpu[idx],
                pred_mem[idx],
                pool.power_model,
                max_servers=pool.n_servers,
                f_ntc_opt_ghz=f_opt,
                cap_mem_pct=cap_mem_pct,
                fast=fast,
            )
        )
    return FleetSizingResult(
        pool_sizings=tuple(sizings),
        assignments=tuple(
            np.asarray(idx, dtype=int) for idx in assignments
        ),
    )


def _search_case1_reference(
    power_model: ServerPowerModel,
    demand_ghz: float,
    n_mem: int,
    n_cpu: int,
) -> tuple[int, float]:
    """The seed implementation of :func:`_search_case1` (oracle)."""
    spec = power_model.spec
    opps = spec.opps
    best: tuple[float, int, float] | None = None
    for n in range(max(1, n_mem), max(1, n_cpu) + 1):
        f_required = demand_ghz / n
        if f_required > spec.f_max_ghz + _EPS:
            continue
        freq = (
            opps.ceil(min(f_required, spec.f_max_ghz)).freq_ghz
            if f_required >= opps.f_min_ghz
            else opps.f_min_ghz
        )
        power = _worst_case_power_w(power_model, n, freq, demand_ghz)
        if best is None or power < best[0] - _EPS:
            best = (power, n, freq)
    if best is None:
        # Demand exceeds even Fmax packing on n_cpu servers; saturate.
        return max(1, n_cpu), spec.f_max_ghz
    return best[1], best[2]
