"""EPACT: Energy Proportionality-Aware dynamiC allocaTion (the paper's
primary contribution, Section V-B).

Per slot, EPACT:

1. predicts per-VM CPU/memory patterns (done upstream, shared with the
   baselines);
2. sizes the fleet from both the CPU and the memory perspective (Eq. 1)
   and picks the case:

   * **case 1 (CPU-dominant, N_cpu > N_mem)** — exhaustively explores the
     server counts between the two, picks the ``(N, F_opt)`` with minimum
     worst-case power, and packs VMs with the 1D correlation-aware FFD of
     Algorithm 1 under the cap ``100 * F_opt / Fmax``;
   * **case 2 (memory-dominant)** — turns on ``N_mem`` servers and places
     each VM by the 2D merit function of Algorithm 2 (Eq. 2);

3. leaves frequency to the online per-sample governor during the slot:
   unlike the fixed-cap baselines, EPACT servers can ride up to ``Fmax``
   to absorb mispredictions — which is why its violation cap is the full
   100% capacity.
"""

from __future__ import annotations

from typing import Optional

from .alloc1d import allocate_1d
from .alloc2d import allocate_2d
from .sizing import size_slot
from .types import Allocation, AllocationContext, AllocationPolicy


class EpactPolicy(AllocationPolicy):
    """The EPACT allocation policy.

    Args:
        f_ntc_opt_ghz: the platform's energy-optimal frequency used by the
            Eq. 1 CPU sizing.  Computed from the power model (minimum of
            worst-case power per GHz) when omitted — ≈1.9 GHz for the NTC
            server.
        mem_headroom_pct: memory headroom kept per server.  CPU
            mispredictions are absorbed by raising frequency; memory has
            no such lever, so EPACT's "we do not fill up the servers to
            their maximum capacity" is realized by packing memory only to
            ``100 - mem_headroom_pct`` percent.
    """

    name = "EPACT"

    def __init__(
        self,
        f_ntc_opt_ghz: Optional[float] = None,
        mem_headroom_pct: float = 10.0,
    ):
        if not (0.0 <= mem_headroom_pct < 100.0):
            raise ValueError("mem_headroom_pct must be in [0, 100)")
        self._f_ntc_opt = f_ntc_opt_ghz
        self._mem_cap_pct = 100.0 - mem_headroom_pct
        self._cached_f_opt: Optional[float] = None

    def _platform_f_opt(self, ctx: AllocationContext) -> float:
        if self._f_ntc_opt is not None:
            return self._f_ntc_opt
        if self._cached_f_opt is None:
            self._cached_f_opt = ctx.power_model.optimal_frequency_ghz()
        return self._cached_f_opt

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Size, branch, and pack one slot (see module docstring)."""
        sizing = size_slot(
            ctx.pred_cpu,
            ctx.pred_mem,
            ctx.power_model,
            max_servers=ctx.max_servers,
            f_ntc_opt_ghz=self._platform_f_opt(ctx),
            cap_mem_pct=self._mem_cap_pct,
        )
        if sizing.case == "cpu":
            plans, forced = allocate_1d(
                ctx.pred_cpu,
                ctx.pred_mem,
                cap_cpu_pct=sizing.cap_cpu_pct,
                cap_mem_pct=sizing.cap_mem_pct,
                max_servers=ctx.max_servers,
            )
        else:
            plans, forced = allocate_2d(
                ctx.pred_cpu,
                ctx.pred_mem,
                n_servers=sizing.n_servers,
                cap_cpu_pct=sizing.cap_cpu_pct,
                cap_mem_pct=sizing.cap_mem_pct,
                max_servers=ctx.max_servers,
            )
        for plan in plans:
            plan.planned_freq_ghz = sizing.f_opt_ghz
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=True,
            violation_cap_pct=100.0,
            case=sizing.case,
            f_opt_ghz=sizing.f_opt_ghz,
            forced_placements=forced,
        )
