"""Pearson correlation and complementary load patterns.

Both EPACT and the COAT baseline reason about the *shape* of utilization
patterns over the samples of a slot:

* EPACT looks for VMs whose pattern is **similar to the complementary
  pattern** of a server (``max(Patt) - Patt``): such a VM peaks where the
  server's current load dips, flattening the aggregate (Algorithm 1 line
  8-12, Algorithm 2 lines 5-6);
* COAT looks for servers whose current pattern has **low correlation**
  with the VM, separating CPU-load-correlated VMs.

Degenerate patterns (constant vectors) have undefined Pearson correlation;
we define it as 0 ("no shape information"), which leaves the policies'
tie-breaking to their secondary criteria.
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError

_EPS = 1.0e-12


def complementary_pattern(pattern: np.ndarray) -> np.ndarray:
    """The paper's ``PattCom = max(Patt) - Patt`` (per-sample headroom).

    Raises:
        DomainError: for empty or non-1-D input.
    """
    p = np.asarray(pattern, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise DomainError("pattern must be a non-empty 1-D array")
    return p.max() - p


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two equal-length vectors.

    Returns 0.0 when either vector is constant (undefined correlation).

    Raises:
        DomainError: on shape mismatch or empty input.
    """
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise DomainError("inputs must be equal-length non-empty 1-D arrays")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = np.linalg.norm(a_centered) * np.linalg.norm(b_centered)
    if denom < _EPS:
        return 0.0
    return float(np.dot(a_centered, b_centered) / denom)


def pearson_many(candidates: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pearson correlation of each row of ``candidates`` against ``target``.

    Vectorized form used in the allocation inner loops; rows (or a
    constant target) with zero variance yield correlation 0.

    Args:
        candidates: array of shape ``(n, k)``.
        target: vector of length ``k``.

    Returns:
        Array of ``n`` correlations in ``[-1, 1]``.
    """
    c = np.asarray(candidates, dtype=float)
    t = np.asarray(target, dtype=float)
    if c.ndim != 2 or t.ndim != 1 or c.shape[1] != t.shape[0]:
        raise DomainError(
            f"expected (n, k) candidates and (k,) target, got "
            f"{c.shape} and {t.shape}"
        )
    t_centered = t - t.mean()
    t_norm = np.linalg.norm(t_centered)
    if t_norm < _EPS:
        return np.zeros(c.shape[0])
    c_centered = c - c.mean(axis=1, keepdims=True)
    c_norms = np.linalg.norm(c_centered, axis=1)
    safe = np.where(c_norms < _EPS, 1.0, c_norms)
    corr = (c_centered @ t_centered) / (safe * t_norm)
    corr[c_norms < _EPS] = 0.0
    return corr


def euclidean_distance_many(
    candidates: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Euclidean distance of each row of ``candidates`` from ``target``.

    The ``Dist`` term of the paper's Eq. 2: how close a VM's pattern is to
    a server's remaining-capacity pattern.
    """
    c = np.asarray(candidates, dtype=float)
    t = np.asarray(target, dtype=float)
    if c.ndim != 2 or t.ndim != 1 or c.shape[1] != t.shape[0]:
        raise DomainError(
            f"expected (n, k) candidates and (k,) target, got "
            f"{c.shape} and {t.shape}"
        )
    return np.linalg.norm(c - t[None, :], axis=1)
