"""The paper's primary contribution: the EPACT allocation framework.

Contains the shared policy types, the correlation machinery, the Eq. 1
sizing step, Algorithms 1 and 2, the per-sample DVFS governor, and the
:class:`EpactPolicy` that ties them together.
"""

from .alloc1d import allocate_1d, allocate_1d_pools, ffd_order
from .alloc2d import allocate_2d, allocate_2d_pools, merit_scores
from .correlation import (
    complementary_pattern,
    euclidean_distance_many,
    pearson,
    pearson_many,
)
from .epact import EpactPolicy
from .fleet import (
    FleetEpactPolicy,
    allocate_fleet_slot,
    split_fleet_vms,
)
from .governor import DvfsGovernor
from .online import CloudAllocationContext, OnlinePolicy
from .sizing import (
    FleetSizingResult,
    SizingResult,
    n_servers_cpu,
    n_servers_mem,
    peak_aggregate_pct,
    size_fleet_slot,
    size_slot,
)
from .types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    FleetSpec,
    PoolSpec,
    ServerPlan,
    force_place_remaining,
)
from .workspace import AllocationWorkspace, validate_vm_order

__all__ = [
    "Allocation",
    "AllocationContext",
    "AllocationPolicy",
    "AllocationWorkspace",
    "validate_vm_order",
    "CloudAllocationContext",
    "DvfsGovernor",
    "EpactPolicy",
    "FleetEpactPolicy",
    "FleetSizingResult",
    "FleetSpec",
    "OnlinePolicy",
    "PoolSpec",
    "ServerPlan",
    "SizingResult",
    "allocate_1d",
    "allocate_1d_pools",
    "allocate_2d",
    "allocate_2d_pools",
    "allocate_fleet_slot",
    "complementary_pattern",
    "euclidean_distance_many",
    "ffd_order",
    "force_place_remaining",
    "merit_scores",
    "n_servers_cpu",
    "n_servers_mem",
    "pearson",
    "pearson_many",
    "peak_aggregate_pct",
    "size_fleet_slot",
    "size_slot",
    "split_fleet_vms",
]
