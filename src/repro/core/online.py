"""Online allocation types: cloud context and stateful policy ABC.

The fixed-population protocol hands every policy the *entire* fleet each
slot.  Under churn the population changes between slots, so online
policies additionally need:

* **identity** — which global VM each row of the context refers to, so
  placement state (who runs where) survives across calls even as the
  row order shifts with arrivals/departures;
* **history** — the utilization actually observed during the previous
  slot, the signal reactive threshold detectors trigger on (day-ahead
  forecasts remain available for forecast-assisted detection).

:class:`CloudAllocationContext` carries both on top of the standard
:class:`~repro.core.types.AllocationContext`; day-ahead policies ignore
the extras and keep working unchanged — that is what makes the paper's
EPACT directly comparable with the online policies in the cloud engine.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .types import Allocation, AllocationContext, AllocationPolicy


@dataclass(frozen=True)
class CloudAllocationContext(AllocationContext):
    """Per-window inputs of an online (churn-aware) allocation.

    The prediction matrices cover only the VMs active during the window,
    row-aligned with ``vm_ids``.  An :class:`Allocation` produced from
    this context uses *local* row indices (``0 .. len(vm_ids) - 1``);
    the cloud engine maps them back to global ids.

    Attributes:
        vm_ids: sorted global dataset ids of the active VMs.
        last_cpu: CPU utilization observed during the previous slot
            (``(n_vms, 12)``), rows ``NaN`` for VMs without history
            (fresh arrivals, or the first simulated slot); ``None`` when
            the engine supplies no history at all.
        last_mem: memory counterpart of ``last_cpu``.
    """

    vm_ids: np.ndarray = field(default_factory=lambda: np.empty(0, int))
    last_cpu: Optional[np.ndarray] = None
    last_mem: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.vm_ids.shape != (self.pred_cpu.shape[0],):
            raise ConfigurationError(
                "vm_ids must carry one global id per context row"
            )


class OnlinePolicy(AllocationPolicy):
    """A stateful allocation policy driven by the online cloud engine.

    Online policies keep their placement between calls (the defining
    difference from the day-ahead policies, which re-pack from scratch):
    ``allocate`` is called once per window with a
    :class:`CloudAllocationContext` and must place every active VM.

    The engine calls :meth:`reset` at the start of every simulation so a
    policy instance can be reused across runs deterministically.
    """

    reallocation_period_slots = 1

    @abstractmethod
    def reset(self) -> None:
        """Drop all placement state (start of a fresh simulation)."""

    @abstractmethod
    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Place every VM of the window (``ctx`` is a cloud context)."""

    @staticmethod
    def require_cloud_context(
        ctx: AllocationContext,
    ) -> CloudAllocationContext:
        """Narrow the context, with a helpful error outside the cloud."""
        if not isinstance(ctx, CloudAllocationContext):
            raise ConfigurationError(
                "online policies need the cloud engine "
                "(repro.dcsim.CloudSimulation); the fixed-population "
                "DataCenterSimulation provides no VM identity"
            )
        return ctx
