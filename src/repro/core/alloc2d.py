"""EPACT's Algorithm 2: 2D merit-function allocation (paper Eq. 2).

Used in the memory-dominant case (Section V-B-2).  The server count is
fixed at ``N_mem``; for each VM the best server maximizes the merit::

    M_i_j = w_cpu * phi_cpu / Dist_cpu + w_mem * phi_mem / Dist_mem

where, per resource,

* ``phi`` is the Pearson correlation between the VM's pattern and the
  server's complementary pattern (``max(S) - S``): shape fit;
* ``Dist`` is the Euclidean distance between the VM's pattern and the
  server's *remaining capacity* pattern (``Cap - S``): closeness to
  filling the server exactly;
* the weights ``w = Cap / (Cap_cpu + Cap_mem)`` balance the two resources
  by their configured caps.

A VM only considers servers with room at every sample of the slot
(``max(U + S) <= Cap`` for both resources).  When no server fits, the VM is
force-placed on the least-loaded server (physical data centers cannot
refuse admitted VMs) and reported.

Two implementations share this contract:

* the **fast path** (default) keeps per-server aggregates in preallocated
  arrays and maintains sums, squared norms and centered norms
  incrementally.  Feasibility is pruned with peak/min bounds evaluated
  for whole blocks of VMs at once (exact per-sample checks only run
  inside the undecided band and for servers modified within the block)
  and folded into **position-indexed penalties** — 0 for scoreable
  servers, -inf for unfit ones and redundant empties — so candidate
  assembly is one add + ``flatnonzero``/``argmax`` instead of boolean
  masks and sorted inserts (the same treatment ``allocate_1d`` got).
  Eq. 2 is evaluated only over fitting non-empty servers — all
  empty servers tie at merit exactly 0, so one representative stands in
  for them — using ``pearson(U, max(S)-S) == -pearson(U, S)`` and
  ``Dist^2 = |Cap - U|^2 - 2 (Cap * sum(S) - dot(S, U)) + |S|^2``;
* the **reference path** (``fast=False``) is the seed's direct loop, kept
  as the equivalence oracle.  Merit terms are accumulated in a different
  order on the fast path, so results can differ at float rounding
  granularity when two servers' merits tie to ~1e-12 — see
  ``tests/test_fast_path_equivalence.py``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .alloc1d import run_allocator_pools
from .correlation import euclidean_distance_many, pearson_many
from .types import ServerPlan, force_place_remaining
from .workspace import AllocationWorkspace, validate_vm_order

_EPS = 1.0e-9
_DIST_FLOOR = 1.0e-6
# Matches repro.core.correlation._EPS (zero-variance Pearson cutoff).
_CORR_EPS = 1.0e-12
# Feasibility band: servers whose peak bounds clear the cap by more than
# this slack skip the exact per-sample check (the bounds are ~1 ulp tight,
# the slack keeps the pruning bit-equivalent to the exact check).
_BAND_SLACK = 1.0e-6
# VMs per speculative batch in the fast path (see _allocate_2d_fast).
_BLOCK = 48


def merit_scores(
    vm_cpu: np.ndarray,
    vm_mem: np.ndarray,
    served_cpu: np.ndarray,
    served_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
) -> np.ndarray:
    """Eq. 2 merit of one VM against each candidate server.

    Args:
        vm_cpu: the VM's CPU pattern (``n_samples``).
        vm_mem: the VM's memory pattern.
        served_cpu: candidate servers' aggregate CPU patterns
            ``(n_servers, n_samples)``.
        served_mem: candidate servers' aggregate memory patterns.
        cap_cpu_pct: CPU cap per server.
        cap_mem_pct: memory cap per server.

    Returns:
        Merit ``M`` per candidate server (higher is better).
    """
    w_cpu = cap_cpu_pct / (cap_cpu_pct + cap_mem_pct)
    w_mem = cap_mem_pct / (cap_cpu_pct + cap_mem_pct)

    patt_com_cpu = served_cpu.max(axis=1, keepdims=True) - served_cpu
    patt_com_mem = served_mem.max(axis=1, keepdims=True) - served_mem
    phi_cpu = _rowwise_pearson(patt_com_cpu, vm_cpu)
    phi_mem = _rowwise_pearson(patt_com_mem, vm_mem)

    rem_cpu = cap_cpu_pct - served_cpu
    rem_mem = cap_mem_pct - served_mem
    dist_cpu = np.maximum(
        euclidean_distance_many(rem_cpu, vm_cpu), _DIST_FLOOR
    )
    dist_mem = np.maximum(
        euclidean_distance_many(rem_mem, vm_mem), _DIST_FLOOR
    )
    return w_cpu * phi_cpu / dist_cpu + w_mem * phi_mem / dist_mem


def _rowwise_pearson(rows: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pearson of each row against the target (rows vary, target fixed)."""
    return pearson_many(rows, target)


def allocate_2d(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    n_servers: int,
    cap_cpu_pct: float,
    cap_mem_pct: float = 100.0,
    max_servers: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    fast: bool = True,
    workspace: Optional[AllocationWorkspace] = None,
) -> Tuple[List[ServerPlan], int]:
    """Run Algorithm 2; returns server plans and forced-placement count.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        n_servers: initial number of turned-on servers (``N_mem``).
        cap_cpu_pct: per-server CPU cap (``100 * F_opt / Fmax``).
        cap_mem_pct: per-server memory cap.
        max_servers: fleet-size bound.  ``N_mem`` assumes perfect packing;
            real bin packing fragments, so additional servers are opened
            (up to this bound) when a VM fits nowhere — force placement
            only happens once the fleet is exhausted.
        order: VM visiting order; the paper visits ``i = 1..N_VM``
            (natural order), which is the default.
        fast: use the incremental fast path (default); ``False`` runs the
            seed reference loop.
        workspace: optional precomputed
            :class:`~repro.core.workspace.AllocationWorkspace` for
            ``(pred_cpu, pred_mem)``, reusable across calls.
    """
    if n_servers < 1:
        raise DomainError("n_servers must be >= 1")
    if not (0.0 < cap_cpu_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_cpu_pct must be in (0, 100], got {cap_cpu_pct}")
    if not (0.0 < cap_mem_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_mem_pct must be in (0, 100], got {cap_mem_pct}")

    n_vms, _ = pred_cpu.shape
    sequence = (
        np.asarray(list(order), dtype=int)
        if order is not None
        else np.arange(n_vms)
    )
    validate_vm_order(sequence, n_vms)
    fleet_bound = max_servers if max_servers is not None else n_servers
    fleet_bound = max(fleet_bound, n_servers)
    if fast:
        return _allocate_2d_fast(
            pred_cpu,
            pred_mem,
            n_servers,
            cap_cpu_pct,
            cap_mem_pct,
            fleet_bound,
            sequence,
            workspace,
        )
    return _allocate_2d_reference(
        pred_cpu,
        pred_mem,
        n_servers,
        cap_cpu_pct,
        cap_mem_pct,
        fleet_bound,
        sequence,
    )


def _allocate_2d_fast(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    n_servers: int,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    fleet_bound: int,
    sequence: np.ndarray,
    workspace: Optional[AllocationWorkspace],
) -> Tuple[List[ServerPlan], int]:
    """Incremental Algorithm 2 (see module docstring).

    Structure: feasibility *bounds* are precomputed for blocks of VMs in
    a few large ufuncs (each placement mutates exactly one server, so
    block-entry bounds stay valid for every unmodified server and only
    the handful of in-block modified servers are re-checked per VM).
    The Eq. 2 merit is then evaluated only over the servers that fit,
    from O(1)-per-server incremental state — matching the reference,
    which also scores fitting servers only.  Under tight packing (the
    memory-dominant regime this algorithm serves) the fitting set is a
    small fraction of the fleet, making each pick nearly fleet-size
    independent.
    """
    ws = (
        workspace
        if workspace is not None
        else AllocationWorkspace(pred_cpu, pred_mem)
    )
    n_vms, k = ws.cpu.shape
    two_k = 2 * k
    caps2 = np.array([cap_cpu_pct, cap_mem_pct])
    capscol = caps2[:, None]
    weights2 = caps2 / (cap_cpu_pct + cap_mem_pct)

    # Per-VM quantities stacked resource-first (0 = CPU, 1 = memory).
    patt = np.stack([ws.cpu, ws.mem], axis=1)  # (n_vms, 2, k)
    patt_cat = patt.reshape(n_vms, two_k)
    cent = np.stack([ws.cpu_centered, ws.mem_centered], axis=1)
    v_cnorm = np.column_stack([ws.cpu_cnorm, ws.mem_cnorm])
    # -w_r / |U - mean(U)| (zero for shapeless VM patterns): folds the
    # Pearson sign, the Eq. 2 weight and the target norm into one per-VM
    # factor so the merit kernel needs only two multiplies.
    dead_t = v_cnorm < _CORR_EPS
    vw = np.where(
        dead_t, 0.0, -weights2[None, :] / np.where(dead_t, 1.0, v_cnorm)
    )[:, :, None]
    v_mean = np.column_stack([ws.cpu_mean, ws.mem_mean])
    k2 = (2.0 * v_mean)[:, :, None]
    rem0 = capscol[None] - patt
    # |Cap - U|^2 per VM, the constant term of the incremental distances.
    a2 = np.einsum("irj,irj->ir", rem0, rem0)[:, :, None]
    v_peak = np.column_stack([ws.cpu_peak, ws.mem_peak])
    v_min = np.column_stack([ws.cpu_min, ws.mem_min])
    # Feasibility bounds: for any reals,
    #   max(peak(S)+min(U), min(S)+peak(U)) <= peak(S+U)
    #                                       <= peak(S)+peak(U),
    # so one 6-row comparison classifies every server as surely-fitting,
    # surely-not, or in the undecided band needing the exact per-sample
    # check.  Rows: [peak+peak vs tight cap] x2, [peak+min vs loose] x2,
    # [min+peak vs loose] x2.
    off6 = np.concatenate([v_peak, v_min, v_peak], axis=1)[:, :, None]
    loose = capscol + (_EPS + _BAND_SLACK)
    thr6 = np.concatenate([capscol - _BAND_SLACK, loose, loose], axis=0)

    plans = [
        ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        for _ in range(n_servers)
    ]
    # Preallocated per-server state (grows logically via n_act):
    #   served_cat — aggregate patterns, CPU and memory concatenated;
    #   ssum/ssq   — aggregate sums and squared raw norms;
    #   cnorm2     — squared centered norms; inv_snorm — 1/sqrt of it
    #                (0 for shapeless aggregates = zero Pearson);
    #   g          — ssq - 2*cap*ssum, the server part of Dist^2;
    #   bounds6    — [peak_c, peak_m, peak_c, peak_m, min_c, min_m].
    capacity = max(fleet_bound, n_servers)
    served_cat = np.zeros((capacity, two_k))
    ssq = np.zeros((2, capacity))
    cnorm2 = np.zeros((2, capacity))
    # Merit-kernel state, consolidated so the gather branch copies one
    # array: rows [inv_snorm_c, inv_snorm_m, g_c, g_m, ssum_c, ssum_m].
    mstate = np.zeros((6, capacity))
    inv_snorm = mstate[0:2]
    g = mstate[2:4]
    ssum = mstate[4:6]
    bounds6 = np.zeros((6, capacity))
    is_mod = np.zeros(capacity, dtype=bool)
    # Empty servers all carry identical (zero) state: their Eq. 2 merit
    # is exactly 0 for every VM and they fit or reject a VM identically.
    # Only the lowest-indexed empty server therefore ever needs scoring —
    # `empty_ptr` tracks it, and the merit kernel runs on the fitting
    # non-empty servers plus that one representative.
    nonempty = np.zeros(capacity, dtype=bool)
    empty_ptr = 0
    # Position-indexed scoreability penalty (the treatment allocate_1d's
    # fast path got): 0 for servers the merit kernel may pick (non-empty
    # or the representative empty), -inf for the redundant empties.  The
    # per-VM feasibility penalty is added on top, so one argmax replaces
    # the boolean mask / searchsorted-insert candidate assembly.
    empty_pen = np.full(capacity, -np.inf)
    empty_pen[0] = 0.0
    n_act = n_servers
    unplaced: List[int] = []

    # Python-float copies of the per-VM scalars: the per-placement state
    # updates run ~5x faster outside numpy's small-array dispatch.
    mean_l = v_mean.tolist()
    cnorm2_l = np.column_stack([ws.cpu_cnorm2, ws.mem_cnorm2]).tolist()
    sum_l = np.column_stack([ws.cpu_sum, ws.mem_sum]).tolist()
    sq_l = np.column_stack([ws.cpu_sq, ws.mem_sq]).tolist()
    capc, capm = float(cap_cpu_pct), float(cap_mem_pct)

    def place(vm: int, j: int, dc: float, dm: float) -> None:
        nonlocal empty_ptr
        nonempty[j] = True
        empty_pen[j] = 0.0  # non-empty servers are always scoreable
        while empty_ptr < capacity and nonempty[empty_ptr]:
            empty_ptr += 1
        if empty_ptr < capacity:
            empty_pen[empty_ptr] = 0.0  # the new representative empty
        mc, mm = mean_l[vm]
        s0 = ssum[0, j]
        s1 = ssum[1, j]
        draw_c = dc + mc * s0
        draw_m = dm + mm * s1
        n2c, n2m = cnorm2_l[vm]
        c0 = max(cnorm2[0, j] + 2.0 * dc + n2c, 0.0)
        c1 = max(cnorm2[1, j] + 2.0 * dm + n2m, 0.0)
        cnorm2[0, j] = c0
        cnorm2[1, j] = c1
        r0 = math.sqrt(c0)
        r1 = math.sqrt(c1)
        inv_snorm[0, j] = 1.0 / r0 if r0 >= _CORR_EPS else 0.0
        inv_snorm[1, j] = 1.0 / r1 if r1 >= _CORR_EPS else 0.0
        qc, qm = sq_l[vm]
        q0 = ssq[0, j] + 2.0 * draw_c + qc
        q1 = ssq[1, j] + 2.0 * draw_m + qm
        ssq[0, j] = q0
        ssq[1, j] = q1
        sc, sm = sum_l[vm]
        s0 += sc
        s1 += sm
        ssum[0, j] = s0
        ssum[1, j] = s1
        g[0, j] = q0 - 2.0 * capc * s0
        g[1, j] = q1 - 2.0 * capm * s1
        row = served_cat[j]
        row += patt_cat[vm]
        r2 = row.reshape(2, k)
        mx = r2.max(axis=1)
        mn = r2.min(axis=1)
        pc, pm = float(mx[0]), float(mx[1])
        bounds6[0, j] = pc
        bounds6[1, j] = pm
        bounds6[2, j] = pc
        bounds6[3, j] = pm
        bounds6[4, j] = float(mn[0])
        bounds6[5, j] = float(mn[1])
        plans[j].vm_ids.append(int(vm))

    seq_list = [int(v) for v in sequence]
    eps_caps = caps2 + _EPS
    block = _BLOCK
    for pos in range(0, len(seq_list), block):
        blk = seq_list[pos : pos + block]
        n_blk = len(blk)
        base = n_act
        # -- block precompute: feasibility penalties vs block-entry state.
        # Position-indexed like allocate_1d's fast path: 0 marks a
        # surely-fitting server, -inf a surely-unfit one; the undecided
        # band is patched per VM after its exact check.
        c6 = bounds6[:, :base] + off6[blk] <= thr6  # (n_blk, 6, base)
        sure0 = c6[:, 0, :] & c6[:, 1, :]
        may0 = c6[:, 2:, :].all(axis=1)
        may0 &= ~sure0
        pen0 = np.where(sure0, 0.0, -np.inf)

        # -- sequential walk; only in-block modified servers re-checked --
        modified: List[int] = []
        for i in range(n_blk):
            vm = blk[i]
            row_pen = np.full(n_act, -np.inf)
            row_pen[:base] = pen0[i]
            band = np.flatnonzero(may0[i])
            if modified:
                band = band[~is_mod[band]]
                m_ids = np.array(modified, dtype=np.intp)
                band = np.concatenate([band, m_ids])
            if band.size:
                aggb = served_cat[band] + patt_cat[vm]
                row_pen[band] = np.where(
                    (aggb.reshape(-1, 2, k).max(axis=2) <= eps_caps).all(
                        axis=1
                    ),
                    0.0,
                    -np.inf,
                )
            # Scoreable set = fitting servers with the redundant empties
            # penalized away (every fitting empty ties the representative
            # at merit exactly 0, and if any empty fits the lowest-index
            # one — the representative — fits too).  Positions ascend, so
            # argmax tie-breaks match the reference's lowest-index pick.
            scoreable = row_pen + empty_pen[:n_act]
            idx_eval = np.flatnonzero(scoreable == 0.0)
            if idx_eval.size == 0:
                # No server fits (the representative stands in for all
                # empties, so this covers the whole fleet).
                if n_act < fleet_bound:
                    plans.append(
                        ServerPlan(
                            cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct
                        )
                    )
                    j = n_act
                    n_act += 1
                    place(vm, j, 0.0, 0.0)
                    is_mod[j] = True
                    modified.append(j)
                else:
                    unplaced.append(vm)
                continue
            if 6 * idx_eval.size >= n_act:
                # Wide evaluation set: run the phi/Dist kernel on the
                # contiguous views; adding the penalty vector replaces
                # the boolean-mask assembly (finite + 0.0 is unchanged,
                # everything else drops to -inf).
                dcm = np.einsum(
                    "srk,rk->rs",
                    served_cat[:n_act].reshape(n_act, 2, k),
                    cent[vm],
                )
                um = dcm * inv_snorm[:, :n_act]
                um *= vw[vm]
                dm_ = dcm + dcm
                dm_ += g[:, :n_act]
                dm_ += ssum[:, :n_act] * k2[vm]
                dm_ += a2[vm]
                np.maximum(dm_, 0.0, out=dm_)
                np.sqrt(dm_, out=dm_)
                np.maximum(dm_, _DIST_FLOOR, out=dm_)
                um /= dm_
                merit = um[0] + um[1]
                merit += scoreable
                j = int(np.argmax(merit))
                place(vm, j, float(dcm[0, j]), float(dcm[1, j]))
            else:
                # The incremental phi/Dist kernel over the gathered set
                # (idx_eval already lists the scoreable positions in
                # ascending order, representative empty included):
                # dot(S, U-mean(U)) feeds the Pearson numerator and the
                # distance cross term at once.
                dcm = (
                    (served_cat[idx_eval].reshape(-1, 2, k) * cent[vm])
                    .sum(axis=2)
                    .T
                )
                ms = mstate[:, idx_eval]
                um = dcm * ms[0:2]
                um *= vw[vm]
                dm_ = dcm + dcm
                dm_ += ms[2:4]
                dm_ += ms[4:6] * k2[vm]
                dm_ += a2[vm]
                np.maximum(dm_, 0.0, out=dm_)
                np.sqrt(dm_, out=dm_)
                np.maximum(dm_, _DIST_FLOOR, out=dm_)
                um /= dm_
                merit = um[0] + um[1]
                pick = int(np.argmax(merit))
                j = int(idx_eval[pick])
                place(vm, j, float(dcm[0, pick]), float(dcm[1, pick]))
            if not is_mod[j]:
                is_mod[j] = True
                modified.append(j)
        if modified:
            is_mod[np.array(modified, dtype=np.intp)] = False

    forced = force_place_remaining(plans, unplaced, pred_cpu)
    # Servers that received no VM stay off; drop their empty plans.
    plans = [plan for plan in plans if plan.vm_ids]
    return plans, forced


def _allocate_2d_reference(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    n_servers: int,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    fleet_bound: int,
    sequence: np.ndarray,
) -> Tuple[List[ServerPlan], int]:
    """The seed implementation, kept as the fast path's oracle."""
    n_vms, n_samples = pred_cpu.shape
    plans = [
        ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        for _ in range(n_servers)
    ]
    served_cpu = np.zeros((n_servers, n_samples))
    served_mem = np.zeros((n_servers, n_samples))
    unplaced: List[int] = []

    for vm_id in (int(v) for v in sequence):
        agg_cpu = served_cpu + pred_cpu[vm_id][None, :]
        agg_mem = served_mem + pred_mem[vm_id][None, :]
        fits = (agg_cpu.max(axis=1) <= cap_cpu_pct + _EPS) & (
            agg_mem.max(axis=1) <= cap_mem_pct + _EPS
        )
        if not np.any(fits):
            if len(plans) < fleet_bound:
                plans.append(
                    ServerPlan(
                        cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct
                    )
                )
                served_cpu = np.vstack([served_cpu, np.zeros(n_samples)])
                served_mem = np.vstack([served_mem, np.zeros(n_samples)])
                plans[-1].vm_ids.append(vm_id)
                served_cpu[-1] += pred_cpu[vm_id]
                served_mem[-1] += pred_mem[vm_id]
            else:
                unplaced.append(vm_id)
            continue
        candidate_ids = np.flatnonzero(fits)
        scores = merit_scores(
            pred_cpu[vm_id],
            pred_mem[vm_id],
            served_cpu[candidate_ids],
            served_mem[candidate_ids],
            cap_cpu_pct,
            cap_mem_pct,
        )
        winner = int(candidate_ids[int(np.argmax(scores))])
        plans[winner].vm_ids.append(vm_id)
        served_cpu[winner] += pred_cpu[vm_id]
        served_mem[winner] += pred_mem[vm_id]

    forced = force_place_remaining(plans, unplaced, pred_cpu)
    plans = [plan for plan in plans if plan.vm_ids]
    return plans, forced


def allocate_2d_pools(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    pool_vms: Sequence[np.ndarray],
    n_servers: Sequence[int],
    cap_cpu_pct: Sequence[float],
    cap_mem_pct: Sequence[float],
    max_servers: Sequence[Optional[int]],
    fast: bool = True,
) -> Tuple[List[ServerPlan], np.ndarray, int]:
    """Algorithm 2 with a pool dimension: one independent run per pool.

    The 2-D counterpart of
    :func:`~repro.core.alloc1d.allocate_1d_pools`: each pool's VM
    subset is packed by a standalone :func:`allocate_2d` call under the
    pool's own server count, caps and bound, so the concatenated
    pool-major result is bit-identical to running the pools separately.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        pool_vms: per-pool global VM index arrays (disjoint).
        n_servers: per-pool initial turned-on server counts (``N_mem``).
        cap_cpu_pct: per-pool CPU caps.
        cap_mem_pct: per-pool memory caps.
        max_servers: per-pool fleet-size bounds (``None`` = ``n_servers``).
        fast: forwarded to every per-pool run.

    Returns:
        ``(plans, server_pools, forced)``.
    """
    n_pools = len(pool_vms)
    if not (
        len(n_servers)
        == len(cap_cpu_pct)
        == len(cap_mem_pct)
        == len(max_servers)
        == n_pools
    ):
        raise DomainError("per-pool parameters must align with pool_vms")

    def run_pool(m: int, idx: np.ndarray):
        return allocate_2d(
            pred_cpu[idx],
            pred_mem[idx],
            n_servers[m],
            cap_cpu_pct[m],
            cap_mem_pct[m],
            max_servers=max_servers[m],
            fast=fast,
        )

    return run_allocator_pools(run_pool, pool_vms)
