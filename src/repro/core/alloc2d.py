"""EPACT's Algorithm 2: 2D merit-function allocation (paper Eq. 2).

Used in the memory-dominant case (Section V-B-2).  The server count is
fixed at ``N_mem``; for each VM the best server maximizes the merit::

    M_i_j = w_cpu * phi_cpu / Dist_cpu + w_mem * phi_mem / Dist_mem

where, per resource,

* ``phi`` is the Pearson correlation between the VM's pattern and the
  server's complementary pattern (``max(S) - S``): shape fit;
* ``Dist`` is the Euclidean distance between the VM's pattern and the
  server's *remaining capacity* pattern (``Cap - S``): closeness to
  filling the server exactly;
* the weights ``w = Cap / (Cap_cpu + Cap_mem)`` balance the two resources
  by their configured caps.

A VM only considers servers with room at every sample of the slot
(``max(U + S) <= Cap`` for both resources).  When no server fits, the VM is
force-placed on the least-loaded server (physical data centers cannot
refuse admitted VMs) and reported.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .correlation import euclidean_distance_many, pearson_many
from .types import ServerPlan, force_place_remaining

_EPS = 1.0e-9
_DIST_FLOOR = 1.0e-6


def merit_scores(
    vm_cpu: np.ndarray,
    vm_mem: np.ndarray,
    served_cpu: np.ndarray,
    served_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
) -> np.ndarray:
    """Eq. 2 merit of one VM against each candidate server.

    Args:
        vm_cpu: the VM's CPU pattern (``n_samples``).
        vm_mem: the VM's memory pattern.
        served_cpu: candidate servers' aggregate CPU patterns
            ``(n_servers, n_samples)``.
        served_mem: candidate servers' aggregate memory patterns.
        cap_cpu_pct: CPU cap per server.
        cap_mem_pct: memory cap per server.

    Returns:
        Merit ``M`` per candidate server (higher is better).
    """
    w_cpu = cap_cpu_pct / (cap_cpu_pct + cap_mem_pct)
    w_mem = cap_mem_pct / (cap_cpu_pct + cap_mem_pct)

    patt_com_cpu = served_cpu.max(axis=1, keepdims=True) - served_cpu
    patt_com_mem = served_mem.max(axis=1, keepdims=True) - served_mem
    phi_cpu = _rowwise_pearson(patt_com_cpu, vm_cpu)
    phi_mem = _rowwise_pearson(patt_com_mem, vm_mem)

    rem_cpu = cap_cpu_pct - served_cpu
    rem_mem = cap_mem_pct - served_mem
    dist_cpu = np.maximum(
        euclidean_distance_many(rem_cpu, vm_cpu), _DIST_FLOOR
    )
    dist_mem = np.maximum(
        euclidean_distance_many(rem_mem, vm_mem), _DIST_FLOOR
    )
    return w_cpu * phi_cpu / dist_cpu + w_mem * phi_mem / dist_mem


def _rowwise_pearson(rows: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pearson of each row against the target (rows vary, target fixed)."""
    return pearson_many(rows, target)


def allocate_2d(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    n_servers: int,
    cap_cpu_pct: float,
    cap_mem_pct: float = 100.0,
    max_servers: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
) -> Tuple[List[ServerPlan], int]:
    """Run Algorithm 2; returns server plans and forced-placement count.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        n_servers: initial number of turned-on servers (``N_mem``).
        cap_cpu_pct: per-server CPU cap (``100 * F_opt / Fmax``).
        cap_mem_pct: per-server memory cap.
        max_servers: fleet-size bound.  ``N_mem`` assumes perfect packing;
            real bin packing fragments, so additional servers are opened
            (up to this bound) when a VM fits nowhere — force placement
            only happens once the fleet is exhausted.
        order: VM visiting order; the paper visits ``i = 1..N_VM``
            (natural order), which is the default.
    """
    if n_servers < 1:
        raise DomainError("n_servers must be >= 1")
    if not (0.0 < cap_cpu_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_cpu_pct must be in (0, 100], got {cap_cpu_pct}")
    if not (0.0 < cap_mem_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_mem_pct must be in (0, 100], got {cap_mem_pct}")

    n_vms, n_samples = pred_cpu.shape
    sequence = (
        np.asarray(list(order), dtype=int)
        if order is not None
        else np.arange(n_vms)
    )
    if sorted(sequence.tolist()) != list(range(n_vms)):
        raise DomainError("order must be a permutation of all VM ids")

    plans = [
        ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        for _ in range(n_servers)
    ]
    served_cpu = np.zeros((n_servers, n_samples))
    served_mem = np.zeros((n_servers, n_samples))
    fleet_bound = max_servers if max_servers is not None else n_servers
    fleet_bound = max(fleet_bound, n_servers)
    unplaced: List[int] = []

    for vm_id in (int(v) for v in sequence):
        agg_cpu = served_cpu + pred_cpu[vm_id][None, :]
        agg_mem = served_mem + pred_mem[vm_id][None, :]
        fits = (agg_cpu.max(axis=1) <= cap_cpu_pct + _EPS) & (
            agg_mem.max(axis=1) <= cap_mem_pct + _EPS
        )
        if not np.any(fits):
            if len(plans) < fleet_bound:
                plans.append(
                    ServerPlan(
                        cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct
                    )
                )
                served_cpu = np.vstack([served_cpu, np.zeros(n_samples)])
                served_mem = np.vstack([served_mem, np.zeros(n_samples)])
                plans[-1].vm_ids.append(vm_id)
                served_cpu[-1] += pred_cpu[vm_id]
                served_mem[-1] += pred_mem[vm_id]
            else:
                unplaced.append(vm_id)
            continue
        candidate_ids = np.flatnonzero(fits)
        scores = merit_scores(
            pred_cpu[vm_id],
            pred_mem[vm_id],
            served_cpu[candidate_ids],
            served_mem[candidate_ids],
            cap_cpu_pct,
            cap_mem_pct,
        )
        winner = int(candidate_ids[int(np.argmax(scores))])
        plans[winner].vm_ids.append(vm_id)
        served_cpu[winner] += pred_cpu[vm_id]
        served_mem[winner] += pred_mem[vm_id]

    forced = force_place_remaining(plans, unplaced, pred_cpu)
    # Servers that received no VM stay off; drop their empty plans.
    plans = [plan for plan in plans if plan.vm_ids]
    return plans, forced
