"""Per-sample DVFS governor (paper Section V-B, closing paragraph).

"After allocation, for both cases, based on the real VMs CPU utilization,
we online set the best frequency level for each server per sample to
guarantee QoS."

For each server and each 5-minute sample the governor picks the lowest OPP
that (a) covers the server's real aggregate CPU demand and (b) respects
the QoS frequency floor of the hosted workload classes (1.2 GHz for
low-mem, 1.8 GHz for mid/high-mem on the NTC server).  Demand beyond
``Fmax`` saturates at ``Fmax`` — the excess shows up as an SLA violation,
not as an impossible frequency.
"""

from __future__ import annotations

import numpy as np

from ..errors import DomainError
from ..technology.opp import OppTable

_EPS = 1.0e-9


class DvfsGovernor:
    """Vectorized lowest-covering-OPP selection with QoS floors.

    Args:
        opps: the platform's DVFS table.
        f_max_ghz: the platform's maximum frequency (demand reference).
    """

    def __init__(self, opps: OppTable, f_max_ghz: float):
        if f_max_ghz <= 0.0:
            raise DomainError("f_max_ghz must be positive")
        self._freqs = np.asarray(opps.frequencies_ghz, dtype=float)
        self._f_max = f_max_ghz

    @property
    def frequencies_ghz(self) -> np.ndarray:
        """The OPP frequency grid (ascending)."""
        return self._freqs

    def floor_indices(self, floor_ghz: np.ndarray) -> np.ndarray:
        """OPP indices of per-server QoS floors (ceil quantization)."""
        floors = np.asarray(floor_ghz, dtype=float)
        idx = np.searchsorted(self._freqs, floors - _EPS, side="left")
        return np.clip(idx, 0, len(self._freqs) - 1)

    def _demand_indices(self, util: np.ndarray) -> np.ndarray:
        """Lowest OPP covering each element's demand (shared kernel).

        The ``opp_indices*`` entry points differ only in shape checks
        and the floor broadcast axis; the demand-to-OPP quantization
        must stay byte-for-byte identical across them for the engine's
        bit-identity guarantees, so it lives here once.
        """
        demand_ghz = util * self._f_max / 100.0
        idx = np.searchsorted(self._freqs, demand_ghz - _EPS, side="left")
        return np.clip(idx, 0, len(self._freqs) - 1)

    def opp_indices(
        self,
        cpu_util_pct: np.ndarray,
        floor_ghz: np.ndarray,
    ) -> np.ndarray:
        """Chosen OPP index per server-sample.

        Args:
            cpu_util_pct: real aggregate utilization, shape
                ``(n_servers, n_samples)``, percent of ``Fmax`` capacity.
            floor_ghz: per-server QoS frequency floor, shape
                ``(n_servers,)``.

        Returns:
            Integer OPP indices with the same shape as ``cpu_util_pct``.
        """
        util = np.asarray(cpu_util_pct, dtype=float)
        if util.ndim != 2:
            raise DomainError("cpu_util_pct must be 2-D")
        if np.asarray(floor_ghz).shape != (util.shape[0],):
            raise DomainError("floor_ghz must have one entry per server")
        floor_idx = self.floor_indices(np.asarray(floor_ghz))
        return np.maximum(self._demand_indices(util), floor_idx[:, None])

    def opp_indices_window(
        self,
        cpu_util_pct: np.ndarray,
        floor_ghz: np.ndarray,
    ) -> np.ndarray:
        """Chosen OPP index per (slot, server, sample) of a window batch.

        Elementwise identical to :meth:`opp_indices` applied slot by
        slot; one call covers a whole allocation window.

        Args:
            cpu_util_pct: real aggregate utilization, shape
                ``(n_slots, n_servers, n_samples)``.
            floor_ghz: per-server QoS frequency floor, shape
                ``(n_servers,)``.
        """
        util = np.asarray(cpu_util_pct, dtype=float)
        if util.ndim != 3:
            raise DomainError(
                "cpu_util_pct must be 3-D (slots, servers, samples)"
            )
        if np.asarray(floor_ghz).shape != (util.shape[1],):
            raise DomainError("floor_ghz must have one entry per server")
        floor_idx = self.floor_indices(np.asarray(floor_ghz))
        return np.maximum(
            self._demand_indices(util), floor_idx[None, :, None]
        )

    def opp_indices_horizon(
        self,
        cpu_util_pct: np.ndarray,
        floor_ghz: np.ndarray,
    ) -> np.ndarray:
        """Chosen OPP index per (slot, server, sample) with per-slot floors.

        The horizon-concatenated engine stacks slots from *different*
        allocations, whose server counts and QoS floors differ, into one
        padded tensor; floors therefore arrive per (slot, server).
        Elementwise identical to :meth:`opp_indices` applied slot by
        slot with each slot's own floor vector.

        Args:
            cpu_util_pct: real aggregate utilization, shape
                ``(n_slots, n_servers, n_samples)``.
            floor_ghz: per-(slot, server) QoS frequency floor, shape
                ``(n_slots, n_servers)``.
        """
        util = np.asarray(cpu_util_pct, dtype=float)
        if util.ndim != 3:
            raise DomainError(
                "cpu_util_pct must be 3-D (slots, servers, samples)"
            )
        floors = np.asarray(floor_ghz, dtype=float)
        if floors.shape != util.shape[:2]:
            raise DomainError(
                "floor_ghz must have one entry per (slot, server)"
            )
        floor_idx = self.floor_indices(floors)
        return np.maximum(
            self._demand_indices(util), floor_idx[:, :, None]
        )

    def fixed_indices(
        self, freq_ghz: float, shape: tuple[int, int]
    ) -> np.ndarray:
        """OPP indices for a fixed-frequency policy (ceil quantization)."""
        idx = int(
            np.clip(
                np.searchsorted(self._freqs, freq_ghz - _EPS, side="left"),
                0,
                len(self._freqs) - 1,
            )
        )
        return np.full(shape, idx, dtype=int)
