"""EPACT's Algorithm 1: 1D correlation-aware first-fit-decreasing.

Used in the CPU-dominant case (Section V-B-1).  Servers are filled one at
a time:

* an empty server receives the first unallocated VM (FFD order: VMs
  sorted by decreasing peak predicted CPU);
* a non-empty server computes its complementary pattern
  ``PattCom = max(Patt) - Patt`` and receives, among the unallocated VMs
  that still fit under the frequency cap
  (``max(Patt + U) * Fmax / 100 <= F_opt``), the one whose CPU pattern has
  maximum Pearson correlation with ``PattCom`` — the VM that best fills
  the server's valleys;
* when no VM fits, the next server is opened.

Memory feasibility (aggregate <= 100% of DRAM) is enforced alongside the
CPU cap: physical memory cannot be oversubscribed regardless of policy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .correlation import complementary_pattern, pearson_many
from .types import ServerPlan, force_place_remaining

_EPS = 1.0e-9


def ffd_order(pred_cpu: np.ndarray) -> np.ndarray:
    """First-fit-decreasing order: by decreasing peak predicted CPU."""
    if pred_cpu.ndim != 2:
        raise DomainError("pred_cpu must be 2-D")
    peaks = pred_cpu.max(axis=1)
    # Stable sort keeps ties in VM-id order for reproducibility.
    return np.argsort(-peaks, kind="stable")


def allocate_1d(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float = 100.0,
    max_servers: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
) -> Tuple[List[ServerPlan], int]:
    """Run Algorithm 1; returns the server plans and forced-placement count.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        cap_cpu_pct: the slot cap ``100 * F_opt / Fmax``.
        cap_mem_pct: memory cap (100% = physical capacity).
        max_servers: optional fleet-size bound; exhausted capacity falls
            back to least-loaded force placement.
        order: explicit allocation order (defaults to FFD).
    """
    if not (0.0 < cap_cpu_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_cpu_pct must be in (0, 100], got {cap_cpu_pct}")
    if not (0.0 < cap_mem_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_mem_pct must be in (0, 100], got {cap_mem_pct}")

    n_vms, n_samples = pred_cpu.shape
    sequence = (
        np.asarray(list(order), dtype=int)
        if order is not None
        else ffd_order(pred_cpu)
    )
    if sorted(sequence.tolist()) != list(range(n_vms)):
        raise DomainError("order must be a permutation of all VM ids")

    remaining: List[int] = list(int(v) for v in sequence)
    plans: List[ServerPlan] = []
    patt_cpu: List[np.ndarray] = []
    patt_mem: List[np.ndarray] = []
    forced = 0

    def open_server() -> int:
        plans.append(
            ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        )
        patt_cpu.append(np.zeros(n_samples))
        patt_mem.append(np.zeros(n_samples))
        return len(plans) - 1

    current = open_server()
    while remaining:
        if max_servers is not None and len(plans) > max_servers:
            # The over-opened empty server is retracted; force-place rest.
            plans.pop()
            patt_cpu.pop()
            patt_mem.pop()
            forced += force_place_remaining(plans, remaining, pred_cpu)
            break
        if not plans[current].vm_ids:
            # Lines 4-6: empty server takes the first unallocated VM, even
            # when that VM alone exceeds the cap (it has to live somewhere).
            vm_id = remaining.pop(0)
            plans[current].vm_ids.append(vm_id)
            patt_cpu[current] = patt_cpu[current] + pred_cpu[vm_id]
            patt_mem[current] = patt_mem[current] + pred_mem[vm_id]
            continue
        # Lines 8-12: correlation-guided pick under the caps.
        candidates = np.asarray(remaining, dtype=int)
        agg_cpu = patt_cpu[current][None, :] + pred_cpu[candidates]
        agg_mem = patt_mem[current][None, :] + pred_mem[candidates]
        fits = (agg_cpu.max(axis=1) <= cap_cpu_pct + _EPS) & (
            agg_mem.max(axis=1) <= cap_mem_pct + _EPS
        )
        if not np.any(fits):
            current = open_server()
            continue
        patt_com = complementary_pattern(patt_cpu[current])
        phi = pearson_many(pred_cpu[candidates[fits]], patt_com)
        winner = candidates[fits][int(np.argmax(phi))]
        remaining.remove(int(winner))
        plans[current].vm_ids.append(int(winner))
        patt_cpu[current] = patt_cpu[current] + pred_cpu[winner]
        patt_mem[current] = patt_mem[current] + pred_mem[winner]

    # Drop a trailing empty server if the loop ended right after opening.
    if plans and not plans[-1].vm_ids:
        plans.pop()
    return plans, forced
