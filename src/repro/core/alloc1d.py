"""EPACT's Algorithm 1: 1D correlation-aware first-fit-decreasing.

Used in the CPU-dominant case (Section V-B-1).  Servers are filled one at
a time:

* an empty server receives the first unallocated VM (FFD order: VMs
  sorted by decreasing peak predicted CPU);
* a non-empty server computes its complementary pattern
  ``PattCom = max(Patt) - Patt`` and receives, among the unallocated VMs
  that still fit under the frequency cap
  (``max(Patt + U) * Fmax / 100 <= F_opt``), the one whose CPU pattern has
  maximum Pearson correlation with ``PattCom`` — the VM that best fills
  the server's valleys;
* when no VM fits, the next server is opened.

Memory feasibility (aggregate <= 100% of DRAM) is enforced alongside the
CPU cap: physical memory cannot be oversubscribed regardless of policy.

Two implementations share this contract:

* the **fast path** (default) precomputes per-VM centered patterns and
  norms once (:class:`~repro.core.workspace.AllocationWorkspace`),
  maintains the server aggregate, its centered norm and the per-VM
  correlation dot products incrementally, and verifies the capacity caps
  lazily in decreasing-correlation order.  The asymptotic cost is still
  O(n_vms^2 * n_samples) — each placement refreshes the dot products
  with one (n_vms, n_samples) GEMV — but the per-pick Python-level work
  drops from ~10 full candidate-matrix passes to O(n_candidates)
  bookkeeping plus that single BLAS call (the measured 5-8x);
* the **reference path** (``fast=False``) is the seed's direct loop, kept
  as the equivalence oracle.  The fast path reproduces its plans exactly
  on non-degenerate inputs; correlations are accumulated in a different
  order, so ties broken at float rounding granularity (~1e-15) may
  differ in principle — see ``tests/test_fast_path_equivalence.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .correlation import complementary_pattern, pearson_many
from .types import ServerPlan, force_place_remaining
from .workspace import AllocationWorkspace, validate_vm_order

_EPS = 1.0e-9
# Matches repro.core.correlation._EPS: aggregates with centered norm below
# this are "shapeless" and yield zero correlation for every candidate.
_CORR_EPS = 1.0e-12
# Lazy fit checks per pick before falling back to a vectorized scan.
_LAZY_TRIES = 8


def ffd_order(pred_cpu: np.ndarray) -> np.ndarray:
    """First-fit-decreasing order: by decreasing peak predicted CPU."""
    if pred_cpu.ndim != 2:
        raise DomainError("pred_cpu must be 2-D")
    peaks = pred_cpu.max(axis=1)
    # Stable sort keeps ties in VM-id order for reproducibility.
    return np.argsort(-peaks, kind="stable")


def allocate_1d(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float = 100.0,
    max_servers: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    fast: bool = True,
    workspace: Optional[AllocationWorkspace] = None,
) -> Tuple[List[ServerPlan], int]:
    """Run Algorithm 1; returns the server plans and forced-placement count.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        cap_cpu_pct: the slot cap ``100 * F_opt / Fmax``.
        cap_mem_pct: memory cap (100% = physical capacity).
        max_servers: optional fleet-size bound; exhausted capacity falls
            back to least-loaded force placement.
        order: explicit allocation order (defaults to FFD).
        fast: use the incremental fast path (default); ``False`` runs the
            seed reference loop.
        workspace: optional precomputed
            :class:`~repro.core.workspace.AllocationWorkspace` for
            ``(pred_cpu, pred_mem)``, reusable across calls.
    """
    if not (0.0 < cap_cpu_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_cpu_pct must be in (0, 100], got {cap_cpu_pct}")
    if not (0.0 < cap_mem_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_mem_pct must be in (0, 100], got {cap_mem_pct}")

    n_vms, _ = pred_cpu.shape
    sequence = (
        np.asarray(list(order), dtype=int)
        if order is not None
        else ffd_order(pred_cpu)
    )
    validate_vm_order(sequence, n_vms)
    if fast:
        return _allocate_1d_fast(
            pred_cpu,
            pred_mem,
            cap_cpu_pct,
            cap_mem_pct,
            max_servers,
            sequence,
            workspace,
        )
    return _allocate_1d_reference(
        pred_cpu, pred_mem, cap_cpu_pct, cap_mem_pct, max_servers, sequence
    )


def _allocate_1d_fast(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    max_servers: Optional[int],
    sequence: np.ndarray,
    workspace: Optional[AllocationWorkspace],
) -> Tuple[List[ServerPlan], int]:
    """Incremental Algorithm 1 (see module docstring)."""
    ws = (
        workspace
        if workspace is not None
        else AllocationWorkspace(pred_cpu, pred_mem)
    )
    cpu, mem = ws.cpu, ws.mem
    n_vms, n_samples = cpu.shape
    c_cent, c_norm, c_norm2 = ws.cpu_centered, ws.cpu_cnorm, ws.cpu_cnorm2
    # -1/|U - mean(U)| per VM (0 for shapeless patterns).  The aggregate's
    # centered norm is a *shared positive* factor of every candidate's
    # Pearson, so the greedy argmax can rank on dots * ninv directly —
    # shapeless candidates land at exactly 0, like the reference's phi.
    small = c_norm < _CORR_EPS
    ninv = np.where(small, 0.0, -1.0 / np.where(small, 1.0, c_norm))
    # CPU and memory patterns concatenated: one add + one reduction per
    # lazy cap check instead of two of each.
    cat = np.concatenate([cpu, mem], axis=1)

    # VM ids still to place, in visiting order (the seed's `remaining`).
    remaining = sequence.astype(np.intp, copy=True)
    plans: List[ServerPlan] = [
        ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
    ]
    forced = 0

    # Current-server state, maintained incrementally:
    #   patt_cat   — aggregate patterns, CPU and memory concatenated
    #                (same accumulation order as seed);
    #   dots[v]    — dot(centered VM v, centered aggregate);
    #   patt_norm2 — squared centered norm of the aggregate.
    patt_cat = np.zeros(2 * n_samples)
    patt_cpu = patt_cat[:n_samples]
    patt_mem = patt_cat[n_samples:]
    dots = np.zeros(n_vms)
    patt_norm2 = 0.0

    def place(vm: int) -> None:
        nonlocal patt_norm2, dots, patt_cat
        plans[-1].vm_ids.append(int(vm))
        patt_norm2 = max(patt_norm2 + 2.0 * dots[vm] + c_norm2[vm], 0.0)
        dots += c_cent @ c_cent[vm]
        patt_cat += cat[vm]

    while remaining.size:
        if max_servers is not None and len(plans) > max_servers:
            plans.pop()
            forced += force_place_remaining(
                plans, [int(v) for v in remaining], pred_cpu
            )
            break
        if not plans[-1].vm_ids:
            # Lines 4-6: empty server takes the first unallocated VM, even
            # when that VM alone exceeds the cap (it has to live somewhere).
            vm = int(remaining[0])
            remaining = remaining[1:]
            place(vm)
            continue
        # Lines 8-12: correlation-guided pick under the caps.  phi equals
        # pearson(U, PattCom) == -pearson(U, Patt); candidates are probed
        # in decreasing phi order, so typically one O(n_samples) cap check
        # replaces the full (n_candidates, n_samples) aggregate rebuild.
        if patt_norm2 <= _CORR_EPS * _CORR_EPS:
            phi = np.zeros(remaining.size)
        else:
            phi = dots[remaining] * ninv[remaining]

        found = -1
        for _ in range(_LAZY_TRIES):
            j = int(np.argmax(phi))
            if phi[j] == -np.inf:
                break  # every candidate probed; none fits
            vm = int(remaining[j])
            peaks = (patt_cat + cat[vm]).reshape(2, n_samples).max(axis=1)
            if (
                peaks[0] <= cap_cpu_pct + _EPS
                and peaks[1] <= cap_mem_pct + _EPS
            ):
                found = j
                break
            phi[j] = -np.inf
        else:
            # Rare: the top candidates all collided with the caps — finish
            # with one vectorized scan over the unprobed rest.
            open_mask = phi > -np.inf
            cand = remaining[open_mask]
            fits = (
                np.max(patt_cpu[None, :] + cpu[cand], axis=1)
                <= cap_cpu_pct + _EPS
            ) & (
                np.max(patt_mem[None, :] + mem[cand], axis=1)
                <= cap_mem_pct + _EPS
            )
            if fits.any():
                sub_phi = phi[open_mask]
                sub_phi[~fits] = -np.inf
                found = int(np.flatnonzero(open_mask)[int(np.argmax(sub_phi))])

        if found < 0:
            plans.append(
                ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
            )
            patt_cat[:] = 0.0
            dots[:] = 0.0
            patt_norm2 = 0.0
            continue
        vm = int(remaining[found])
        remaining = np.delete(remaining, found)
        place(vm)

    # Drop a trailing empty server if the loop ended right after opening.
    if plans and not plans[-1].vm_ids:
        plans.pop()
    return plans, forced


def _allocate_1d_reference(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    max_servers: Optional[int],
    sequence: np.ndarray,
) -> Tuple[List[ServerPlan], int]:
    """The seed implementation, kept as the fast path's oracle."""
    n_vms, n_samples = pred_cpu.shape
    remaining: List[int] = list(int(v) for v in sequence)
    plans: List[ServerPlan] = []
    patt_cpu: List[np.ndarray] = []
    patt_mem: List[np.ndarray] = []
    forced = 0

    def open_server() -> int:
        plans.append(
            ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        )
        patt_cpu.append(np.zeros(n_samples))
        patt_mem.append(np.zeros(n_samples))
        return len(plans) - 1

    current = open_server()
    while remaining:
        if max_servers is not None and len(plans) > max_servers:
            # The over-opened empty server is retracted; force-place rest.
            plans.pop()
            patt_cpu.pop()
            patt_mem.pop()
            forced += force_place_remaining(plans, remaining, pred_cpu)
            break
        if not plans[current].vm_ids:
            vm_id = remaining.pop(0)
            plans[current].vm_ids.append(vm_id)
            patt_cpu[current] = patt_cpu[current] + pred_cpu[vm_id]
            patt_mem[current] = patt_mem[current] + pred_mem[vm_id]
            continue
        candidates = np.asarray(remaining, dtype=int)
        agg_cpu = patt_cpu[current][None, :] + pred_cpu[candidates]
        agg_mem = patt_mem[current][None, :] + pred_mem[candidates]
        fits = (agg_cpu.max(axis=1) <= cap_cpu_pct + _EPS) & (
            agg_mem.max(axis=1) <= cap_mem_pct + _EPS
        )
        if not np.any(fits):
            current = open_server()
            continue
        patt_com = complementary_pattern(patt_cpu[current])
        phi = pearson_many(pred_cpu[candidates[fits]], patt_com)
        winner = candidates[fits][int(np.argmax(phi))]
        remaining.remove(int(winner))
        plans[current].vm_ids.append(int(winner))
        patt_cpu[current] = patt_cpu[current] + pred_cpu[winner]
        patt_mem[current] = patt_mem[current] + pred_mem[winner]

    if plans and not plans[-1].vm_ids:
        plans.pop()
    return plans, forced
