"""EPACT's Algorithm 1: 1D correlation-aware first-fit-decreasing.

Used in the CPU-dominant case (Section V-B-1).  Servers are filled one at
a time:

* an empty server receives the first unallocated VM (FFD order: VMs
  sorted by decreasing peak predicted CPU);
* a non-empty server computes its complementary pattern
  ``PattCom = max(Patt) - Patt`` and receives, among the unallocated VMs
  that still fit under the frequency cap
  (``max(Patt + U) * Fmax / 100 <= F_opt``), the one whose CPU pattern has
  maximum Pearson correlation with ``PattCom`` — the VM that best fills
  the server's valleys;
* when no VM fits, the next server is opened.

Memory feasibility (aggregate <= 100% of DRAM) is enforced alongside the
CPU cap: physical memory cannot be oversubscribed regardless of policy.

Two implementations share this contract:

* the **fast path** (default) precomputes per-VM centered patterns and
  norms once (:class:`~repro.core.workspace.AllocationWorkspace`),
  maintains the server aggregate and its centered pattern incrementally,
  and ranks candidates by one GEMV of the norm-scaled centered patterns
  against that aggregate.  Capacity caps are verified lazily in
  decreasing-correlation order, with a cheap one-sided peak/min bound
  (``max(patt + u) >= max(patt) + min(u)``) rejecting provably-unfit
  candidates on two scalar compares before any dense check runs.  The
  asymptotic cost is still O(n_vms^2 * n_samples) — each pick costs one
  (n_vms, n_samples) GEMV — but the per-pick Python-level work drops
  from ~10 full candidate-matrix passes to O(1) bookkeeping plus that
  single BLAS call (measured 5-8x at fleet scale);
* the **reference path** (``fast=False``) is the seed's direct loop, kept
  as the equivalence oracle.  The fast path reproduces its plans exactly
  on non-degenerate inputs; correlations are accumulated in a different
  order, so ties broken at float rounding granularity (~1e-15) may
  differ in principle — see ``tests/test_fast_path_equivalence.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DomainError
from .correlation import complementary_pattern, pearson_many
from .types import ServerPlan, force_place_remaining
from .workspace import AllocationWorkspace, validate_vm_order

_EPS = 1.0e-9
# Matches repro.core.correlation._EPS: aggregates with centered norm below
# this are "shapeless" and yield zero correlation for every candidate.
_CORR_EPS = 1.0e-12
# Lazy fit checks per pick before falling back to a vectorized scan.
_LAZY_TRIES = 8


def ffd_order(pred_cpu: np.ndarray) -> np.ndarray:
    """First-fit-decreasing order: by decreasing peak predicted CPU."""
    if pred_cpu.ndim != 2:
        raise DomainError("pred_cpu must be 2-D")
    peaks = pred_cpu.max(axis=1)
    # Stable sort keeps ties in VM-id order for reproducibility.
    return np.argsort(-peaks, kind="stable")


def allocate_1d(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float = 100.0,
    max_servers: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    fast: bool = True,
    workspace: Optional[AllocationWorkspace] = None,
) -> Tuple[List[ServerPlan], int]:
    """Run Algorithm 1; returns the server plans and forced-placement count.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        cap_cpu_pct: the slot cap ``100 * F_opt / Fmax``.
        cap_mem_pct: memory cap (100% = physical capacity).
        max_servers: optional fleet-size bound; exhausted capacity falls
            back to least-loaded force placement.
        order: explicit allocation order (defaults to FFD).
        fast: use the incremental fast path (default); ``False`` runs the
            seed reference loop.
        workspace: optional precomputed
            :class:`~repro.core.workspace.AllocationWorkspace` for
            ``(pred_cpu, pred_mem)``, reusable across calls.
    """
    if not (0.0 < cap_cpu_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_cpu_pct must be in (0, 100], got {cap_cpu_pct}")
    if not (0.0 < cap_mem_pct <= 100.0 + _EPS):
        raise DomainError(f"cap_mem_pct must be in (0, 100], got {cap_mem_pct}")

    n_vms, _ = pred_cpu.shape
    sequence = (
        np.asarray(list(order), dtype=int)
        if order is not None
        else ffd_order(pred_cpu)
    )
    validate_vm_order(sequence, n_vms)
    if fast:
        return _allocate_1d_fast(
            pred_cpu,
            pred_mem,
            cap_cpu_pct,
            cap_mem_pct,
            max_servers,
            sequence,
            workspace,
        )
    return _allocate_1d_reference(
        pred_cpu, pred_mem, cap_cpu_pct, cap_mem_pct, max_servers, sequence
    )


def _allocate_1d_fast(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    max_servers: Optional[int],
    sequence: np.ndarray,
    workspace: Optional[AllocationWorkspace],
) -> Tuple[List[ServerPlan], int]:
    """Incremental Algorithm 1 (see module docstring).

    All per-candidate state lives in arrays indexed by *visiting
    position* (the seed's ``remaining`` order): instead of shrinking an
    id array with ``np.delete`` and gathering ``dots``/``ninv`` per
    pick, placed positions carry a ``-inf`` penalty and every pick is a
    full-length multiply-add plus argmax.  Position order equals the
    seed's remaining order, so argmax tie-breaks (including the
    shapeless-aggregate zero-phi rounds) match the reference pick for
    pick.
    """
    ws = (
        workspace
        if workspace is not None
        else AllocationWorkspace(pred_cpu, pred_mem)
    )
    cpu, mem = ws.cpu, ws.mem
    n_vms, n_samples = cpu.shape
    c_cent, c_norm, c_norm2 = ws.cpu_centered, ws.cpu_cnorm, ws.cpu_cnorm2
    # -1/|U - mean(U)| per VM (0 for shapeless patterns).  The aggregate's
    # centered norm is a *shared positive* factor of every candidate's
    # Pearson, so the greedy argmax can rank on dots * ninv directly —
    # shapeless candidates land at exactly 0, like the reference's phi.
    small = c_norm < _CORR_EPS
    ninv = np.where(small, 0.0, -1.0 / np.where(small, 1.0, c_norm))
    # CPU and memory patterns concatenated: one add + one reduction per
    # lazy cap check instead of two of each.
    cat = np.concatenate([cpu, mem], axis=1)

    sequence = sequence.astype(np.intp, copy=False)
    # Candidate state in visiting order: centered patterns pre-scaled by
    # -1/norm (so one GEMV against the aggregate gives phi directly) and
    # a penalty of -inf marking placed positions.
    cn_scaled_seq = c_cent[sequence] * ninv[sequence][:, None]
    penalty = np.zeros(n_vms)
    # Per-candidate extrema in visiting order, for the cheap one-sided
    # infeasibility check (``max(patt + u) >= max(patt) + min(u)``): a
    # provably-unfit candidate is rejected on two scalar compares
    # instead of a dense aggregate rebuild.
    cpu_min_seq = ws.cpu_min[sequence]
    mem_min_seq = ws.mem_min[sequence]
    cpu_peak_seq = ws.cpu_peak[sequence]
    mem_peak_seq = ws.mem_peak[sequence]
    head = 0  # first possibly-unplaced position
    n_left = n_vms
    plans: List[ServerPlan] = [
        ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
    ]
    forced = 0

    # Current-server state, maintained incrementally:
    #   patt_cat   — aggregate patterns, CPU and memory concatenated
    #                (same accumulation order as seed);
    #   agg_cent   — the aggregate's centered pattern (sum of the placed
    #                VMs' centered rows; server aggregates never need
    #                re-centering because centered rows sum to ~0);
    #   patt_norm2 — squared centered norm of the aggregate.
    patt_cat = np.zeros(2 * n_samples)
    patt_cpu = patt_cat[:n_samples]
    patt_mem = patt_cat[n_samples:]
    agg_cent = np.zeros(n_samples)
    patt_norm2 = 0.0
    # Running aggregate peaks (plain floats; refreshed on every
    # placement) feeding the cheap infeasibility checks.
    peak_cpu_agg = 0.0
    peak_mem_agg = 0.0
    # Reusable buffers: probe2 views probe as (cpu, mem) rows; phi_buf
    # holds the per-round merit vector.
    probe = np.empty(2 * n_samples)
    probe2 = probe.reshape(2, n_samples)
    phi_buf = np.empty(n_vms)

    def place(pos: int) -> None:
        nonlocal patt_norm2, n_left, agg_cent, patt_cat
        vm = int(sequence[pos])
        plans[-1].vm_ids.append(vm)
        patt_norm2 = max(
            patt_norm2 + 2.0 * float(c_cent[vm] @ agg_cent) + c_norm2[vm],
            0.0,
        )
        agg_cent += c_cent[vm]
        patt_cat += cat[vm]
        penalty[pos] = -np.inf
        n_left -= 1

    while n_left:
        if max_servers is not None and len(plans) > max_servers:
            plans.pop()
            forced += force_place_remaining(
                plans,
                [int(v) for v in sequence[penalty == 0.0]],
                pred_cpu,
            )
            break
        if not plans[-1].vm_ids:
            # Lines 4-6: empty server takes the first unallocated VM, even
            # when that VM alone exceeds the cap (it has to live somewhere).
            while penalty[head] == -np.inf:
                head += 1
            peak_cpu_agg = float(cpu_peak_seq[head])
            peak_mem_agg = float(mem_peak_seq[head])
            place(head)
            continue
        # Lines 8-12: correlation-guided pick under the caps.  phi equals
        # pearson(U, PattCom) == -pearson(U, Patt); candidates are probed
        # in decreasing phi order, so typically one O(n_samples) cap check
        # replaces the full (n_candidates, n_samples) aggregate rebuild.
        if patt_norm2 <= _CORR_EPS * _CORR_EPS:
            np.copyto(phi_buf, penalty)
        else:
            np.matmul(cn_scaled_seq, agg_cent, out=phi_buf)
            phi_buf += penalty
        phi = phi_buf

        found = -1
        refresh_peaks = False
        cpu_room = cap_cpu_pct + 2.0 * _EPS - peak_cpu_agg
        mem_room = cap_mem_pct + 2.0 * _EPS - peak_mem_agg
        for _ in range(_LAZY_TRIES):
            j = int(phi.argmax())
            if phi[j] == -np.inf:
                break  # every candidate probed; none fits
            if cpu_min_seq[j] > cpu_room or mem_min_seq[j] > mem_room:
                # Provably over the cap (with _EPS of one-sided slack):
                # max(patt + u) >= max(patt) + min(u) > cap + _EPS.
                phi[j] = -np.inf
                continue
            vm = int(sequence[j])
            np.add(patt_cat, cat[vm], out=probe)
            peaks = probe2.max(axis=1)
            if (
                peaks[0] <= cap_cpu_pct + _EPS
                and peaks[1] <= cap_mem_pct + _EPS
            ):
                found = j
                peak_cpu_agg = float(peaks[0])
                peak_mem_agg = float(peaks[1])
                break
            phi[j] = -np.inf
        else:
            # The top candidates all collided with the caps — finish with
            # a vectorized scan over the unprobed rest.  A candidate can
            # only fit if even its *minimum* rides under the cap at the
            # aggregate's peak sample (``max(patt + u) >= max(patt) +
            # min(u)``), so provably-unfit candidates are masked out with
            # two vector compares; when a server is genuinely full this
            # skips the dense (candidates, samples) aggregate rebuild
            # entirely without ever changing the winner.
            # The extra _EPS of slack keeps the filter strictly one-sided
            # under floating-point rounding: a borderline candidate is
            # admitted to the exact check rather than dropped.
            open_mask = phi > -np.inf
            open_mask &= cpu_min_seq <= cpu_room
            open_mask &= mem_min_seq <= mem_room
            if open_mask.any():
                cand = sequence[open_mask]
                fits = (
                    np.max(patt_cpu[None, :] + cpu[cand], axis=1)
                    <= cap_cpu_pct + _EPS
                ) & (
                    np.max(patt_mem[None, :] + mem[cand], axis=1)
                    <= cap_mem_pct + _EPS
                )
                if fits.any():
                    refresh_peaks = True
                    sub_phi = phi[open_mask]
                    sub_phi[~fits] = -np.inf
                    found = int(
                        np.flatnonzero(open_mask)[int(np.argmax(sub_phi))]
                    )

        if found < 0:
            plans.append(
                ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
            )
            patt_cat[:] = 0.0
            agg_cent[:] = 0.0
            patt_norm2 = 0.0
            continue
        place(found)
        if refresh_peaks:
            # Fallback winners bypass the probe buffer; re-derive the
            # aggregate peaks (same floats the probe would have yielded).
            peak_cpu_agg = float(patt_cpu.max())
            peak_mem_agg = float(patt_mem.max())

    # Drop a trailing empty server if the loop ended right after opening.
    if plans and not plans[-1].vm_ids:
        plans.pop()
    return plans, forced


def _allocate_1d_reference(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    cap_cpu_pct: float,
    cap_mem_pct: float,
    max_servers: Optional[int],
    sequence: np.ndarray,
) -> Tuple[List[ServerPlan], int]:
    """The seed implementation, kept as the fast path's oracle."""
    n_vms, n_samples = pred_cpu.shape
    remaining: List[int] = list(int(v) for v in sequence)
    plans: List[ServerPlan] = []
    patt_cpu: List[np.ndarray] = []
    patt_mem: List[np.ndarray] = []
    forced = 0

    def open_server() -> int:
        plans.append(
            ServerPlan(cap_cpu_pct=cap_cpu_pct, cap_mem_pct=cap_mem_pct)
        )
        patt_cpu.append(np.zeros(n_samples))
        patt_mem.append(np.zeros(n_samples))
        return len(plans) - 1

    current = open_server()
    while remaining:
        if max_servers is not None and len(plans) > max_servers:
            # The over-opened empty server is retracted; force-place rest.
            plans.pop()
            patt_cpu.pop()
            patt_mem.pop()
            forced += force_place_remaining(plans, remaining, pred_cpu)
            break
        if not plans[current].vm_ids:
            vm_id = remaining.pop(0)
            plans[current].vm_ids.append(vm_id)
            patt_cpu[current] = patt_cpu[current] + pred_cpu[vm_id]
            patt_mem[current] = patt_mem[current] + pred_mem[vm_id]
            continue
        candidates = np.asarray(remaining, dtype=int)
        agg_cpu = patt_cpu[current][None, :] + pred_cpu[candidates]
        agg_mem = patt_mem[current][None, :] + pred_mem[candidates]
        fits = (agg_cpu.max(axis=1) <= cap_cpu_pct + _EPS) & (
            agg_mem.max(axis=1) <= cap_mem_pct + _EPS
        )
        if not np.any(fits):
            current = open_server()
            continue
        patt_com = complementary_pattern(patt_cpu[current])
        phi = pearson_many(pred_cpu[candidates[fits]], patt_com)
        winner = candidates[fits][int(np.argmax(phi))]
        remaining.remove(int(winner))
        plans[current].vm_ids.append(int(winner))
        patt_cpu[current] = patt_cpu[current] + pred_cpu[winner]
        patt_mem[current] = patt_mem[current] + pred_mem[winner]

    if plans and not plans[-1].vm_ids:
        plans.pop()
    return plans, forced


def run_allocator_pools(
    run_pool,
    pool_vms: Sequence[np.ndarray],
) -> Tuple[List[ServerPlan], np.ndarray, int]:
    """Shared pool-dimension loop of the ``allocate_*_pools`` wrappers.

    Runs ``run_pool(m, idx)`` — which must return ``(plans, forced)``
    with *local* VM ids over ``idx`` — once per non-empty pool, remaps
    plan ids to the global ``idx`` values, and concatenates pool-major.
    One implementation of the remap/concat/forced bookkeeping keeps the
    1-D and 2-D wrappers (and any future allocator) from diverging.

    Returns:
        ``(plans, server_pools, forced)``.
    """
    plans_all: List[ServerPlan] = []
    pools_of: List[int] = []
    forced_total = 0
    for m in range(len(pool_vms)):
        idx = np.asarray(pool_vms[m], dtype=int)
        if idx.size == 0:
            continue
        plans, forced = run_pool(m, idx)
        for plan in plans:
            plan.vm_ids = [int(idx[v]) for v in plan.vm_ids]
        plans_all.extend(plans)
        pools_of.extend([m] * len(plans))
        forced_total += forced
    return plans_all, np.asarray(pools_of, dtype=int), forced_total


def allocate_1d_pools(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    pool_vms: Sequence[np.ndarray],
    cap_cpu_pct: Sequence[float],
    cap_mem_pct: Sequence[float],
    max_servers: Sequence[Optional[int]],
    fast: bool = True,
) -> Tuple[List[ServerPlan], np.ndarray, int]:
    """Algorithm 1 with a pool dimension: one independent run per pool.

    Each pool packs only its assigned VM subset under its own caps and
    server bound; plans come back concatenated pool-major with *global*
    VM ids and a parallel per-plan pool index array.  Because each pool
    is literally a standalone :func:`allocate_1d` call (fast path,
    penalty vectors and all), the result is bit-identical to running
    the pools separately — the contract the heterogeneous engine's
    accounting relies on.

    Args:
        pred_cpu: predicted CPU patterns ``(n_vms, n_samples)``, percent.
        pred_mem: predicted memory patterns, same shape.
        pool_vms: per-pool global VM index arrays (disjoint).
        cap_cpu_pct: per-pool CPU caps.
        cap_mem_pct: per-pool memory caps.
        max_servers: per-pool fleet-size bounds (``None`` = unbounded).
        fast: forwarded to every per-pool run.

    Returns:
        ``(plans, server_pools, forced)``.
    """
    n_pools = len(pool_vms)
    if not (len(cap_cpu_pct) == len(cap_mem_pct) == len(max_servers) == n_pools):
        raise DomainError("per-pool parameters must align with pool_vms")

    def run_pool(m: int, idx: np.ndarray):
        return allocate_1d(
            pred_cpu[idx],
            pred_mem[idx],
            cap_cpu_pct[m],
            cap_mem_pct[m],
            max_servers=max_servers[m],
            fast=fast,
        )

    return run_allocator_pools(run_pool, pool_vms)
