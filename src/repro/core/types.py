"""Shared allocation types: request context, server plans, policy ABC.

Every allocation policy (EPACT and the baselines) consumes an
:class:`AllocationContext` — the predicted per-VM utilization patterns for
the upcoming slot plus the platform models — and produces an
:class:`Allocation`: which VMs go on which servers, under which capacity
cap, and how frequency is driven during the slot (fixed vs. per-sample
governor).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..power.server_power import ServerPowerModel
from ..technology.opp import OppTable

#: Per-pool frequency-selection policies a :class:`PoolSpec` can request.
OPP_POLICIES = ("governor", "fixed-opt")


@dataclass(frozen=True)
class PoolSpec:
    """One homogeneous server pool of a heterogeneous fleet.

    Utilization percentages are **capacity-normalized** (the standard
    cloud-trace convention): a VM at 10% CPU occupies 10% of whichever
    server hosts it, relative to that server's own ``Fmax`` capacity, and
    likewise for memory against the host's DRAM.  That keeps a single
    trace dataset meaningful across platforms; the platforms differ in
    how much *power* a percent costs, which is exactly the axis the
    heterogeneous-fleet experiments sweep.

    Attributes:
        name: pool label (unique within a fleet; used in reports).
        power_model: the pool's per-server power model (provides the
            spec, OPP table and worst-case power evaluations).
        n_servers: physical servers in the pool (placement capacity).
        qos_floor_ghz: optional extra per-pool QoS frequency floor; the
            effective per-VM floor on this pool's servers is the maximum
            of the class floor (from the pool's OPP table) and this.
        opp_policy: ``"governor"`` runs the per-sample DVFS governor on
            this pool's servers (EPACT's mode); ``"fixed-opt"`` pins
            them to the allocation's planned frequency (quantized to
            this pool's OPP grid) for the whole slot.
        perf_platform: calibration key for stall/traffic curves
            (``"ntc"``, ``"thunderx"`` or ``"x86"``; see
            :class:`~repro.perf.simulator.PerformanceSimulator`).
    """

    name: str
    power_model: ServerPowerModel
    n_servers: int
    qos_floor_ghz: Optional[float] = None
    opp_policy: str = "governor"
    perf_platform: str = "ntc"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pool name must be non-empty")
        if not isinstance(self.n_servers, (int, np.integer)):
            raise ConfigurationError(
                f"pool n_servers must be an integer server count, got "
                f"{self.n_servers!r}"
            )
        if self.n_servers < 1:
            raise ConfigurationError(
                f"pool {self.name!r} needs n_servers >= 1, got "
                f"{self.n_servers}"
            )
        if self.opp_policy not in OPP_POLICIES:
            raise ConfigurationError(
                f"opp_policy must be one of {OPP_POLICIES}, "
                f"got {self.opp_policy!r}"
            )
        if self.qos_floor_ghz is not None:
            if self.qos_floor_ghz <= 0.0:
                raise ConfigurationError("qos_floor_ghz must be positive")
            if self.qos_floor_ghz > self.f_max_ghz:
                raise ConfigurationError(
                    f"pool {self.name!r} qos_floor_ghz "
                    f"{self.qos_floor_ghz} GHz exceeds the platform's "
                    f"f_max {self.f_max_ghz} GHz — the floor can never "
                    f"be met; lower it or pick a faster platform"
                )

    @property
    def spec(self):
        """The pool's :class:`~repro.arch.server_spec.ServerSpec`."""
        return self.power_model.spec

    @property
    def opps(self) -> OppTable:
        """The pool's DVFS table."""
        return self.power_model.spec.opps

    @property
    def f_max_ghz(self) -> float:
        """The pool's maximum frequency."""
        return self.power_model.spec.f_max_ghz

    def watts_per_capacity_pct(self) -> float:
        """Worst-case power per percent of capacity at ``F_opt``.

        The fleet's platform-efficiency metric: a pool serving demand at
        its energy-optimal frequency delivers ``100 * F_opt / Fmax``
        percent of capacity per fully loaded server; dividing the
        full-load power by that yields W per served percent — the
        quantity the greedy fleet split orders pools by.
        """
        f_opt = self.power_model.optimal_frequency_ghz()
        capacity_pct = 100.0 * f_opt / self.f_max_ghz
        return self.power_model.full_load_power_w(f_opt) / capacity_pct


@dataclass(frozen=True)
class FleetSpec:
    """A heterogeneous data-center fleet: an ordered tuple of pools.

    Server rows of a fleet allocation are laid out pool-major (all of
    pool 0's planned servers first, then pool 1's, ...); the engine
    reads the actual per-server pool from
    :attr:`Allocation.server_pools`, so pools only bound *capacity*, not
    row positions.

    Attributes:
        pools: the constituent pools, in declaration order.
    """

    pools: Tuple[PoolSpec, ...]

    def __post_init__(self) -> None:
        pools = tuple(self.pools)
        object.__setattr__(self, "pools", pools)
        if not pools:
            raise ConfigurationError("a fleet needs at least one pool")
        for i, pool in enumerate(pools):
            if not isinstance(pool, PoolSpec):
                raise ConfigurationError(
                    f"fleet pools[{i}] is {type(pool).__name__!r}, "
                    "expected a PoolSpec — build pools with "
                    "PoolSpec(name=..., platform=..., n_servers=...)"
                )
        names = [pool.name for pool in pools]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"pool names must be unique, got {names}"
            )

    @property
    def n_pools(self) -> int:
        """Number of pools."""
        return len(self.pools)

    @property
    def total_servers(self) -> int:
        """Physical servers across all pools."""
        return sum(pool.n_servers for pool in self.pools)

    @property
    def single_pool(self) -> bool:
        """True for the degenerate homogeneous fleet."""
        return len(self.pools) == 1

    def efficiency_order(self) -> List[int]:
        """Pool indices, most efficient platform first.

        Pools are ranked by :meth:`PoolSpec.watts_per_capacity_pct`
        (ties keep declaration order) — the order the greedy fleet
        split and the online placement-on-arrival policies fill pools
        in.  The ranking is a pure function of the immutable fleet but
        costs one scalar power sweep per pool, and the callers need it
        once per allocation slot — so it is computed once and cached
        on the instance (``object.__setattr__`` around the frozen
        dataclass; a fresh list is returned each call).
        """
        cached = self.__dict__.get("_efficiency_order")
        if cached is None:
            costs = [
                pool.watts_per_capacity_pct() for pool in self.pools
            ]
            cached = sorted(
                range(len(self.pools)), key=lambda m: (costs[m], m)
            )
            object.__setattr__(self, "_efficiency_order", cached)
        return list(cached)


@dataclass(frozen=True)
class FaultWindow:
    """Fault state the fleet is in for one allocation window.

    A window never straddles a fault-state change: the engines cut
    allocation windows at every :class:`~repro.cloud.faults.FaultSchedule`
    change slot, so one ``FaultWindow`` describes the whole window.

    Attributes:
        available_servers: servers still up (fleet-wide).
        n_failed: servers currently down.
        cap_frac: fleet power budget as a fraction of nominal full-load
            power (1.0 = no cap active).
        pool_available: per-pool up-server counts for heterogeneous
            fleets (tuple so windows compare by value), or ``None``.
    """

    available_servers: int
    n_failed: int = 0
    cap_frac: float = 1.0
    pool_available: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.available_servers < 1:
            raise ConfigurationError(
                "a fault window must leave at least one server "
                "available (the schedule's survivor rule guarantees "
                "this; explicit schedules must respect it too)"
            )
        if self.n_failed < 0:
            raise ConfigurationError("n_failed must be >= 0")
        if not 0.0 < self.cap_frac <= 1.0:
            raise ConfigurationError(
                f"cap_frac must be in (0, 1], got {self.cap_frac}"
            )
        if self.pool_available is not None:
            object.__setattr__(
                self,
                "pool_available",
                tuple(int(a) for a in self.pool_available),
            )


@dataclass(frozen=True)
class AllocationContext:
    """Inputs a policy sees at the beginning of a slot.

    Attributes:
        pred_cpu: predicted CPU utilization, shape ``(n_vms, n_samples)``,
            percent of one server's ``Fmax`` capacity.
        pred_mem: predicted memory utilization, same shape, percent of one
            server's DRAM capacity.
        power_model: the per-server power model (provides the spec, OPPs
            and the worst-case power evaluations EPACT's sizing needs).
        max_servers: number of physical servers available.
        qos_floor_ghz: per-VM minimum frequency meeting QoS (from the VM's
            workload class), length ``n_vms``.  For heterogeneous fleets
            these are the reference pool's floors; pool-aware policies
            and the engine derive the per-pool floors from ``fleet``.
        fleet: the heterogeneous fleet, or ``None`` for the paper's
            homogeneous protocol.  When set, ``power_model`` is the
            fleet's reference (first) pool model and ``max_servers`` its
            total server count; fleet-aware policies must respect the
            per-pool capacities and tag their allocation with
            :attr:`Allocation.server_pools`.
        faults: the fault state for this window, or ``None`` when no
            fault layer is active.  ``max_servers`` (and ``fleet``, when
            set) are already reduced to the available capacity; policies
            that want to react beyond capacity reduction (power-cap
            consolidation, shedding) read the details here.
    """

    pred_cpu: np.ndarray
    pred_mem: np.ndarray
    power_model: ServerPowerModel
    max_servers: int
    qos_floor_ghz: np.ndarray
    fleet: Optional[FleetSpec] = None
    faults: Optional[FaultWindow] = None

    def __post_init__(self) -> None:
        if self.pred_cpu.ndim != 2 or self.pred_cpu.shape != self.pred_mem.shape:
            raise ConfigurationError(
                "pred_cpu and pred_mem must be equal-shape 2-D arrays"
            )
        if self.qos_floor_ghz.shape != (self.pred_cpu.shape[0],):
            raise ConfigurationError(
                "qos_floor_ghz must have one entry per VM"
            )
        if self.max_servers < 1:
            raise ConfigurationError("max_servers must be >= 1")

    @property
    def n_vms(self) -> int:
        """Number of VMs to place."""
        return self.pred_cpu.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per slot (the paper uses 12: one hour of 5-min samples)."""
        return self.pred_cpu.shape[1]

    @property
    def opps(self) -> OppTable:
        """The platform's DVFS table."""
        return self.power_model.spec.opps

    @property
    def f_max_ghz(self) -> float:
        """The platform's maximum frequency."""
        return self.power_model.spec.f_max_ghz


@dataclass
class ServerPlan:
    """One server's share of an allocation.

    Attributes:
        vm_ids: indices of the VMs placed on this server.
        cap_cpu_pct: CPU capacity cap used while packing (percent).
        cap_mem_pct: memory capacity cap used while packing (percent).
        planned_freq_ghz: the frequency a fixed-frequency policy runs this
            server at (ignored by dynamic-governor policies).
    """

    vm_ids: List[int] = field(default_factory=list)
    cap_cpu_pct: float = 100.0
    cap_mem_pct: float = 100.0
    planned_freq_ghz: float = 0.0


@dataclass
class Allocation:
    """A policy's decision for one slot.

    Attributes:
        policy_name: who produced this allocation.
        plans: per-active-server placement plans.
        dynamic_governor: ``True`` if frequency follows the per-sample
            governor (EPACT); ``False`` if servers run at their plan's
            fixed frequency while hosting VMs.
        violation_cap_pct: CPU utilization above which a server counts as
            overutilized for SLA accounting (the policy's effective cap:
            100 for policies that can compensate up to ``Fmax``, the fixed
            cap for fixed-frequency policies).
        case: EPACT's branch for the slot (``"cpu"`` or ``"mem"``), empty
            for other policies.
        f_opt_ghz: the slot-optimal frequency chosen by the policy, if any.
        forced_placements: VMs that did not fit under the policy's caps and
            were force-placed on the least-loaded server.
        server_pools: per-plan fleet pool index (``plans[i]`` is a server
            of pool ``server_pools[i]``), or ``None`` for homogeneous
            allocations.  Heterogeneous engines require it whenever the
            fleet has more than one pool.
        shed_vm_ids: context-row indices of VMs the policy shed for this
            window (degraded operation under faults: no surviving server
            could physically host them).  Shed VMs appear in no plan;
            the engine accounts them as SLA debt instead of raising.
    """

    policy_name: str
    plans: List[ServerPlan]
    dynamic_governor: bool
    violation_cap_pct: float
    case: str = ""
    f_opt_ghz: Optional[float] = None
    forced_placements: int = 0
    server_pools: Optional[np.ndarray] = None
    shed_vm_ids: List[int] = field(default_factory=list)

    @property
    def n_servers(self) -> int:
        """Number of active (non-empty) servers."""
        return sum(1 for plan in self.plans if plan.vm_ids)

    def vm_to_server(self, n_vms: int, missing_ok: bool = False) -> np.ndarray:
        """Dense VM -> server index map (vectorized scatter).

        With ``missing_ok`` unplaced VMs keep ``-1`` (shed VMs under
        degraded operation); otherwise every VM must be placed.

        Raises:
            ConfigurationError: if any VM is placed twice, or unplaced
                while ``missing_ok`` is false.
        """
        mapping = np.full(n_vms, -1, dtype=int)
        if self.plans:
            lengths = [len(plan.vm_ids) for plan in self.plans]
            all_ids = np.fromiter(
                (vm for plan in self.plans for vm in plan.vm_ids),
                dtype=int,
                count=sum(lengths),
            )
            if all_ids.size:
                counts = np.bincount(all_ids, minlength=n_vms)
                if counts.max(initial=0) > 1:
                    dup = int(np.argmax(counts > 1))
                    raise ConfigurationError(
                        f"VM {dup} placed on two servers"
                    )
                servers = np.repeat(np.arange(len(self.plans)), lengths)
                mapping[all_ids] = servers
        if not missing_ok and np.any(mapping < 0):
            missing = int(np.sum(mapping < 0))
            raise ConfigurationError(f"{missing} VMs were not placed")
        return mapping


class AllocationPolicy(ABC):
    """Interface of a periodic VM allocation policy."""

    #: Human-readable policy name used in reports and figures.
    name: str = "policy"

    #: How often the policy re-allocates, in 1-hour slots.  EPACT is
    #: *dynamic* (every slot, the paper's T); the consolidation baselines
    #: follow their original papers' day-ahead protocol (24 slots) —
    #: consolidation implies migration, which is not an hourly operation.
    reallocation_period_slots: int = 1

    @abstractmethod
    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Place all VMs for the upcoming allocation window.

        ``ctx`` carries the predicted patterns for the whole window (12
        samples for per-slot policies, 288 for day-ahead policies).
        Implementations must place *every* VM (force-placing when their
        caps run out, recorded in ``forced_placements``) so the simulation
        can always account power and violations.
        """


def force_place_remaining(
    plans: Sequence[ServerPlan],
    vm_ids: Sequence[int],
    pred_cpu: np.ndarray,
) -> int:
    """Place leftover VMs on the currently least-loaded servers.

    A safety valve for exhausted capacity: real data centers cannot refuse
    VMs, so policies fall back to the least-loaded server and report the
    count.  Returns the number of forced placements.

    Per remaining VM this is one ``np.argmin`` over the load vector plus
    an O(1) update; ties pick the lowest server index, exactly like the
    seed's Python scan over a dict in insertion order, and the peak-load
    arithmetic is unchanged — placements are bit-identical.
    """
    if not vm_ids:
        return 0
    if not plans:
        raise ConfigurationError("cannot force-place without servers")
    loads = np.array(
        [
            float(pred_cpu[plan.vm_ids].sum(axis=0).max())
            if plan.vm_ids
            else 0.0
            for plan in plans
        ]
    )
    ids = np.asarray(list(vm_ids), dtype=int)
    peaks = pred_cpu[ids].max(axis=1)
    for vm_id, peak in zip(ids, peaks):
        target = int(np.argmin(loads))
        plans[target].vm_ids.append(int(vm_id))
        loads[target] += peak
    return len(ids)
