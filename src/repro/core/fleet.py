"""Heterogeneous-fleet allocation: demand split + per-pool EPACT.

The paper answers "Consolidating or Not?" *per platform*: consolidate on
conventional big-core servers, spread on NTC.  A mixed fleet has to do
both at once.  This module adds the placement layer for that regime:

1. :func:`split_fleet_vms` partitions the slot's VMs across pools —
   greedy fill of the most power-efficient platform first (by
   :meth:`~repro.core.types.PoolSpec.watts_per_capacity_pct`), each pool
   bounded by its capacity at the platform's energy-optimal frequency,
   with physical-capacity spill and a least-loaded fallback so every VM
   lands somewhere;
2. :class:`FleetEpactPolicy` runs the paper's EPACT *within* each pool
   (per-pool Eq. 1 sizing against the pool's own cached power tables,
   then Algorithm 1 or 2 under the pool's caps) and concatenates the
   pool plans pool-major, tagging each server row with its pool index
   (:attr:`~repro.core.types.Allocation.server_pools`).

With a single-pool fleet the split is the identity and the policy
reduces *exactly* to :class:`~repro.core.epact.EpactPolicy` — the
bit-identity `tests/test_hetero_equivalence.py` asserts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, DomainError
from .alloc1d import allocate_1d, ffd_order, run_allocator_pools
from .alloc2d import allocate_2d
from .sizing import FleetSizingResult, size_fleet_slot
from .types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    FleetSpec,
)


def split_fleet_vms(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    fleet: FleetSpec,
    f_opt_ghz: Optional[Sequence[Optional[float]]] = None,
    cap_mem_pct: float = 100.0,
) -> List[np.ndarray]:
    """Partition VMs across pools, most efficient platform first.

    VMs are visited in FFD order (decreasing peak predicted CPU, the
    order the per-pool allocators also use) and assigned greedily:

    1. the first pool — in :meth:`FleetSpec.efficiency_order` — whose
       *optimal-frequency* CPU capacity (``n_servers * 100 * F_opt /
       Fmax``) and memory capacity still hold the VM's peaks takes it;
    2. failing that, the first pool with *physical* CPU headroom
       (``n_servers * 100``) and memory headroom takes it (the platform
       rides above its sweet spot rather than displacing demand);
    3. failing even that, the pool with the most remaining physical CPU
       headroom takes it (mirrors the allocators' forced placement).

    Pool loads are tracked as sums of per-VM peaks — an upper bound of
    the true aggregate peak, so the split never *over*-fills a pool the
    per-pool sizing could not serve.  Returns one ascending VM index
    array per pool (disjoint, covering every VM); with a single pool
    this is exactly ``arange(n_vms)``.
    """
    if pred_cpu.ndim != 2 or pred_cpu.shape != pred_mem.shape:
        raise DomainError(
            "pred_cpu and pred_mem must be equal-shape 2-D arrays"
        )
    n_vms = pred_cpu.shape[0]
    if fleet.single_pool:
        return [np.arange(n_vms, dtype=int)]

    order = fleet.efficiency_order()
    f_opts = [
        (
            f_opt_ghz[m]
            if f_opt_ghz is not None and f_opt_ghz[m] is not None
            else pool.power_model.optimal_frequency_ghz()
        )
        for m, pool in enumerate(fleet.pools)
    ]
    cap_opt = np.array(
        [
            pool.n_servers * 100.0 * f_opts[m] / pool.f_max_ghz
            for m, pool in enumerate(fleet.pools)
        ]
    )
    cap_full = np.array(
        [pool.n_servers * 100.0 for pool in fleet.pools]
    )
    cap_mem = np.array(
        [pool.n_servers * cap_mem_pct for pool in fleet.pools]
    )

    cpu_peaks = pred_cpu.max(axis=1)
    mem_peaks = pred_mem.max(axis=1)
    used_cpu = np.zeros(fleet.n_pools)
    used_mem = np.zeros(fleet.n_pools)
    pool_of = np.empty(n_vms, dtype=int)
    for vm in ffd_order(pred_cpu):
        vm = int(vm)
        cpu, mem = cpu_peaks[vm], mem_peaks[vm]
        target = -1
        for m in order:
            if (
                used_cpu[m] + cpu <= cap_opt[m]
                and used_mem[m] + mem <= cap_mem[m]
            ):
                target = m
                break
        if target < 0:
            for m in order:
                if (
                    used_cpu[m] + cpu <= cap_full[m]
                    and used_mem[m] + mem <= cap_mem[m]
                ):
                    target = m
                    break
        if target < 0:
            headroom = cap_full - used_cpu
            target = int(np.argmax(headroom))
        pool_of[vm] = target
        used_cpu[target] += cpu
        used_mem[target] += mem
    return [
        np.flatnonzero(pool_of == m) for m in range(fleet.n_pools)
    ]


def allocate_fleet_slot(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    fleet: FleetSpec,
    sizing: FleetSizingResult,
    fast: bool = True,
) -> Tuple[List, np.ndarray, int]:
    """Pack each pool's VM subset with the pool's own EPACT branch.

    Per pool, the sizing's case picks Algorithm 1 (CPU-dominant) or
    Algorithm 2 (memory-dominant) under the pool's caps and server
    bound; the resulting plans carry *global* VM ids and the pool's
    planned frequency.  Returns ``(plans, server_pools, forced)`` with
    plans concatenated pool-major.  The shared
    :func:`~repro.core.alloc1d.run_allocator_pools` loop owns the
    global-id remap and pool-major bookkeeping (one implementation for
    this and the ``allocate_*_pools`` wrappers), and every pool is a
    standalone allocator call — so the result is bit-identical to a
    per-pool reference by construction (``fast=False`` still reaches
    the seed allocator loops underneath).
    """
    def run_pool(m: int, idx: np.ndarray):
        pool_sizing = sizing.pool_sizings[m]
        pool = fleet.pools[m]
        if pool_sizing.case == "cpu":
            plans, forced = allocate_1d(
                pred_cpu[idx],
                pred_mem[idx],
                cap_cpu_pct=pool_sizing.cap_cpu_pct,
                cap_mem_pct=pool_sizing.cap_mem_pct,
                max_servers=pool.n_servers,
                fast=fast,
            )
        else:
            plans, forced = allocate_2d(
                pred_cpu[idx],
                pred_mem[idx],
                n_servers=pool_sizing.n_servers,
                cap_cpu_pct=pool_sizing.cap_cpu_pct,
                cap_mem_pct=pool_sizing.cap_mem_pct,
                max_servers=pool.n_servers,
                fast=fast,
            )
        for plan in plans:
            plan.planned_freq_ghz = pool_sizing.f_opt_ghz
        return plans, forced

    # run_allocator_pools skips empty pools, which is exactly the set
    # size_fleet_slot left unsized (pool_sizings[m] is None iff the
    # assignment is empty), and owns the global-id remap and pool-major
    # bookkeeping for every pool-dimension caller.
    return run_allocator_pools(run_pool, sizing.assignments)


class FleetEpactPolicy(AllocationPolicy):
    """EPACT over a heterogeneous fleet (see module docstring).

    Args:
        f_opt_ghz: optional per-pool energy-optimal frequency overrides
            (``None`` entries are computed from the pool's power model
            and cached).
        mem_headroom_pct: memory headroom kept per server, as in
            :class:`~repro.core.epact.EpactPolicy`.
        fast: route the sizing sweep and the per-pool allocators
            through their fast paths (default); ``False`` is the
            end-to-end reference oracle.
    """

    name = "EPACT-FLEET"

    def __init__(
        self,
        f_opt_ghz: Optional[Sequence[Optional[float]]] = None,
        mem_headroom_pct: float = 10.0,
        fast: bool = True,
    ):
        if not (0.0 <= mem_headroom_pct < 100.0):
            raise ConfigurationError(
                "mem_headroom_pct must be in [0, 100)"
            )
        self._f_opt_override = (
            list(f_opt_ghz) if f_opt_ghz is not None else None
        )
        self._mem_cap_pct = 100.0 - mem_headroom_pct
        self._fast = fast
        # One-entry cache keyed by the fleet object itself (holding the
        # reference keeps ids stable): F_opt per pool is a ~n_opps-long
        # scalar power sweep, not per-slot work.
        self._cached_f_opts: Optional[
            Tuple[FleetSpec, List[float]]
        ] = None

    def _pool_f_opts(self, fleet: FleetSpec) -> List[float]:
        """Per-pool F_opt, computed once per fleet instance."""
        if (
            self._cached_f_opts is not None
            and self._cached_f_opts[0] is fleet
        ):
            return self._cached_f_opts[1]
        if self._f_opt_override is not None:
            if len(self._f_opt_override) != fleet.n_pools:
                raise ConfigurationError(
                    "f_opt_ghz must have one entry per pool"
                )
            f_opts = [
                (
                    override
                    if override is not None
                    else pool.power_model.optimal_frequency_ghz()
                )
                for override, pool in zip(
                    self._f_opt_override, fleet.pools
                )
            ]
        else:
            f_opts = [
                pool.power_model.optimal_frequency_ghz()
                for pool in fleet.pools
            ]
        self._cached_f_opts = (fleet, f_opts)
        return f_opts

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Split, size and pack one slot across the fleet's pools."""
        fleet = ctx.fleet
        if fleet is None:
            raise ConfigurationError(
                "FleetEpactPolicy needs a fleet context; pass "
                "fleet=FleetSpec(...) to the simulation (or use "
                "EpactPolicy on a homogeneous data center)"
            )
        f_opts = self._pool_f_opts(fleet)
        assignments = split_fleet_vms(
            ctx.pred_cpu,
            ctx.pred_mem,
            fleet,
            f_opt_ghz=f_opts,
            cap_mem_pct=self._mem_cap_pct,
        )
        sizing = size_fleet_slot(
            ctx.pred_cpu,
            ctx.pred_mem,
            fleet,
            assignments,
            f_opt_ghz=f_opts,
            cap_mem_pct=self._mem_cap_pct,
            fast=self._fast,
        )
        plans, server_pools, forced = allocate_fleet_slot(
            ctx.pred_cpu, ctx.pred_mem, fleet, sizing, fast=self._fast
        )
        occupied = [
            s for s in sizing.pool_sizings if s is not None
        ]
        f_opt = occupied[0].f_opt_ghz if len(occupied) == 1 else None
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=True,
            violation_cap_pct=100.0,
            case=sizing.case,
            f_opt_ghz=f_opt,
            forced_placements=forced,
            server_pools=server_pools,
        )
