"""Performance substrate: the analytic gem5 stand-in.

Implements the execution-time model ``T(f) = a/f + b``, its calibration
against the paper's Table I and Fig. 2 anchors, the QoS degradation model,
and the :class:`PerformanceSimulator` facade used by experiments.
"""

from .calibration import (
    CalibratedWorkload,
    calibrate_all,
    calibrate_class,
    x86_reference_times,
)
from .qos import QosModel
from .simulator import (
    PerformanceSimulator,
    SweepPoint,
    traffic_coefficients,
)
from .timing import (
    MicroarchDecomposition,
    TimingParameters,
    instructions_per_second,
)
from .workload import ALL_MEMORY_CLASSES, MemoryClass, WorkloadProfile

__all__ = [
    "ALL_MEMORY_CLASSES",
    "CalibratedWorkload",
    "MemoryClass",
    "MicroarchDecomposition",
    "PerformanceSimulator",
    "QosModel",
    "SweepPoint",
    "TimingParameters",
    "WorkloadProfile",
    "calibrate_all",
    "calibrate_class",
    "instructions_per_second",
    "traffic_coefficients",
    "x86_reference_times",
]
