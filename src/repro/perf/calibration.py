"""Calibration of the timing model against the paper's published anchors.

The paper gives, per workload class:

* execution time on the NTC server at 2.0 GHz          (Table I),
* execution time on Cavium ThunderX at 2.0 GHz         (Table I),
* execution time on the x86 reference at 2.66 GHz      (Table I),
* the lowest frequency still meeting the 2x QoS limit  (Fig. 2 discussion:
  1.2 GHz for low-mem, 1.8 GHz for mid/high-mem).

For the NTC server that is *two* points on the ``T(f) = a/f + b`` curve, so
``(a, b)`` is solved exactly::

    a = (T_qos - T_2GHz) / (1/f_qos - 1/2.0)
    b = T_2GHz - a / 2.0

For ThunderX and x86 the paper gives a single point; the compute component
is scaled from the NTC solution by the ratio of core base CPIs (in-order
ThunderX pays a higher CPI; the wide x86 core a lower one), and the memory
component absorbs the remainder — capturing each platform's memory
subsystem quality, which is exactly the axis the paper redesigned
(Section III-A).

The microarchitectural decomposition (instruction counts, DRAM access
rates) is then derived from the NTC solution and shared across platforms,
since all platforms run the same jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..anchors import (
    COMPARISON_FREQ_GHZ,
    QOS_MIN_FREQ_GHZ,
    TABLE_I,
    X86_REFERENCE_FREQ_GHZ,
)
from ..arch.platforms import cavium_thunderx, intel_xeon_x5650, ntc_server
from ..arch.server_spec import ServerSpec
from ..errors import CalibrationError
from .timing import MicroarchDecomposition, TimingParameters
from .workload import ALL_MEMORY_CLASSES, MemoryClass, WorkloadProfile


@dataclass(frozen=True)
class CalibratedWorkload:
    """Calibration output for one workload class.

    Attributes:
        profile: platform-independent workload description (instruction
            count, DRAM access rate).
        ntc: timing curve on the proposed NTC server.
        thunderx: timing curve on Cavium ThunderX.
        x86: timing curve on the Intel Xeon X5650 reference.
        decomposition: microarchitectural decomposition of the NTC curve.
    """

    profile: WorkloadProfile
    ntc: TimingParameters
    thunderx: TimingParameters
    x86: TimingParameters
    decomposition: MicroarchDecomposition

    def timing_for(self, platform_name: str) -> TimingParameters:
        """Timing curve by canonical platform key (``ntc``/``thunderx``/``x86``).

        Raises:
            KeyError: for unknown platform keys.
        """
        curves = {"ntc": self.ntc, "thunderx": self.thunderx, "x86": self.x86}
        return curves[platform_name]


def _solve_two_point(
    t_at_2ghz_s: float, qos_limit_s: float, f_qos_ghz: float
) -> TimingParameters:
    """Solve ``(a, b)`` from the 2 GHz point and the QoS crossover point."""
    slope = 1.0 / f_qos_ghz - 1.0 / COMPARISON_FREQ_GHZ
    if slope <= 0.0:
        raise CalibrationError(
            "QoS crossover frequency must be below the 2 GHz anchor"
        )
    a = (qos_limit_s - t_at_2ghz_s) / slope
    b = t_at_2ghz_s - a / COMPARISON_FREQ_GHZ
    if a <= 0.0 or b < 0.0:
        raise CalibrationError(
            f"two-point solve produced non-physical parameters "
            f"(a={a:.4f}, b={b:.4f}); check the anchors"
        )
    return TimingParameters(compute_seconds_ghz=a, memory_seconds=b)


def _scale_single_point(
    ntc: TimingParameters,
    cpi_ratio: float,
    t_anchor_s: float,
    f_anchor_ghz: float,
    platform_label: str,
) -> TimingParameters:
    """Solve ``(a, b)`` for a platform with one anchor point.

    ``a`` is the NTC compute component scaled by the platform/A57 base-CPI
    ratio; ``b`` is whatever remains of the anchor time.
    """
    a = ntc.compute_seconds_ghz * cpi_ratio
    b = t_anchor_s - a / f_anchor_ghz
    if b < 0.0:
        raise CalibrationError(
            f"{platform_label}: anchor time {t_anchor_s}s is too small for "
            f"the scaled compute component (a/f = {a / f_anchor_ghz:.4f}s)"
        )
    return TimingParameters(compute_seconds_ghz=a, memory_seconds=b)


def calibrate_class(
    mem_class: MemoryClass,
    ntc_platform: ServerSpec | None = None,
    thunderx_platform: ServerSpec | None = None,
    x86_platform: ServerSpec | None = None,
) -> CalibratedWorkload:
    """Calibrate one workload class against the Table I / Fig. 2 anchors."""
    ntc_spec = ntc_platform if ntc_platform is not None else ntc_server()
    tx_spec = (
        thunderx_platform
        if thunderx_platform is not None
        else cavium_thunderx()
    )
    x86_spec = (
        x86_platform if x86_platform is not None else intel_xeon_x5650()
    )

    row = TABLE_I[mem_class.label]
    f_qos = QOS_MIN_FREQ_GHZ[mem_class.label]

    ntc = _solve_two_point(row["ntc_2ghz_s"], row["qos_limit_s"], f_qos)

    a57_cpi = ntc_spec.core.base_cpi
    thunderx = _scale_single_point(
        ntc,
        tx_spec.core.base_cpi / a57_cpi,
        row["thunderx_2ghz_s"],
        COMPARISON_FREQ_GHZ,
        f"ThunderX/{mem_class.label}",
    )
    x86 = _scale_single_point(
        ntc,
        x86_spec.core.base_cpi / a57_cpi,
        row["x86_2_66ghz_s"],
        X86_REFERENCE_FREQ_GHZ,
        f"x86/{mem_class.label}",
    )

    instructions = ntc.compute_seconds_ghz * 1.0e9 / a57_cpi
    dram_latency_ns = ntc_spec.dram.access_latency_ns
    blocking = ntc_spec.core.memory_blocking_factor
    denom = instructions * dram_latency_ns * 1.0e-9 * blocking
    accesses_per_instr = ntc.memory_seconds / denom if denom > 0.0 else 0.0

    decomposition = MicroarchDecomposition(
        instructions=instructions,
        base_cpi=a57_cpi,
        dram_accesses_per_instr=accesses_per_instr,
        dram_latency_ns=dram_latency_ns,
        blocking_factor=blocking,
    )
    profile = WorkloadProfile(
        mem_class=mem_class,
        instructions=instructions,
        dram_accesses_per_instr=accesses_per_instr,
    )
    return CalibratedWorkload(
        profile=profile,
        ntc=ntc,
        thunderx=thunderx,
        x86=x86,
        decomposition=decomposition,
    )


def calibrate_all() -> Dict[MemoryClass, CalibratedWorkload]:
    """Calibrate all three workload classes.

    Returns a mapping from :class:`MemoryClass` to its calibration; this is
    the object the performance simulator, QoS model and data-center
    simulator all build on.
    """
    return {mc: calibrate_class(mc) for mc in ALL_MEMORY_CLASSES}


def x86_reference_times() -> Mapping[str, float]:
    """The x86 baseline execution times (Table I, used as QoS reference)."""
    return {
        label: row["x86_2_66ghz_s"] for label, row in TABLE_I.items()
    }
