"""QoS degradation model (paper Section III-C).

The virtualized banking jobs are batch workloads; their QoS constraint is a
maximum allowed *degradation* — execution time no more than 2x the baseline
on the 16-core Intel Xeon X5650 at 2.66 GHz.

This module computes, per workload class:

* the degradation factor at any frequency on any calibrated platform,
* whether a frequency meets the QoS limit,
* the minimum DVFS frequency meeting QoS — the per-class frequency floor
  the online governor enforces (paper Section VI-B-3: 1.2 GHz for low-mem,
  1.8 GHz for mid/high-mem on the NTC server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..anchors import QOS_DEGRADATION_LIMIT, TABLE_I
from ..errors import InfeasibleError
from ..technology.opp import OppTable
from .calibration import CalibratedWorkload
from .timing import TimingParameters
from .workload import MemoryClass


@dataclass(frozen=True)
class QosModel:
    """QoS evaluation for one set of calibrated workloads.

    Attributes:
        calibrations: per-class calibration results.
        degradation_limit: maximum allowed slowdown (the paper's 2x).
    """

    calibrations: Mapping[MemoryClass, CalibratedWorkload]
    degradation_limit: float = QOS_DEGRADATION_LIMIT

    # -- reference ----------------------------------------------------------

    def reference_time_s(self, mem_class: MemoryClass) -> float:
        """x86 baseline execution time for a class (Table I)."""
        return TABLE_I[mem_class.label]["x86_2_66ghz_s"]

    def qos_limit_s(self, mem_class: MemoryClass) -> float:
        """Absolute execution-time limit (2x the x86 baseline)."""
        return self.reference_time_s(mem_class) * self.degradation_limit

    # -- evaluation ---------------------------------------------------------

    def degradation(
        self,
        mem_class: MemoryClass,
        freq_ghz: float,
        timing: TimingParameters | None = None,
    ) -> float:
        """Execution-time degradation factor w.r.t. the x86 baseline.

        ``timing`` defaults to the NTC-server curve for the class; pass the
        ThunderX curve (etc.) to evaluate other platforms.
        """
        curve = timing if timing is not None else self.calibrations[mem_class].ntc
        return curve.execution_time_s(freq_ghz) / self.reference_time_s(
            mem_class
        )

    def normalized_to_limit(
        self,
        mem_class: MemoryClass,
        freq_ghz: float,
        timing: TimingParameters | None = None,
    ) -> float:
        """Execution time normalized to the QoS limit (the paper's Fig. 2).

        Values at or below 1.0 meet QoS.
        """
        return self.degradation(mem_class, freq_ghz, timing) / (
            self.degradation_limit
        )

    def meets_qos(
        self,
        mem_class: MemoryClass,
        freq_ghz: float,
        timing: TimingParameters | None = None,
        tolerance: float = 1.0e-9,
    ) -> bool:
        """Whether running at ``freq_ghz`` satisfies the 2x constraint."""
        return (
            self.degradation(mem_class, freq_ghz, timing)
            <= self.degradation_limit + tolerance
        )

    def min_qos_frequency(
        self, mem_class: MemoryClass, opps: OppTable
    ) -> float:
        """Lowest OPP frequency meeting QoS for the class (the DVFS floor).

        Raises:
            InfeasibleError: if no OPP in the table meets QoS.
        """
        for freq in opps.frequencies_ghz:
            if self.meets_qos(mem_class, freq):
                return freq
        raise InfeasibleError(
            f"{mem_class.label}: no OPP up to {opps.f_max_ghz} GHz meets "
            f"the {self.degradation_limit}x QoS limit"
        )

    def qos_floors(self, opps: OppTable) -> Dict[MemoryClass, float]:
        """Per-class DVFS frequency floors on a given OPP table."""
        return {
            mem_class: self.min_qos_frequency(mem_class, opps)
            for mem_class in self.calibrations
        }
