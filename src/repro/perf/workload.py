"""Workload classes and profiles (paper Section III-B).

The paper's applications are virtualized banking-style batch jobs split
into three categories by per-VM memory usage:

* ``low-mem``  — ~70 MB average footprint (CPU-bounded),
* ``mid-mem``  — ~255 MB,
* ``high-mem`` — ~435 MB (memory-bounded).

A :class:`WorkloadProfile` carries the microarchitecture-independent
description of one class: how many instructions a job executes and how much
DRAM traffic it generates per instruction.  Per-platform execution times
come from combining a profile with a platform's
:class:`~repro.perf.timing.TimingParameters` (see
:mod:`repro.perf.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..anchors import MEMORY_FOOTPRINT_MB, MEMORY_FOOTPRINT_PCT
from ..errors import ConfigurationError


class MemoryClass(Enum):
    """The paper's three memory-footprint workload categories."""

    LOW = "low-mem"
    MID = "mid-mem"
    HIGH = "high-mem"

    @property
    def label(self) -> str:
        """The paper's name for the class, e.g. ``"low-mem"``."""
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "MemoryClass":
        """Parse a class from its paper label.

        Raises:
            ConfigurationError: if the label is not one of the three classes.
        """
        for member in cls:
            if member.value == label:
                return member
        raise ConfigurationError(
            f"unknown memory class {label!r}; expected one of "
            f"{[m.value for m in cls]}"
        )

    @property
    def footprint_mb(self) -> float:
        """Average per-VM memory footprint in MB (paper Section III-B)."""
        return MEMORY_FOOTPRINT_MB[self.value]

    @property
    def footprint_pct(self) -> float:
        """Footprint as the paper's percentage of a 1GB VM allocation."""
        return MEMORY_FOOTPRINT_PCT[self.value]


ALL_MEMORY_CLASSES = (MemoryClass.LOW, MemoryClass.MID, MemoryClass.HIGH)
"""The three classes in the paper's presentation order."""


@dataclass(frozen=True)
class WorkloadProfile:
    """Platform-independent characterization of one workload class.

    Attributes:
        mem_class: which of the paper's three categories this is.
        instructions: dynamic instruction count of one job on one core.
        dram_accesses_per_instr: off-chip (post-LLC) accesses per
            instruction; multiplied by the line size this gives the DRAM
            traffic used by the memory power model.
        line_bytes: bytes moved per DRAM access (one cache line).
    """

    mem_class: MemoryClass
    instructions: float
    dram_accesses_per_instr: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.instructions <= 0.0:
            raise ConfigurationError(
                f"{self.mem_class.label}: instruction count must be positive"
            )
        if self.dram_accesses_per_instr < 0.0:
            raise ConfigurationError(
                f"{self.mem_class.label}: DRAM access rate must be >= 0"
            )
        if self.line_bytes <= 0:
            raise ConfigurationError(
                f"{self.mem_class.label}: line size must be positive"
            )

    @property
    def label(self) -> str:
        """The paper's name for the class."""
        return self.mem_class.label

    @property
    def dram_bytes_per_instr(self) -> float:
        """Average DRAM bytes moved per executed instruction."""
        return self.dram_accesses_per_instr * self.line_bytes

    @property
    def dram_apki(self) -> float:
        """DRAM accesses per kilo-instruction (the usual reporting unit)."""
        return self.dram_accesses_per_instr * 1000.0

    @property
    def footprint_mb(self) -> float:
        """Average per-VM memory footprint in MB."""
        return self.mem_class.footprint_mb
