"""Analytic execution-time model (the gem5 substitute).

The paper characterizes each (platform, workload-class) pair through gem5
simulations reduced to execution-time-versus-frequency curves.  Those
curves have a universal two-component structure that our model makes
explicit::

    T(f) = a / f + b

* ``a`` (seconds x GHz) is the *compute* component: instruction count times
  base CPI; it scales inversely with clock frequency.
* ``b`` (seconds) is the *memory* component: time spent waiting on DRAM,
  which does not scale with core frequency.  ``b`` is the physical origin
  of every NTC trend in the paper — it is why execution time degrades
  sub-linearly when frequency drops (Fig. 2) and why stall (wait-for-
  memory) cycles grow with frequency (Fig. 3's efficiency roll-off).

The decomposition in terms of microarchitecture is::

    a = N_instr * CPI_base / 1e9
    b = N_instr * APIns * t_dram * B

with ``APIns`` the DRAM accesses per instruction, ``t_dram`` the average
access latency and ``B`` the core's memory blocking factor (1.0 for
in-order cores, <1 for out-of-order cores that overlap misses).
:mod:`repro.perf.calibration` solves these against the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class TimingParameters:
    """Two-parameter execution-time curve for one (platform, class) pair.

    Attributes:
        compute_seconds_ghz: the ``a`` coefficient in seconds x GHz.
        memory_seconds: the ``b`` coefficient in seconds.
    """

    compute_seconds_ghz: float
    memory_seconds: float

    def __post_init__(self) -> None:
        if self.compute_seconds_ghz <= 0.0:
            raise ConfigurationError("compute component must be positive")
        if self.memory_seconds < 0.0:
            raise ConfigurationError("memory component must be >= 0")

    # -- core curve ---------------------------------------------------------

    def execution_time_s(self, freq_ghz: float) -> float:
        """Job execution time in seconds at clock frequency ``freq_ghz``.

        Raises:
            DomainError: if the frequency is not positive.
        """
        if freq_ghz <= 0.0:
            raise DomainError(f"frequency must be positive, got {freq_ghz}")
        return self.compute_seconds_ghz / freq_ghz + self.memory_seconds

    def stall_fraction(self, freq_ghz: float) -> float:
        """Fraction of wall time spent waiting on memory at ``freq_ghz``.

        This is the wait-for-memory (WFM) residency used by the power model
        (the paper's 24% WFM power discount applies to this fraction).
        Grows with frequency: the compute part shrinks while the memory
        part stays constant.
        """
        total = self.execution_time_s(freq_ghz)
        if total == 0.0:
            return 0.0
        return self.memory_seconds / total

    def speedup(self, from_freq_ghz: float, to_freq_ghz: float) -> float:
        """Execution-time ratio ``T(from) / T(to)``.

        For a memory-bound workload this is well below the naive
        ``to/from`` frequency ratio.
        """
        return self.execution_time_s(from_freq_ghz) / self.execution_time_s(
            to_freq_ghz
        )

    # -- derived quantities ---------------------------------------------------

    def frequency_for_time(self, target_time_s: float) -> float:
        """Clock frequency (GHz) at which the job takes ``target_time_s``.

        Inverts ``T(f) = a/f + b``.  Used to find QoS crossover
        frequencies.

        Raises:
            DomainError: if the target time is not achievable (at or below
                the memory floor ``b``).
        """
        if target_time_s <= self.memory_seconds:
            raise DomainError(
                f"target time {target_time_s}s is at or below the memory "
                f"floor {self.memory_seconds}s; no frequency achieves it"
            )
        return self.compute_seconds_ghz / (target_time_s - self.memory_seconds)

    @property
    def memory_floor_s(self) -> float:
        """Asymptotic execution time at infinite frequency (= ``b``)."""
        return self.memory_seconds


@dataclass(frozen=True)
class MicroarchDecomposition:
    """Microarchitectural decomposition of a :class:`TimingParameters`.

    Produced by calibration; documents how the fitted ``(a, b)`` curve maps
    onto instruction count, base CPI, DRAM access rate, latency and the
    core's blocking factor.
    """

    instructions: float
    base_cpi: float
    dram_accesses_per_instr: float
    dram_latency_ns: float
    blocking_factor: float

    def to_timing(self) -> TimingParameters:
        """Recompose the analytic curve from the microarchitecture terms."""
        compute = self.instructions * self.base_cpi / 1.0e9
        memory = (
            self.instructions
            * self.dram_accesses_per_instr
            * self.dram_latency_ns
            * 1.0e-9
            * self.blocking_factor
        )
        return TimingParameters(
            compute_seconds_ghz=compute, memory_seconds=memory
        )


def instructions_per_second(
    timing: TimingParameters, instructions: float, freq_ghz: float
) -> float:
    """Useful instructions per second (UIPS) of one core running a job.

    ``UIPS = N_instr / T(f)``; the chip-level UIPS of the paper's Fig. 3 is
    this multiplied by the core count (all cores running one job each).
    """
    if instructions <= 0.0:
        raise DomainError("instruction count must be positive")
    return instructions / timing.execution_time_s(freq_ghz)
