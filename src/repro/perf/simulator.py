"""Performance simulator facade (the repository's gem5 stand-in).

Wraps calibration + timing into the operations the experiments need:

* execution time of any class on any of the three platforms (Table I),
* frequency sweeps of normalized execution time (Fig. 2),
* chip-level UIPS and DRAM traffic at any operating point (feeding the
  efficiency analysis of Fig. 3 and the DRAM power model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..arch.platforms import cavium_thunderx, intel_xeon_x5650, ntc_server
from ..arch.server_spec import ServerSpec
from ..errors import ConfigurationError
from .calibration import CalibratedWorkload, calibrate_all
from .qos import QosModel
from .timing import TimingParameters
from .workload import ALL_MEMORY_CLASSES, MemoryClass

_PLATFORM_KEYS = ("ntc", "thunderx", "x86")


@dataclass(frozen=True)
class SweepPoint:
    """One point of an execution-time/QoS frequency sweep."""

    freq_ghz: float
    execution_time_s: float
    degradation: float
    normalized_to_qos_limit: float
    meets_qos: bool


class PerformanceSimulator:
    """Execution-time and throughput queries over calibrated workloads.

    Args:
        calibrations: per-class calibration results; defaults to
            :func:`repro.perf.calibration.calibrate_all`.
    """

    def __init__(
        self,
        calibrations: Mapping[MemoryClass, CalibratedWorkload] | None = None,
    ):
        self._calibrations = (
            dict(calibrations) if calibrations is not None else calibrate_all()
        )
        self._qos = QosModel(calibrations=self._calibrations)
        self._platforms: Dict[str, ServerSpec] = {
            "ntc": ntc_server(),
            "thunderx": cavium_thunderx(),
            "x86": intel_xeon_x5650(),
        }

    # -- accessors ----------------------------------------------------------

    @property
    def qos(self) -> QosModel:
        """The QoS model bound to these calibrations."""
        return self._qos

    @property
    def calibrations(self) -> Mapping[MemoryClass, CalibratedWorkload]:
        """Per-class calibration results."""
        return self._calibrations

    def platform(self, key: str) -> ServerSpec:
        """Platform spec by canonical key (``ntc``/``thunderx``/``x86``)."""
        if key not in self._platforms:
            raise ConfigurationError(
                f"unknown platform {key!r}; expected one of {_PLATFORM_KEYS}"
            )
        return self._platforms[key]

    def timing(
        self, mem_class: MemoryClass, platform: str = "ntc"
    ) -> TimingParameters:
        """Timing curve for a class on a platform."""
        return self._calibrations[mem_class].timing_for(platform)

    # -- single-point queries -------------------------------------------------

    def execution_time_s(
        self, mem_class: MemoryClass, freq_ghz: float, platform: str = "ntc"
    ) -> float:
        """Job execution time at a frequency on a platform."""
        return self.timing(mem_class, platform).execution_time_s(freq_ghz)

    def stall_fraction(
        self, mem_class: MemoryClass, freq_ghz: float, platform: str = "ntc"
    ) -> float:
        """Wait-for-memory residency at an operating point."""
        return self.timing(mem_class, platform).stall_fraction(freq_ghz)

    def chip_uips(
        self, mem_class: MemoryClass, freq_ghz: float, platform: str = "ntc"
    ) -> float:
        """Chip-level useful instructions per second (all cores busy).

        The paper's Fig. 3 metric numerator: one job per core, so chip UIPS
        is ``n_cores * N_instr / T(f)``.
        """
        spec = self.platform(platform)
        cal = self._calibrations[mem_class]
        t = cal.timing_for(platform).execution_time_s(freq_ghz)
        return spec.n_cores * cal.profile.instructions / t

    def dram_bytes_per_second(
        self, mem_class: MemoryClass, freq_ghz: float, platform: str = "ntc"
    ) -> float:
        """Chip-level DRAM traffic at an operating point (all cores busy)."""
        cal = self._calibrations[mem_class]
        uips = self.chip_uips(mem_class, freq_ghz, platform)
        return uips * cal.profile.dram_bytes_per_instr

    # -- sweeps -------------------------------------------------------------

    def qos_sweep(
        self,
        mem_class: MemoryClass,
        freqs_ghz: Sequence[float],
        platform: str = "ntc",
    ) -> List[SweepPoint]:
        """Execution time, degradation and QoS verdict over a frequency grid.

        This regenerates one series of the paper's Fig. 2.
        """
        timing = self.timing(mem_class, platform)
        points: List[SweepPoint] = []
        for freq in freqs_ghz:
            t = timing.execution_time_s(freq)
            degradation = self._qos.degradation(mem_class, freq, timing)
            points.append(
                SweepPoint(
                    freq_ghz=freq,
                    execution_time_s=t,
                    degradation=degradation,
                    normalized_to_qos_limit=degradation
                    / self._qos.degradation_limit,
                    meets_qos=self._qos.meets_qos(mem_class, freq, timing),
                )
            )
        return points

    def table1(self) -> Dict[str, Dict[str, float]]:
        """Regenerate the structure of the paper's Table I from the model.

        Returns per-class execution times on x86 @2.66 GHz, the 2x QoS
        limit, ThunderX @2 GHz and the NTC server @2 GHz.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for mem_class in ALL_MEMORY_CLASSES:
            t_x86 = self.execution_time_s(mem_class, 2.66, "x86")
            rows[mem_class.label] = {
                "x86_2_66ghz_s": t_x86,
                "qos_limit_s": t_x86 * self._qos.degradation_limit,
                "thunderx_2ghz_s": self.execution_time_s(
                    mem_class, 2.0, "thunderx"
                ),
                "ntc_2ghz_s": self.execution_time_s(mem_class, 2.0, "ntc"),
            }
        return rows

    def speedup_ntc_over_thunderx(
        self, mem_class: MemoryClass, freq_ghz: float = 2.0
    ) -> float:
        """NTC-vs-ThunderX speedup at a frequency (paper: 1.25x-1.76x)."""
        t_tx = self.execution_time_s(mem_class, freq_ghz, "thunderx")
        t_ntc = self.execution_time_s(mem_class, freq_ghz, "ntc")
        return t_tx / t_ntc


@dataclass(frozen=True)
class ClassMixTraffic:
    """DRAM traffic and stall coefficients for a mix of workload classes.

    Used by the data-center power accounting: a server hosting VMs of
    several classes sees DRAM traffic proportional to each VM's CPU
    utilization, with per-class coefficients precomputed at ``Fmax``.

    Attributes:
        bytes_per_util_point: per-class DRAM bytes/s generated by one
            utilization point (1% of a server's Fmax capacity).
        stall_fraction_at: callable-free per-class stall tables are not
            stored here; the engine queries the simulator directly.
    """

    bytes_per_util_point: Mapping[MemoryClass, float] = field(
        default_factory=dict
    )


def traffic_coefficients(
    sim: PerformanceSimulator, platform: str = "ntc"
) -> Dict[MemoryClass, float]:
    """Per-class DRAM bytes/s per utilization point at ``Fmax``.

    A VM with CPU utilization ``u`` (percent of the server's Fmax capacity)
    contributes ``u * coefficient`` bytes/s of DRAM traffic.  The
    coefficient is the full-chip traffic at ``Fmax`` divided by 100.
    """
    spec = sim.platform(platform)
    coeffs: Dict[MemoryClass, float] = {}
    for mem_class in ALL_MEMORY_CLASSES:
        full = sim.dram_bytes_per_second(
            mem_class, spec.f_max_ghz, platform
        )
        coeffs[mem_class] = full / 100.0
    return coeffs
