"""Server architecture substrate: cores, caches, DRAM and platforms.

Models the structural side of the paper's Section III-A: the proposed NTC
server, the rejected Cavium ThunderX starting point, and the two Intel
reference platforms.
"""

from .cache import (
    CacheHierarchy,
    CacheLevel,
    e5_2620_cache_hierarchy,
    ntc_cache_hierarchy,
    thunderx_cache_hierarchy,
    xeon_x5650_cache_hierarchy,
)
from .core import (
    CoreModel,
    cortex_a53_thunderx,
    cortex_a57,
    xeon_sandybridge,
    xeon_westmere,
)
from .dram import (
    DramModel,
    ddr3_1333_e5_2620,
    ddr3_1333_x5650,
    ddr4_2133_thunderx,
    ddr4_2400_16gb,
)
from .platforms import (
    cavium_thunderx,
    intel_e5_2620,
    intel_xeon_x5650,
    ntc_server,
)
from .server_spec import ServerSpec

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CoreModel",
    "DramModel",
    "ServerSpec",
    "cavium_thunderx",
    "cortex_a53_thunderx",
    "cortex_a57",
    "ddr3_1333_e5_2620",
    "ddr3_1333_x5650",
    "ddr4_2133_thunderx",
    "ddr4_2400_16gb",
    "e5_2620_cache_hierarchy",
    "intel_e5_2620",
    "intel_xeon_x5650",
    "ntc_cache_hierarchy",
    "ntc_server",
    "thunderx_cache_hierarchy",
    "xeon_sandybridge",
    "xeon_westmere",
    "xeon_x5650_cache_hierarchy",
]
