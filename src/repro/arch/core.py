"""Core microarchitecture descriptors.

The paper contrasts three core designs:

* the in-order cores of the original Cavium ThunderX (Cortex-A53-class),
  which it rejects for being 1.35-1.5x slower than x86 on the target
  applications;
* the out-of-order ARMv8 Cortex-A57 cores adopted for the proposed NTC
  server (Section III-A);
* the out-of-order x86 cores of the Intel reference platforms.

For the analytic timing model (:mod:`repro.perf.timing`) a core is
summarized by two quantities:

* ``base_cpi`` — cycles per instruction when memory behaves ideally
  (pipeline, issue width, branch behaviour folded in);
* ``memory_blocking_factor`` — the fraction of DRAM latency the core
  actually stalls for.  An in-order core blocks on essentially the full
  latency (factor ≈ 1.0); an out-of-order core overlaps misses through its
  instruction window and MLP, exposing only part of it (factor < 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CoreModel:
    """Analytic descriptor of one CPU core design.

    Attributes:
        name: microarchitecture name, e.g. ``"ARM Cortex-A57"``.
        issue_width: maximum instructions issued per cycle (documentation
            of the design; the timing model consumes ``base_cpi``).
        out_of_order: whether the core executes out of order.
        base_cpi: cycles per instruction with an ideal memory system.
        memory_blocking_factor: fraction of a DRAM access latency the core
            stalls for on an off-chip miss (1.0 = fully blocking).
        wfm_power_fraction: relative core power while in the
            wait-for-memory (WFM) state.  The paper measured WFM at 24%
            *below* active power (Section IV-1), i.e. a fraction of 0.76.
    """

    name: str
    issue_width: int
    out_of_order: bool
    base_cpi: float
    memory_blocking_factor: float
    wfm_power_fraction: float = 0.76

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigurationError(f"{self.name}: issue_width must be >= 1")
        if self.base_cpi <= 0.0:
            raise ConfigurationError(f"{self.name}: base_cpi must be positive")
        if not (0.0 < self.memory_blocking_factor <= 1.0):
            raise ConfigurationError(
                f"{self.name}: memory_blocking_factor must be in (0, 1]"
            )
        if not (0.0 <= self.wfm_power_fraction <= 1.0):
            raise ConfigurationError(
                f"{self.name}: wfm_power_fraction must be in [0, 1]"
            )

    @property
    def peak_ipc(self) -> float:
        """Peak instructions per cycle with an ideal memory system."""
        return 1.0 / self.base_cpi


def cortex_a57() -> CoreModel:
    """Out-of-order ARMv8 Cortex-A57, the NTC server's core.

    The base CPI is calibrated jointly with the workload instruction counts
    (see :mod:`repro.perf.calibration`); 1.85 reproduces both Table I
    execution times and the magnitude of the Fig. 3 efficiency curves.
    A 40-entry-ish OoO window overlaps roughly half the DRAM latency on the
    banking workloads, hence the 0.55 blocking factor.
    """
    return CoreModel(
        name="ARM Cortex-A57",
        issue_width=3,
        out_of_order=True,
        base_cpi=1.85,
        memory_blocking_factor=0.55,
    )


def cortex_a53_thunderx() -> CoreModel:
    """In-order ThunderX custom core (Cortex-A53 class).

    In-order issue blocks on the full memory latency and pays a higher base
    CPI on the branchy banking workloads — the reason the paper replaces it
    (Section III-A: ThunderX was 1.35-1.5x slower than x86).
    """
    return CoreModel(
        name="Cavium ThunderX (in-order ARMv8)",
        issue_width=2,
        out_of_order=False,
        base_cpi=2.35,
        memory_blocking_factor=1.0,
    )


def xeon_westmere() -> CoreModel:
    """Out-of-order x86 core of the Intel Xeon X5650 QoS-reference server."""
    return CoreModel(
        name="Intel Xeon X5650 (Westmere)",
        issue_width=4,
        out_of_order=True,
        base_cpi=1.45,
        memory_blocking_factor=0.45,
    )


def xeon_sandybridge() -> CoreModel:
    """Out-of-order x86 core of the Intel E5-2620 non-NTC server."""
    return CoreModel(
        name="Intel E5-2620 (Sandy Bridge)",
        issue_width=4,
        out_of_order=True,
        base_cpi=1.40,
        memory_blocking_factor=0.45,
    )
