"""DRAM device and channel models.

The NTC server uses DDR4-2400 with a 19.2 GB/s peak channel bandwidth and
16GB of capacity (paper Section III-A, Micron DDR4 datasheet reference
[20]).  The QoS-reference Xeon X5650 uses DDR3-1333 with 128GB.

The timing model needs the effective access latency seen by a core and the
bandwidth ceiling; the power model needs capacity and the per-byte access
energy (Section IV-4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DramModel:
    """One DRAM configuration (device generation + channel + capacity).

    Attributes:
        name: label, e.g. ``"DDR4-2400"``.
        capacity_gb: total DRAM capacity in GiB.
        data_rate_mtps: data rate in mega-transfers per second.
        channels: number of memory channels.
        bus_bytes: channel width in bytes (8 for a 64-bit channel).
        access_latency_ns: average closed-page access latency seen by a
            core on an LLC miss, including controller queueing.
        idle_power_mw_per_gb: background power per GiB with banks in
            power-down (paper: 15.5 mW/GB).
        active_power_mw_per_gb: background power per GiB with banks
            activated (paper: 155 mW/GB).
        access_energy_pj_per_byte: energy per byte transferred
            (paper: 800 pJ/B).
    """

    name: str
    capacity_gb: float
    data_rate_mtps: float
    channels: int = 1
    bus_bytes: int = 8
    access_latency_ns: float = 80.0
    idle_power_mw_per_gb: float = 15.5
    active_power_mw_per_gb: float = 155.0
    access_energy_pj_per_byte: float = 800.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0.0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.data_rate_mtps <= 0.0:
            raise ConfigurationError(
                f"{self.name}: data rate must be positive"
            )
        if self.channels < 1 or self.bus_bytes < 1:
            raise ConfigurationError(
                f"{self.name}: channels and bus width must be >= 1"
            )
        if self.access_latency_ns <= 0.0:
            raise ConfigurationError(
                f"{self.name}: access latency must be positive"
            )
        for field_name in (
            "idle_power_mw_per_gb",
            "active_power_mw_per_gb",
            "access_energy_pj_per_byte",
        ):
            if getattr(self, field_name) < 0.0:
                raise ConfigurationError(
                    f"{self.name}: {field_name} must be non-negative"
                )

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak channel bandwidth in GB/s (paper: 19.2 GB/s for DDR4-2400)."""
        return self.data_rate_mtps * self.bus_bytes * self.channels / 1000.0

    def utilization_of_bandwidth(self, bytes_per_second: float) -> float:
        """Fraction of peak bandwidth consumed by a given traffic level."""
        if bytes_per_second < 0.0:
            raise ConfigurationError("traffic must be non-negative")
        return bytes_per_second / (self.peak_bandwidth_gbps * 1e9)


def ddr4_2400_16gb() -> DramModel:
    """The NTC server's memory: 16GB DDR4-2400, 19.2 GB/s peak."""
    return DramModel(
        name="DDR4-2400 (16GB)",
        capacity_gb=16.0,
        data_rate_mtps=2400.0,
        channels=1,
        bus_bytes=8,
        access_latency_ns=75.0,
    )


def ddr4_2133_thunderx() -> DramModel:
    """Cavium ThunderX memory configuration (DDR4-2133).

    The higher effective latency models the paper's observation of an
    "inappropriate memory subsystem design" on the original platform.
    """
    return DramModel(
        name="DDR4-2133 (ThunderX, 16GB)",
        capacity_gb=16.0,
        data_rate_mtps=2133.0,
        channels=1,
        bus_bytes=8,
        access_latency_ns=110.0,
    )


def ddr3_1333_x5650() -> DramModel:
    """Xeon X5650 reference memory: 128GB DDR3-1333 (paper Section III-C)."""
    return DramModel(
        name="DDR3-1333 (128GB)",
        capacity_gb=128.0,
        data_rate_mtps=1333.0,
        channels=3,
        bus_bytes=8,
        access_latency_ns=90.0,
    )


def ddr3_1333_e5_2620() -> DramModel:
    """E5-2620 conventional-server memory (32GB DDR3-1333)."""
    return DramModel(
        name="DDR3-1333 (32GB)",
        capacity_gb=32.0,
        data_rate_mtps=1333.0,
        channels=4,
        bus_bytes=8,
        access_latency_ns=85.0,
    )
