"""Cache hierarchy descriptors.

The proposed NTC server (paper Section III-A) carries a 64KB L1-I and 32KB
L1-D per core, a per-core L2, and a 16MB shared last-level cache (LLC).
The timing model consumes the hierarchy through per-workload miss ratios
(:mod:`repro.perf.workload`); this module provides the structural
description — sizes, line size, access latencies and access energies —
used by the power model and for documentation/validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Attributes:
        name: level name, e.g. ``"L1-D"`` or ``"LLC"``.
        size_kb: capacity in KiB.
        line_bytes: cache line size in bytes.
        latency_cycles: load-to-use latency in core cycles.
        shared: whether the level is shared across all cores.
        read_energy_pj: energy per read access in picojoules (at the
            technology's nominal voltage; scaled by V^2 in the power model).
        write_energy_pj: energy per write access in picojoules.
    """

    name: str
    size_kb: float
    line_bytes: int = 64
    latency_cycles: int = 4
    shared: bool = False
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0

    def __post_init__(self) -> None:
        if self.size_kb <= 0.0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError(
                f"{self.name}: line size must be a positive power of two"
            )
        if self.latency_cycles < 1:
            raise ConfigurationError(
                f"{self.name}: latency must be at least one cycle"
            )
        if self.read_energy_pj < 0.0 or self.write_energy_pj < 0.0:
            raise ConfigurationError(
                f"{self.name}: access energies must be non-negative"
            )

    @property
    def size_mb(self) -> float:
        """Capacity in MiB."""
        return self.size_kb / 1024.0

    @property
    def lines(self) -> int:
        """Number of cache lines."""
        return int(self.size_kb * 1024.0) // self.line_bytes


@dataclass(frozen=True)
class CacheHierarchy:
    """Ordered cache hierarchy, from the level closest to the core outward.

    Attributes:
        levels: the cache levels, L1 first.
    """

    levels: Tuple[CacheLevel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("a cache hierarchy needs >= 1 level")

    @property
    def llc(self) -> CacheLevel:
        """The last (outermost) level of the hierarchy."""
        return self.levels[-1]

    @property
    def total_size_mb(self) -> float:
        """Aggregate capacity of all levels in MiB."""
        return sum(level.size_mb for level in self.levels)

    def level_named(self, name: str) -> CacheLevel:
        """Look a level up by name.

        Raises:
            KeyError: if no level carries ``name``.
        """
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no cache level named {name!r}")


def ntc_cache_hierarchy() -> CacheHierarchy:
    """The proposed NTC server's hierarchy (paper Section III-A).

    64KB L1-I + 32KB L1-D per core, 512KB private L2, 16MB shared LLC.
    LLC access energies follow the paper's Section IV-2 measurement of
    128-bit-wide accesses on a 28nm UTBB FD-SOI SRAM block: we use
    20 pJ/read and 24 pJ/write per 128-bit access at nominal voltage.
    """
    return CacheHierarchy(
        levels=(
            CacheLevel(name="L1-I", size_kb=64, latency_cycles=3),
            CacheLevel(name="L1-D", size_kb=32, latency_cycles=3),
            CacheLevel(name="L2", size_kb=512, latency_cycles=12),
            CacheLevel(
                name="LLC",
                size_kb=16 * 1024,
                latency_cycles=35,
                shared=True,
                read_energy_pj=20.0,
                write_energy_pj=24.0,
            ),
        )
    )


def thunderx_cache_hierarchy() -> CacheHierarchy:
    """Original Cavium ThunderX hierarchy (small L1, 16MB shared L2).

    The paper calls this memory subsystem "inappropriate" for the target
    applications; the small 32KB L1-I/24KB... ThunderX documentation gives
    78KB L1-I and 32KB L1-D with a 16MB shared L2 acting as LLC.
    """
    return CacheHierarchy(
        levels=(
            CacheLevel(name="L1-I", size_kb=78, latency_cycles=3),
            CacheLevel(name="L1-D", size_kb=32, latency_cycles=3),
            CacheLevel(
                name="LLC",
                size_kb=16 * 1024,
                latency_cycles=40,
                shared=True,
                read_energy_pj=22.0,
                write_energy_pj=26.0,
            ),
        )
    )


def xeon_x5650_cache_hierarchy() -> CacheHierarchy:
    """Intel Xeon X5650 hierarchy (12MB LLC, paper Section III-C)."""
    return CacheHierarchy(
        levels=(
            CacheLevel(name="L1-I", size_kb=32, latency_cycles=4),
            CacheLevel(name="L1-D", size_kb=32, latency_cycles=4),
            CacheLevel(name="L2", size_kb=256, latency_cycles=10),
            CacheLevel(
                name="LLC",
                size_kb=12 * 1024,
                latency_cycles=40,
                shared=True,
            ),
        )
    )


def e5_2620_cache_hierarchy() -> CacheHierarchy:
    """Intel E5-2620 hierarchy (15MB LLC), the Fig. 1(b) server."""
    return CacheHierarchy(
        levels=(
            CacheLevel(name="L1-I", size_kb=32, latency_cycles=4),
            CacheLevel(name="L1-D", size_kb=32, latency_cycles=4),
            CacheLevel(name="L2", size_kb=256, latency_cycles=10),
            CacheLevel(
                name="LLC",
                size_kb=15 * 1024,
                latency_cycles=40,
                shared=True,
            ),
        )
    )
