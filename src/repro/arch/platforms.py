"""Catalog of the four server platforms the paper evaluates.

===========================  =======================================
platform                     role in the paper
===========================  =======================================
:func:`ntc_server`           the proposed NTC server (16x A57, FD-SOI)
:func:`cavium_thunderx`      rejected starting point (Table I)
:func:`intel_xeon_x5650`     QoS baseline (Section III-C)
:func:`intel_e5_2620`        conventional server of Fig. 1(b)
===========================  =======================================
"""

from __future__ import annotations

from ..technology.opp import (
    OppTable,
    build_opp_table,
    conventional_opp_table,
    ntc_opp_table,
)
from ..technology.voltage import bulk_planar, fdsoi28
from .cache import (
    e5_2620_cache_hierarchy,
    ntc_cache_hierarchy,
    thunderx_cache_hierarchy,
    xeon_x5650_cache_hierarchy,
)
from .core import (
    cortex_a53_thunderx,
    cortex_a57,
    xeon_sandybridge,
    xeon_westmere,
)
from .dram import (
    ddr3_1333_e5_2620,
    ddr3_1333_x5650,
    ddr4_2133_thunderx,
    ddr4_2400_16gb,
)
from .server_spec import ServerSpec


def ntc_server() -> ServerSpec:
    """The proposed NTC server (paper Section III-A).

    16 out-of-order Cortex-A57 cores (the paper models 16 of ThunderX's 48
    for simulation turnaround and verified linear scaling), 64KB L1-I /
    32KB L1-D, 16MB LLC, 16GB DDR4-2400, on 28nm UTBB FD-SOI with the full
    0.1-3.1 GHz near-threshold DVFS range.
    """
    return ServerSpec(
        name="NTC server (16x Cortex-A57, 28nm FD-SOI)",
        core=cortex_a57(),
        n_cores=16,
        caches=ntc_cache_hierarchy(),
        dram=ddr4_2400_16gb(),
        vf_model=fdsoi28(),
        opps=ntc_opp_table(),
        nominal_freq_ghz=2.0,
    )


def cavium_thunderx() -> ServerSpec:
    """The original Cavium ThunderX platform (paper Section III-A).

    Modeled with the same 16-core scaling as the NTC server so Table I
    compares like against like; in-order cores and a slower memory
    subsystem make it 1.25-1.76x slower than the proposed NTC design.
    ThunderX is not an FD-SOI part; it exposes a conventional narrow DVFS
    window around its 2.0 GHz nominal clock.
    """
    vf = bulk_planar()
    # ThunderX's usable window in our bulk model: 1.2 GHz up to 2.0 GHz.
    freqs = [round(1.2 + 0.1 * i, 1) for i in range(9)]
    opps: OppTable = build_opp_table(vf, freqs)
    return ServerSpec(
        name="Cavium ThunderX (16-core model)",
        core=cortex_a53_thunderx(),
        n_cores=16,
        caches=thunderx_cache_hierarchy(),
        dram=ddr4_2133_thunderx(),
        vf_model=vf,
        opps=opps,
        nominal_freq_ghz=2.0,
    )


def intel_xeon_x5650() -> ServerSpec:
    """The Intel Xeon X5650 QoS-reference server (paper Section III-C).

    16 hardware threads are exercised (one LXC container per core in the
    paper's baseline); 12MB LLC, 128GB DDR3-1333, 2.66 GHz nominal.
    """
    vf = bulk_planar()
    freqs = [round(1.6 + 0.1 * i, 2) for i in range(8)] + [2.4]
    # The X5650 nominal 2.66 GHz sits above our generic bulk curve's 2.4 GHz
    # ceiling; extend the curve for this part's binning.
    from ..technology.voltage import VoltageFrequencyModel
    import math

    vth, alpha, v_max, f_nom = 0.60, 1.2, 1.35, 2.66
    k = f_nom * v_max / math.pow(v_max - vth, alpha)
    vf = VoltageFrequencyModel(
        name="bulk planar (X5650 bin)",
        vth_v=vth,
        alpha=alpha,
        v_min=0.90,
        v_max=v_max,
        k_ghz=k,
    )
    freqs = [round(1.6 + 0.2 * i, 2) for i in range(6)] + [2.66]
    opps = build_opp_table(vf, freqs)
    return ServerSpec(
        name="Intel Xeon X5650 (QoS reference)",
        core=xeon_westmere(),
        n_cores=16,
        caches=xeon_x5650_cache_hierarchy(),
        dram=ddr3_1333_x5650(),
        vf_model=vf,
        opps=opps,
        nominal_freq_ghz=2.66,
    )


def intel_e5_2620() -> ServerSpec:
    """The conventional 6-core Intel E5-2620 server of Fig. 1(b).

    Narrow 1.2-2.4 GHz DVFS window on a bulk process with heavy static
    power — the platform for which consolidation at ``Fmax`` *is* the
    energy-optimal policy.
    """
    return ServerSpec(
        name="Intel E5-2620 (conventional server)",
        core=xeon_sandybridge(),
        n_cores=6,
        caches=e5_2620_cache_hierarchy(),
        dram=ddr3_1333_e5_2620(),
        vf_model=bulk_planar(),
        opps=conventional_opp_table(),
        nominal_freq_ghz=2.0,
    )
