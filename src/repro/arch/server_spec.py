"""Whole-server specifications.

A :class:`ServerSpec` assembles a core model, a cache hierarchy, a DRAM
configuration, a DVFS table and the platform-level constants into the one
object the performance and power layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError
from ..technology.opp import OppTable
from ..technology.voltage import VoltageFrequencyModel
from .cache import CacheHierarchy
from .core import CoreModel
from .dram import DramModel


@dataclass(frozen=True)
class ServerSpec:
    """Structural description of one server platform.

    Attributes:
        name: platform name, e.g. ``"NTC server (16x A57, FD-SOI)"``.
        core: the core microarchitecture model.
        n_cores: number of cores on the chip.
        caches: the cache hierarchy.
        dram: the DRAM configuration.
        vf_model: the process voltage/frequency curve.
        opps: the DVFS table exposed to software.
        nominal_freq_ghz: the frequency the platform is quoted at (used for
            Table I comparisons, e.g. 2.0 GHz for ThunderX and NTC).
    """

    name: str
    core: CoreModel
    n_cores: int
    caches: CacheHierarchy
    dram: DramModel
    vf_model: VoltageFrequencyModel
    opps: OppTable
    nominal_freq_ghz: float

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"{self.name}: n_cores must be >= 1")
        if not (
            self.opps.f_min_ghz
            <= self.nominal_freq_ghz
            <= self.opps.f_max_ghz
        ):
            raise ConfigurationError(
                f"{self.name}: nominal frequency {self.nominal_freq_ghz} GHz "
                f"outside the DVFS table range "
                f"[{self.opps.f_min_ghz}, {self.opps.f_max_ghz}] GHz"
            )

    @property
    def f_max_ghz(self) -> float:
        """Maximum DVFS frequency (the paper's ``Fmax``)."""
        return self.opps.f_max_ghz

    @property
    def f_min_ghz(self) -> float:
        """Minimum DVFS frequency."""
        return self.opps.f_min_ghz

    @property
    def memory_capacity_gb(self) -> float:
        """Server DRAM capacity in GiB."""
        return self.dram.capacity_gb

    def voltage_at(self, freq_ghz: float) -> float:
        """Supply voltage at an arbitrary in-range frequency."""
        return self.vf_model.voltage_for_frequency(freq_ghz)

    def capacity_points_at(self, freq_ghz: float) -> float:
        """Server CPU capacity, in utilization points, at ``freq_ghz``.

        Utilization is defined relative to the server at ``Fmax`` (100
        points); a server clocked at ``f`` offers ``100 * f / Fmax`` points
        — the paper's ``Cap_cpu`` for a frequency cap ``f``.

        Raises:
            DomainError: if the frequency is outside the DVFS range.
        """
        if not (self.f_min_ghz <= freq_ghz <= self.f_max_ghz + 1e-12):
            raise DomainError(
                f"{self.name}: {freq_ghz} GHz outside DVFS range"
            )
        return 100.0 * freq_ghz / self.f_max_ghz

    def frequency_for_capacity(self, capacity_points: float) -> float:
        """Inverse of :meth:`capacity_points_at` (unquantized).

        Raises:
            DomainError: if the capacity is outside ``(0, 100]``.
        """
        if not (0.0 < capacity_points <= 100.0 + 1e-12):
            raise DomainError(
                f"capacity must be in (0, 100], got {capacity_points}"
            )
        return capacity_points * self.f_max_ghz / 100.0
