"""Load-balancing strawman: spread VMs evenly at a target utilization.

The paper's Section V-A observes that "neither VM consolidation nor load
balancing are the best options".  This policy represents the load-
balancing end of that spectrum: it turns on enough servers to keep every
server near a target utilization and greedily places each VM on the
currently least-loaded server, letting the per-sample governor pick
frequencies.

With a low target utilization it wastes static power on many servers;
with a high target it degenerates into consolidation — EPACT's sizing is
precisely the principled choice between these extremes.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.alloc1d import ffd_order
from ..core.sizing import peak_aggregate_pct
from ..core.types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    ServerPlan,
)


class LoadBalancePolicy(AllocationPolicy):
    """Greedy least-loaded spreading across a fixed server count.

    Args:
        target_util_pct: desired per-server peak utilization; the server
            count is the aggregate peak divided by this target.
    """

    name = "LOAD-BALANCE"

    def __init__(self, target_util_pct: float = 50.0):
        if not (0.0 < target_util_pct <= 100.0):
            raise ValueError("target_util_pct must be in (0, 100]")
        self._target = target_util_pct

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Spread VMs (FFD order) onto the least-loaded of N servers."""
        peak = peak_aggregate_pct(ctx.pred_cpu)
        n_servers = max(1, math.ceil(peak / self._target))
        n_servers = min(n_servers, ctx.max_servers)
        plans: List[ServerPlan] = [
            ServerPlan(cap_cpu_pct=100.0, cap_mem_pct=100.0)
            for _ in range(n_servers)
        ]
        loads = np.zeros(n_servers)
        mem_loads = np.zeros(n_servers)
        for vm_id in (int(v) for v in ffd_order(ctx.pred_cpu)):
            target = int(np.argmin(loads))
            plans[target].vm_ids.append(vm_id)
            loads[target] += float(ctx.pred_cpu[vm_id].max())
            mem_loads[target] += float(ctx.pred_mem[vm_id].max())
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=True,
            violation_cap_pct=100.0,
            forced_placements=0,
        )
