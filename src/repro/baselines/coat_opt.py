"""COAT-OPT: COAT with an OPTimal fixed cap (paper Section VI-C).

Identical to COAT except the capacity cap is placed at the *offline
optimal* server frequency — the minimum of the worst-case data-center
power curve (≈1.9 GHz for the NTC server, hence a ≈61% cap).  Active
servers run at that fixed frequency for the whole horizon.

COAT-OPT fixes COAT's biggest energy mistake (running at ``Fmax``) but
keeps its two structural weaknesses: the cap never adapts to the
time-varying demand, and a fixed-frequency server cannot ride DVFS upward
to absorb mispredictions — so violations stay high (Fig. 4) and energy
stays above EPACT (Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from ..core.types import Allocation, AllocationContext
from ..power.server_power import ServerPowerModel
from .coat import CoatPolicy


class CoatOptPolicy(CoatPolicy):
    """COAT with the cap fixed at the platform's optimal frequency.

    Args:
        power_model: used to locate the optimal frequency once; when
            omitted, the frequency is derived from the allocation
            context's power model on first use.
        correlation_aware: as for :class:`CoatPolicy`.
    """

    name = "COAT-OPT"

    def __init__(
        self,
        power_model: Optional[ServerPowerModel] = None,
        correlation_aware: bool = True,
        reallocation_period_slots: int = 24,
    ):
        # Cap percent is resolved lazily (needs the platform); start with a
        # placeholder that allocate() replaces before first packing.
        # The optimal *fixed* cap is an offline configuration, so COAT-OPT
        # follows the day-ahead cadence of its consolidation lineage.
        super().__init__(
            cap_cpu_pct=100.0,
            cap_mem_pct=100.0,
            correlation_aware=correlation_aware,
            dynamic_governor=False,
            name=self.name,
            reallocation_period_slots=reallocation_period_slots,
        )
        self._resolved = False
        if power_model is not None:
            self._resolve(power_model)

    def _resolve(self, power_model: ServerPowerModel) -> None:
        f_opt = power_model.optimal_frequency_ghz()
        f_max = power_model.spec.f_max_ghz
        self._cap_cpu = 100.0 * f_opt / f_max
        self._fixed_freq = f_opt
        self._resolved = True

    def cap_frequency_ghz(self, ctx: AllocationContext) -> float:
        """The offline optimal frequency (fixed for the whole horizon)."""
        if not self._resolved:
            self._resolve(ctx.power_model)
        return self._fixed_freq

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Resolve the optimal cap on first use, then pack like COAT."""
        if not self._resolved:
            self._resolve(ctx.power_model)
        return super().allocate(ctx)
