"""COAT: COnsolidation-Aware allocaTion (baseline, the paper's Ref. [17]).

Kim et al.'s correlation-aware consolidation, as the paper uses it for
comparison:

* VMs are consolidated onto as few servers as possible (first-fit
  decreasing against the *full* capacity cap at ``Fmax``);
* among the servers with room, the VM goes to the one whose current load
  pattern has the **lowest** Pearson correlation with the VM — separating
  CPU-load-correlated VMs so their peaks do not coincide;
* active servers run at the cap's frequency (``Fmax`` for the standard
  COAT): consolidation "minimizes the amount of active servers and runs
  them at the highest frequency possible" (paper Section V-A).

Because servers are packed to their cap with no slack, any
under-prediction overflows the cap immediately — the violation behaviour
of the paper's Fig. 4.

The ``dynamic_governor`` flag is an *ablation* beyond the paper: it lets
COAT's servers use EPACT's per-sample governor, quantifying how much of
EPACT's advantage comes from allocation versus frequency control.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.alloc1d import ffd_order
from ..core.correlation import pearson_many
from ..core.types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    ServerPlan,
    force_place_remaining,
)

_EPS = 1.0e-9


class CoatPolicy(AllocationPolicy):
    """Correlation-aware consolidation with a fixed capacity cap.

    Args:
        cap_cpu_pct: CPU packing cap in percent of ``Fmax`` capacity
            (100 = standard COAT).
        cap_mem_pct: memory packing cap (100 = physical capacity).
        correlation_aware: pick the least-correlated fitting server
            (``True``, Kim et al.) or plain first-fit (``False``).
        dynamic_governor: ablation switch; ``False`` (paper behaviour)
            pins active servers at the cap frequency.
        name: report name override.
    """

    name = "COAT"
    reallocation_period_slots = 1

    def __init__(
        self,
        cap_cpu_pct: float = 100.0,
        cap_mem_pct: float = 100.0,
        correlation_aware: bool = True,
        dynamic_governor: bool = False,
        name: Optional[str] = None,
        reallocation_period_slots: int = 1,
    ):
        if not (0.0 < cap_cpu_pct <= 100.0):
            raise ValueError("cap_cpu_pct must be in (0, 100]")
        if not (0.0 < cap_mem_pct <= 100.0):
            raise ValueError("cap_mem_pct must be in (0, 100]")
        self._cap_cpu = cap_cpu_pct
        self._cap_mem = cap_mem_pct
        self._correlation_aware = correlation_aware
        self._dynamic_governor = dynamic_governor
        if name is not None:
            self.name = name
        if reallocation_period_slots < 1:
            raise ValueError("reallocation_period_slots must be >= 1")
        self.reallocation_period_slots = reallocation_period_slots

    # -- cap / frequency semantics ----------------------------------------

    def cap_frequency_ghz(self, ctx: AllocationContext) -> float:
        """Fixed operating frequency implied by the CPU cap.

        The smallest OPP covering the cap: ``Fmax`` for a 100% cap.
        """
        target = self._cap_cpu * ctx.f_max_ghz / 100.0
        if target <= ctx.opps.f_min_ghz:
            return ctx.opps.f_min_ghz
        return ctx.opps.ceil(min(target, ctx.f_max_ghz)).freq_ghz

    # -- allocation ---------------------------------------------------------

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """FFD consolidation with correlation-aware server choice."""
        pred_cpu, pred_mem = ctx.pred_cpu, ctx.pred_mem
        order = ffd_order(pred_cpu)

        plans: List[ServerPlan] = []
        patt_cpu: List[np.ndarray] = []
        patt_mem: List[np.ndarray] = []
        unplaced: List[int] = []
        freq = self.cap_frequency_ghz(ctx)

        for vm_id in (int(v) for v in order):
            placed = False
            if plans:
                agg_cpu = np.stack(patt_cpu) + pred_cpu[vm_id][None, :]
                agg_mem = np.stack(patt_mem) + pred_mem[vm_id][None, :]
                fits = (agg_cpu.max(axis=1) <= self._cap_cpu + _EPS) & (
                    agg_mem.max(axis=1) <= self._cap_mem + _EPS
                )
                candidate_ids = np.flatnonzero(fits)
                if candidate_ids.size:
                    if self._correlation_aware:
                        corr = pearson_many(
                            np.stack(patt_cpu)[candidate_ids],
                            pred_cpu[vm_id],
                        )
                        chosen = int(candidate_ids[int(np.argmin(corr))])
                    else:
                        chosen = int(candidate_ids[0])
                    plans[chosen].vm_ids.append(vm_id)
                    patt_cpu[chosen] = patt_cpu[chosen] + pred_cpu[vm_id]
                    patt_mem[chosen] = patt_mem[chosen] + pred_mem[vm_id]
                    placed = True
            if not placed:
                if len(plans) < ctx.max_servers:
                    plans.append(
                        ServerPlan(
                            cap_cpu_pct=self._cap_cpu,
                            cap_mem_pct=self._cap_mem,
                            planned_freq_ghz=freq,
                        )
                    )
                    patt_cpu.append(pred_cpu[vm_id].astype(float).copy())
                    patt_mem.append(pred_mem[vm_id].astype(float).copy())
                    plans[-1].vm_ids.append(vm_id)
                else:
                    unplaced.append(vm_id)

        forced = force_place_remaining(plans, unplaced, pred_cpu)
        for plan in plans:
            plan.planned_freq_ghz = freq
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=self._dynamic_governor,
            violation_cap_pct=100.0
            if self._dynamic_governor
            else self._cap_cpu,
            f_opt_ghz=freq,
            forced_placements=forced,
        )
