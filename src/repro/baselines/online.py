"""Online cloud policies: placement-on-arrival and reactive consolidation.

The taxonomy of Beloglazov et al. (and the revisited evaluations that
followed) splits online consolidation into three mechanisms:

1. **placement on arrival** — each arriving VM is packed against the
   *current* load (best-fit or first-fit decreasing), instead of
   re-packing the whole fleet;
2. **overload detection** — servers whose (predicted or observed)
   aggregate exceeds an upper threshold shed their largest VMs;
3. **underload detection** — servers riding below a lower threshold are
   drained entirely (all-or-nothing) so they can be switched off.

:class:`OnlineBestFitPolicy` implements mechanism 1;
:class:`OnlineReactivePolicy` adds 2 and 3.  Both keep their placement
*between* slots (the engine's migration counter then sees exactly the
VMs they chose to move) and run the per-sample DVFS governor like EPACT,
so the three-way comparison against the paper's day-ahead policies
isolates the allocation strategy.

The detection/placement **signal** is selectable: ``"forecast"`` uses
the shared day-ahead predictions (forecast-assisted operation),
``"reactive"`` uses the utilization actually observed during the
previous slot, falling back to the forecast for VMs without history
(fresh arrivals).

Both policies carry a **pool dimension** for heterogeneous fleets
(:class:`~repro.core.types.FleetSpec` on the context): placement state
is one server table *per pool*, arrivals try pools in platform-
efficiency order (fit into an existing server, else open one, before
falling through to the next pool), and reactive re-consolidation stays
*within* a pool — heterogeneous platforms (ARM NTC vs x86) cannot
live-migrate a VM across ISAs, so cross-pool moves are not offered.
With no fleet (or a single pool) the policies behave exactly as
before; the equivalence suite asserts the single-pool run is
bit-identical to the homogeneous one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.online import CloudAllocationContext, OnlinePolicy
from ..core.types import Allocation, AllocationContext, ServerPlan
from ..errors import ConfigurationError

_EPS = 1.0e-9


class _ServerTable:
    """Mutable per-call server state: ids, aggregates, membership.

    Aggregates live in preallocated (capacity, n_samples) arrays so the
    placement loop's whole-table reads are views, not per-call stacks.
    """

    def __init__(self, n_samples: int, capacity: int = 16):
        self.sids: List[int] = []
        self.vms: List[List[int]] = []  # global ids, insertion order
        self._cpu = np.zeros((capacity, n_samples))
        self._mem = np.zeros((capacity, n_samples))
        self._next_sid = 0

    @property
    def n_servers(self) -> int:
        return len(self.sids)

    def agg_cpu(self) -> np.ndarray:
        return self._cpu[: len(self.sids)]

    def agg_mem(self) -> np.ndarray:
        return self._mem[: len(self.sids)]

    def row_cpu(self, pos: int) -> np.ndarray:
        """One server's aggregate CPU pattern (the per-move hot read)."""
        return self._cpu[pos]

    def _append_row(self) -> int:
        if len(self.sids) == self._cpu.shape[0]:
            grown = np.zeros((2 * self._cpu.shape[0], self._cpu.shape[1]))
            grown[: self._cpu.shape[0]] = self._cpu
            self._cpu = grown
            grown = np.zeros((2 * self._mem.shape[0], self._mem.shape[1]))
            grown[: self._mem.shape[0]] = self._mem
            self._mem = grown
        self.vms.append([])
        return len(self.vms) - 1

    def open(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        pos = self._append_row()
        self.sids.append(sid)
        return pos

    def seed_server(self, sid: int) -> int:
        """Register a server id carried over from the previous slot."""
        pos = self._append_row()
        self.sids.append(sid)
        self._next_sid = max(self._next_sid, sid + 1)
        return pos

    def add(self, pos: int, vm: int, cpu: np.ndarray, mem: np.ndarray):
        self.vms[pos].append(vm)
        self._cpu[pos] += cpu
        self._mem[pos] += mem

    def bulk_add(
        self,
        positions: np.ndarray,
        vms: List[int],
        cpu_rows: np.ndarray,
        mem_rows: np.ndarray,
    ):
        """Scatter many VMs onto their servers in one pass (the slot-
        entry rebuild of carried-over state)."""
        for pos, vm in zip(positions, vms):
            self.vms[pos].append(vm)
        np.add.at(self._cpu, positions, cpu_rows)
        np.add.at(self._mem, positions, mem_rows)

    def remove(self, pos: int, vm: int, cpu: np.ndarray, mem: np.ndarray):
        self.vms[pos].remove(vm)
        self._cpu[pos] -= cpu
        self._mem[pos] -= mem

    def drop_empty(self) -> None:
        keep = [i for i, hosted in enumerate(self.vms) if hosted]
        if len(keep) != len(self.sids):
            rows = np.asarray(keep, dtype=int)
            self._cpu[: rows.size] = self._cpu[rows]
            self._mem[: rows.size] = self._mem[rows]
            self._cpu[rows.size : len(self.sids)] = 0.0
            self._mem[rows.size : len(self.sids)] = 0.0
            self.sids = [self.sids[i] for i in keep]
            self.vms = [self.vms[i] for i in keep]

    def drop_positions(self, positions: np.ndarray) -> None:
        """Drop whole server rows (emergency eviction of failed or
        capped-out servers), hosted VMs included — callers re-place
        the victims themselves."""
        if positions.size == 0:
            return
        dropped = {int(p) for p in positions}
        keep = [i for i in range(len(self.sids)) if i not in dropped]
        rows = np.asarray(keep, dtype=int)
        n_prev = len(self.sids)
        self._cpu[: rows.size] = self._cpu[rows]
        self._mem[: rows.size] = self._mem[rows]
        self._cpu[rows.size : n_prev] = 0.0
        self._mem[rows.size : n_prev] = 0.0
        self.sids = [self.sids[i] for i in keep]
        self.vms = [self.vms[i] for i in keep]


class OnlineBestFitPolicy(OnlinePolicy):
    """Placement-on-arrival against the current load (no rebalancing).

    Args:
        cap_cpu_pct: per-server CPU packing cap (percent of ``Fmax``
            capacity); kept below 100 to leave reaction headroom.
        cap_mem_pct: per-server memory packing cap.
        placement: ``"best-fit"`` (tightest fitting server) or
            ``"first-fit"`` (lowest server id that fits).
        signal: ``"forecast"`` (day-ahead predictions) or ``"reactive"``
            (previous slot's observed utilization, forecast fallback).
        name: report-name override.
        shed_on_insufficient: under an active fault window, shed VMs
            that no surviving server can physically host (the
            least-loaded fallback target would exceed 100% CPU) into
            SLA debt instead of force-placing them.  Off by default —
            the reactive policy turns it on.
    """

    name = "ONLINE-BF"

    #: Under a fleet power cap, consolidate onto a proportionally
    #: reduced server budget (reactive subclass behaviour).
    _cap_consolidate = False

    def __init__(
        self,
        cap_cpu_pct: float = 90.0,
        cap_mem_pct: float = 90.0,
        placement: str = "best-fit",
        signal: str = "forecast",
        name: Optional[str] = None,
        shed_on_insufficient: bool = False,
    ):
        if not (0.0 < cap_cpu_pct <= 100.0):
            raise ConfigurationError("cap_cpu_pct must be in (0, 100]")
        if not (0.0 < cap_mem_pct <= 100.0):
            raise ConfigurationError("cap_mem_pct must be in (0, 100]")
        if placement not in ("best-fit", "first-fit"):
            raise ConfigurationError(
                "placement must be 'best-fit' or 'first-fit'"
            )
        if signal not in ("forecast", "reactive"):
            raise ConfigurationError(
                "signal must be 'forecast' or 'reactive'"
            )
        self._cap_cpu = cap_cpu_pct
        self._cap_mem = cap_mem_pct
        self._placement = placement
        self._signal_kind = signal
        self._shed_on_insufficient = shed_on_insufficient
        if name is not None:
            self.name = name
        # global vm id -> (pool index, server id); pool is always 0
        # outside heterogeneous fleets.
        self._assign: Dict[int, Tuple[int, int]] = {}

    # -- OnlinePolicy -------------------------------------------------------

    def reset(self) -> None:
        """Forget every placement (fresh simulation)."""
        self._assign = {}

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """One online step: prune, place arrivals, optionally rebalance."""
        cloud = self.require_cloud_context(ctx)
        fleet = cloud.fleet
        ids = cloud.vm_ids
        id_set = {int(g) for g in ids}
        pos_of = {int(g): i for i, g in enumerate(ids)}
        sig_cpu, sig_mem = self._signal(cloud)

        # The pool dimension: per-pool capacities and the order pools
        # are offered demand in (most efficient platform first).  A
        # fleet-less run is the degenerate single pool.
        if fleet is not None:
            pool_caps = [pool.n_servers for pool in fleet.pools]
            order = fleet.efficiency_order()
        else:
            pool_caps = [cloud.max_servers]
            order = [0]
        n_pools = len(pool_caps)

        # Departures: drop state for VMs no longer in the population.
        self._assign = {
            g: s for g, s in self._assign.items() if g in id_set
        }

        # Seed carried-over servers per pool in ascending sid order so
        # table position order equals server-id order (newly opened
        # servers always take higher sids), keeping "first-fit = lowest
        # server id" true as a position argmin.  Aggregates are rebuilt
        # in one scatter per pool; per-bin accumulation order
        # (ascending global id) matches the per-VM loop it replaces.
        tables = [_ServerTable(sig_cpu.shape[1]) for _ in range(n_pools)]
        pos_of_sid: List[Dict[int, int]] = []
        for m in range(n_pools):
            sids = sorted(
                {sid for pm, sid in self._assign.values() if pm == m}
            )
            pos_of_sid.append(
                {sid: tables[m].seed_server(sid) for sid in sids}
            )
        if self._assign:
            for m in range(n_pools):
                carried = sorted(
                    g for g, (pm, _) in self._assign.items() if pm == m
                )
                if not carried:
                    continue
                positions = np.array(
                    [
                        pos_of_sid[m][self._assign[g][1]]
                        for g in carried
                    ],
                    dtype=np.intp,
                )
                rows = np.array(
                    [pos_of[g] for g in carried], dtype=np.intp
                )
                tables[m].bulk_add(
                    positions, carried, sig_cpu[rows], sig_mem[rows]
                )

        # Fault layer: the engine already reduced the visible capacity
        # (pool_caps reflect the surviving servers); carried state may
        # exceed it, and a power cap may ask for an even tighter
        # consolidation budget.  Evict the overflow servers (highest
        # ids — deterministically "the failed ones"), re-place their
        # VMs home-pool-first, and optionally shed what nothing can
        # physically host.
        forced = 0
        shed_global: List[int] = []
        faults = cloud.faults
        shed_allowed = False
        budget_caps = pool_caps
        if faults is not None:
            shed_allowed = self._shed_on_insufficient
            if self._cap_consolidate and faults.cap_frac < 1.0:
                budget_caps = [
                    max(1, int(cap * faults.cap_frac))
                    for cap in pool_caps
                ]
            victims: List[Tuple[int, int]] = []  # (home pool, vm id)
            for m in range(n_pools):
                excess = tables[m].n_servers - budget_caps[m]
                if excess <= 0:
                    continue
                sid_arr = np.asarray(tables[m].sids, dtype=int)
                drop = np.sort(
                    np.argsort(sid_arr, kind="stable")[-excess:]
                )
                for pos in drop:
                    victims.extend(
                        (m, g) for g in sorted(tables[m].vms[int(pos)])
                    )
                tables[m].drop_positions(drop)
            if victims:
                peaks = sig_cpu[[pos_of[g] for _, g in victims]].max(
                    axis=1
                )
                for k in np.argsort(-peaks, kind="stable"):
                    m_home, g = victims[int(k)]
                    code = self._place(
                        tables,
                        g,
                        sig_cpu[pos_of[g]],
                        sig_mem[pos_of[g]],
                        budget_caps,
                        order,
                        prefer=m_home,
                        allow_shed=shed_allowed,
                    )
                    if code == 2:
                        shed_global.append(g)
                    else:
                        forced += code

        # Arrivals in FFD order (decreasing signal peak, stable ties).
        new_ids = np.array(
            [g for g in map(int, ids) if g not in self._assign], dtype=int
        )
        if new_ids.size:
            peaks = sig_cpu[[pos_of[g] for g in new_ids]].max(axis=1)
            for g in new_ids[np.argsort(-peaks, kind="stable")]:
                g = int(g)
                code = self._place(
                    tables,
                    g,
                    sig_cpu[pos_of[g]],
                    sig_mem[pos_of[g]],
                    budget_caps,
                    order,
                    allow_shed=shed_allowed,
                )
                if code == 2:
                    shed_global.append(g)
                else:
                    forced += code

        self._rebalance(
            tables, sig_cpu, sig_mem, pos_of, budget_caps, order
        )
        for table in tables:
            table.drop_empty()
        self._assign = {
            g: (m, tables[m].sids[i])
            for m in range(n_pools)
            for i, hosted in enumerate(tables[m].vms)
            for g in hosted
        }
        return self._build_allocation(
            tables, pos_of, forced, fleet, shed_global
        )

    # -- internals ----------------------------------------------------------

    def _signal(
        self, cloud: CloudAllocationContext
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The (n_vms, n_samples) detection/placement patterns."""
        if self._signal_kind == "forecast" or cloud.last_cpu is None:
            return cloud.pred_cpu, cloud.pred_mem
        have = ~np.isnan(cloud.last_cpu).any(axis=1)
        sig_cpu = np.where(
            have[:, None], np.nan_to_num(cloud.last_cpu), cloud.pred_cpu
        )
        sig_mem = np.where(
            have[:, None], np.nan_to_num(cloud.last_mem), cloud.pred_mem
        )
        return sig_cpu, sig_mem

    def _fitting(
        self,
        table: _ServerTable,
        cpu: np.ndarray,
        mem: np.ndarray,
        exclude: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fitting server positions and their resulting CPU peaks."""
        if table.n_servers == 0:
            return np.empty(0, dtype=int), np.empty(0)
        peaks_cpu = (table.agg_cpu() + cpu[None, :]).max(axis=1)
        peaks_mem = (table.agg_mem() + mem[None, :]).max(axis=1)
        fits = (peaks_cpu <= self._cap_cpu + _EPS) & (
            peaks_mem <= self._cap_mem + _EPS
        )
        if exclude is not None:
            fits[exclude] = False
        cand = np.flatnonzero(fits)
        return cand, peaks_cpu[cand]

    def _choose(self, cand: np.ndarray, peaks: np.ndarray) -> int:
        """Best-fit = tightest resulting peak; first-fit = lowest pos."""
        if self._placement == "first-fit":
            return int(cand[0])
        return int(cand[int(np.argmax(peaks))])

    def _place(
        self,
        tables: List[_ServerTable],
        vm: int,
        cpu: np.ndarray,
        mem: np.ndarray,
        pool_caps: List[int],
        order: List[int],
        prefer: Optional[int] = None,
        allow_shed: bool = False,
    ) -> int:
        """Place one VM; returns 0 (placed), 1 (force-placed) or 2
        (shed).

        Pools are tried in platform-efficiency order — fit into an
        existing server of the pool, else open a new one under the
        pool's capacity — before falling through to the next pool.
        ``prefer`` front-runs one pool (emergency re-placement stays
        within the failed server's own pool when it can).  Only when
        every pool is exhausted does the VM get force-placed on the
        least-loaded server fleet-wide (the day-ahead policies' safety
        valve) — unless ``allow_shed`` and even that target would
        exceed physical CPU capacity, in which case the VM is shed
        (degraded operation: SLA debt instead of an impossible
        placement).
        """
        pools = (
            order
            if prefer is None
            else [prefer] + [m for m in order if m != prefer]
        )
        for m in pools:
            table = tables[m]
            cand, peaks = self._fitting(table, cpu, mem)
            if cand.size:
                table.add(self._choose(cand, peaks), vm, cpu, mem)
                return 0
            if table.n_servers < pool_caps[m]:
                table.add(table.open(), vm, cpu, mem)
                return 0
        best = None
        for m, table in enumerate(tables):
            if table.n_servers == 0:
                continue
            loads = table.agg_cpu().max(axis=1)
            pos = int(np.argmin(loads))
            if best is None or loads[pos] < best[0]:
                best = (float(loads[pos]), m, pos)
        if allow_shed and (
            best is None or best[0] + float(cpu.max()) > 100.0 + _EPS
        ):
            return 2
        if best is None:  # unreachable: pool capacities are >= 1
            raise ConfigurationError("no pool can open a server")
        tables[best[1]].add(best[2], vm, cpu, mem)
        return 1

    def _rebalance(
        self,
        tables: List[_ServerTable],
        sig_cpu: np.ndarray,
        sig_mem: np.ndarray,
        pos_of: Dict[int, int],
        pool_caps: List[int],
        order: List[int],
    ) -> None:
        """Hook for reactive subclasses; placement-only does nothing."""

    def _build_allocation(
        self,
        tables: List[_ServerTable],
        pos_of: Dict[int, int],
        forced: int,
        fleet,
        shed: Optional[List[int]] = None,
    ) -> Allocation:
        plans: List[ServerPlan] = []
        pools_of: List[int] = []
        for m, table in enumerate(tables):
            sid_order = np.argsort(
                np.asarray(table.sids, dtype=int), kind="stable"
            )
            plans.extend(
                ServerPlan(
                    vm_ids=[pos_of[g] for g in sorted(table.vms[i])],
                    cap_cpu_pct=self._cap_cpu,
                    cap_mem_pct=self._cap_mem,
                )
                for i in sid_order
            )
            pools_of.extend([m] * len(sid_order))
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=True,
            violation_cap_pct=100.0,
            forced_placements=forced,
            server_pools=(
                np.asarray(pools_of, dtype=int)
                if fleet is not None
                else None
            ),
            shed_vm_ids=(
                [pos_of[g] for g in sorted(shed)] if shed else []
            ),
        )


class OnlineReactivePolicy(OnlineBestFitPolicy):
    """Placement-on-arrival plus threshold-driven re-consolidation.

    Args:
        overload_pct: servers whose signal aggregate peak exceeds this
            shed their largest VMs until back under (or stuck).
        underload_pct: servers riding below this are drained whole (all
            VMs re-placed elsewhere) so they can be switched off.
        max_migrations_per_slot: optional budget bounding reactive moves
            per slot (arrival placements are not migrations and are
            never limited).
        shed_on_insufficient: under faults, shed unplaceable VMs into
            SLA debt instead of force-packing them onto overloaded
            survivors (defaults on: the reactive policy is the degraded
            -operation baseline).
        Other arguments as in :class:`OnlineBestFitPolicy`.
    """

    name = "ONLINE-REACTIVE"
    # Under a power-cap window the reactive policy runs forced
    # consolidation: the per-pool server budget shrinks with cap_frac.
    _cap_consolidate = True

    def __init__(
        self,
        cap_cpu_pct: float = 90.0,
        cap_mem_pct: float = 90.0,
        overload_pct: float = 90.0,
        underload_pct: float = 25.0,
        max_migrations_per_slot: Optional[int] = None,
        placement: str = "best-fit",
        signal: str = "reactive",
        name: Optional[str] = None,
        shed_on_insufficient: bool = True,
    ):
        super().__init__(
            cap_cpu_pct=cap_cpu_pct,
            cap_mem_pct=cap_mem_pct,
            placement=placement,
            signal=signal,
            name=name,
            shed_on_insufficient=shed_on_insufficient,
        )
        if not (0.0 < overload_pct <= 100.0):
            raise ConfigurationError("overload_pct must be in (0, 100]")
        if not (0.0 <= underload_pct < overload_pct):
            raise ConfigurationError(
                "underload_pct must be in [0, overload_pct)"
            )
        if (
            max_migrations_per_slot is not None
            and max_migrations_per_slot < 0
        ):
            raise ConfigurationError(
                "max_migrations_per_slot must be >= 0"
            )
        self._over = overload_pct
        self._under = underload_pct
        self._budget = max_migrations_per_slot

    def _rebalance(
        self,
        tables: List[_ServerTable],
        sig_cpu: np.ndarray,
        sig_mem: np.ndarray,
        pos_of: Dict[int, int],
        pool_caps: List[int],
        order: List[int],
    ) -> None:
        """Re-consolidate each pool, sharing one migration budget.

        Reactive moves stay *within* a pool (heterogeneous platforms
        cannot live-migrate across ISAs); pools are visited in the same
        efficiency order placement uses, so the budget favors the
        platform hosting the preferred share of the demand.
        """
        moves = 0
        budget = self._budget if self._budget is not None else np.inf
        for m in order:
            moves = self._rebalance_pool(
                tables[m], sig_cpu, sig_mem, pos_of, pool_caps[m],
                moves, budget,
            )

    def _rebalance_pool(
        self,
        table: _ServerTable,
        sig_cpu: np.ndarray,
        sig_mem: np.ndarray,
        pos_of: Dict[int, int],
        max_servers: int,
        moves: int,
        budget,
    ) -> int:

        # -- overload: shed largest VMs from the hottest servers --------
        peaks = table.agg_cpu().max(axis=1)
        for pos in np.argsort(-peaks, kind="stable"):
            pos = int(pos)
            while (
                moves < budget
                and len(table.vms[pos]) > 1
                and table.row_cpu(pos).max() > self._over + _EPS
            ):
                hosted = sorted(table.vms[pos])
                vm_peaks = sig_cpu[[pos_of[g] for g in hosted]].max(axis=1)
                victim = hosted[int(np.argmax(vm_peaks))]
                cpu = sig_cpu[pos_of[victim]]
                mem = sig_mem[pos_of[victim]]
                cand, cand_peaks = self._fitting(
                    table, cpu, mem, exclude=pos
                )
                if cand.size:
                    target = self._choose(cand, cand_peaks)
                elif table.n_servers < max_servers:
                    target = table.open()
                else:
                    break  # nowhere to shed to
                table.remove(pos, victim, cpu, mem)
                table.add(target, victim, cpu, mem)
                moves += 1

        # -- underload: drain the coldest servers whole -----------------
        agg = table.agg_cpu()
        entry_peaks = agg.max(axis=1) if agg.shape[0] else np.empty(0)
        for pos in np.argsort(entry_peaks, kind="stable"):
            pos = int(pos)
            hosted = sorted(table.vms[pos])
            if not hosted or moves + len(hosted) > budget:
                continue
            # Re-check against the *current* load: a cold server that
            # absorbed another drain (or shed VMs) is judged as it now is.
            if table.row_cpu(pos).max() >= self._under - _EPS:
                continue
            staged = []
            ok = True
            for g in sorted(
                hosted,
                key=lambda g: -float(sig_cpu[pos_of[g]].max()),
            ):
                cpu = sig_cpu[pos_of[g]]
                mem = sig_mem[pos_of[g]]
                cand, cand_peaks = self._fitting(
                    table, cpu, mem, exclude=pos
                )
                # Draining into an empty server would just move the
                # underload; only already-loaded targets count.
                nonempty = np.fromiter(
                    (len(table.vms[int(c)]) > 0 for c in cand),
                    dtype=bool,
                    count=cand.size,
                )
                cand, cand_peaks = cand[nonempty], cand_peaks[nonempty]
                if cand.size == 0:
                    ok = False
                    break
                target = self._choose(cand, cand_peaks)
                table.remove(pos, g, cpu, mem)
                table.add(target, g, cpu, mem)
                staged.append((target, g, cpu, mem))
            if ok:
                moves += len(staged)
            else:
                # All-or-nothing: undo the partial drain.
                for target, g, cpu, mem in reversed(staged):
                    table.remove(target, g, cpu, mem)
                    table.add(pos, g, cpu, mem)
        return moves
