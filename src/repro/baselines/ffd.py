"""Plain first-fit-decreasing consolidation (non-correlation-aware).

The classic consolidation baseline ([7], [12] in the paper's related
work): VMs sorted by decreasing peak demand, each placed on the first
server with room, servers run at ``Fmax``.  Differs from COAT only in
ignoring CPU-load correlation — the delta between the two isolates the
value of correlation awareness.
"""

from __future__ import annotations

from .coat import CoatPolicy


class FfdPolicy(CoatPolicy):
    """First-fit-decreasing consolidation at the ``Fmax`` cap."""

    name = "FFD"

    def __init__(self, cap_cpu_pct: float = 100.0, cap_mem_pct: float = 100.0):
        super().__init__(
            cap_cpu_pct=cap_cpu_pct,
            cap_mem_pct=cap_mem_pct,
            correlation_aware=False,
            dynamic_governor=False,
            name=self.name,
        )
