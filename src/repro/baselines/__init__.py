"""Baseline allocation policies the paper compares EPACT against.

COAT and COAT-OPT are the paper's Section VI-C baselines; FFD and
LOAD-BALANCE bound the design space (pure consolidation without
correlation awareness, and pure spreading).  ONLINE-BF and
ONLINE-REACTIVE are the churn-native baselines of the ``repro.cloud``
subsystem (placement on arrival, threshold-driven re-consolidation).
"""

from .coat import CoatPolicy
from .coat_opt import CoatOptPolicy
from .ffd import FfdPolicy
from .loadbalance import LoadBalancePolicy
from .online import OnlineBestFitPolicy, OnlineReactivePolicy

__all__ = [
    "CoatOptPolicy",
    "CoatPolicy",
    "FfdPolicy",
    "LoadBalancePolicy",
    "OnlineBestFitPolicy",
    "OnlineReactivePolicy",
]
