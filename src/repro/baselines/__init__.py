"""Baseline allocation policies the paper compares EPACT against.

COAT and COAT-OPT are the paper's Section VI-C baselines; FFD and
LOAD-BALANCE bound the design space (pure consolidation without
correlation awareness, and pure spreading).
"""

from .coat import CoatPolicy
from .coat_opt import CoatOptPolicy
from .ffd import FfdPolicy
from .loadbalance import LoadBalancePolicy

__all__ = [
    "CoatOptPolicy",
    "CoatPolicy",
    "FfdPolicy",
    "LoadBalancePolicy",
]
