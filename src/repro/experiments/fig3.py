"""Experiment: Fig. 3 — server efficiency (BUIPS/W) vs. core frequency.

Regenerates the paper's Fig. 3: chip-level useful instructions per second
divided by total server power, per workload class, over the NTC DVFS
range.  The operating condition is the paper's: one job per core, all
cores busy, with class-appropriate wait-for-memory residency and DRAM
traffic feeding the power model.

Expected shape: interior efficiency peaks (high-mem lowest and earliest at
~1.2 GHz), efficiency decreasing with memory intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..dcsim.reporting import format_table
from ..perf.simulator import PerformanceSimulator
from ..perf.workload import ALL_MEMORY_CLASSES, MemoryClass
from ..power.server_power import ServerPowerModel, ntc_server_power_model


@dataclass(frozen=True)
class EfficiencyPoint:
    """One point of an efficiency curve."""

    freq_ghz: float
    chip_uips: float
    power_w: float

    @property
    def buips_per_watt(self) -> float:
        """Efficiency in billions of UIPS per watt (the Fig. 3 y-axis)."""
        return self.chip_uips / 1.0e9 / self.power_w


@dataclass(frozen=True)
class Fig3Result:
    """Per-class efficiency curves and their peaks."""

    curves: Dict[str, List[EfficiencyPoint]]

    def peak(self, label: str) -> EfficiencyPoint:
        """The maximum-efficiency point of a class."""
        return max(self.curves[label], key=lambda p: p.buips_per_watt)

    def peak_frequencies(self) -> Dict[str, float]:
        """Peak frequency per class."""
        return {label: self.peak(label).freq_ghz for label in self.curves}


def efficiency_point(
    sim: PerformanceSimulator,
    power: ServerPowerModel,
    mem_class: MemoryClass,
    freq_ghz: float,
) -> EfficiencyPoint:
    """Efficiency of a fully loaded server running one class at ``freq``."""
    uips = sim.chip_uips(mem_class, freq_ghz, "ntc")
    stall = sim.stall_fraction(mem_class, freq_ghz, "ntc")
    traffic = sim.dram_bytes_per_second(mem_class, freq_ghz, "ntc")
    power_w = power.power_w(
        freq_ghz,
        busy_fraction=1.0,
        stall_fraction=stall,
        dram_bytes_per_s=traffic,
        dram_active_fraction=1.0,
    )
    return EfficiencyPoint(freq_ghz=freq_ghz, chip_uips=uips, power_w=power_w)


def run_fig3(
    sim: PerformanceSimulator | None = None,
    power: ServerPowerModel | None = None,
    freqs_ghz: Tuple[float, ...] | None = None,
) -> Fig3Result:
    """Sweep the efficiency curves for all three classes."""
    simulator = sim if sim is not None else PerformanceSimulator()
    power_model = power if power is not None else ntc_server_power_model()
    grid = (
        freqs_ghz
        if freqs_ghz is not None
        else power_model.spec.opps.frequencies_ghz
    )
    curves: Dict[str, List[EfficiencyPoint]] = {}
    for mc in ALL_MEMORY_CLASSES:
        curves[mc.label] = [
            efficiency_point(simulator, power_model, mc, f) for f in grid
        ]
    return Fig3Result(curves=curves)


def render(result: Fig3Result) -> str:
    """Efficiency table over a subsampled grid plus the peaks."""
    labels = list(result.curves)
    grid = [p.freq_ghz for p in result.curves[labels[0]]]
    shown = [f for f in grid if abs(f * 10 - round(f * 10)) < 1e-9][::3]
    headers = ["f (GHz)"] + labels
    body = []
    for freq in shown:
        row: List[object] = [f"{freq:.1f}"]
        for label in labels:
            point = next(
                p for p in result.curves[label] if p.freq_ghz == freq
            )
            row.append(f"{point.buips_per_watt:.3f}")
        body.append(row)
    peaks = ", ".join(
        f"{label}: {result.peak(label).freq_ghz:.1f} GHz "
        f"({result.peak(label).buips_per_watt:.3f} BUIPS/W)"
        for label in labels
    )
    return (
        "Fig. 3 — server efficiency (BUIPS/W) vs core frequency\n"
        f"{format_table(headers, body)}\n"
        f"efficiency peaks: {peaks}\n"
        "paper peaks: low/mid ~1.5 GHz, high ~1.2 GHz; efficiency "
        "decreases with memory intensity"
    )


def main() -> None:
    """Run and print the experiment."""
    print(render(run_fig3()))


if __name__ == "__main__":
    main()
