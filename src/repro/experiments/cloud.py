"""Experiment: the online cloud — "Consolidating or Not?" under churn.

Runs every registered cloud workload scenario (zero-churn control,
steady trickle, diurnal bursts, flash crowds, batch+latency mix) under
the paper's day-ahead EPACT and the online policies (placement-only
best-fit, reactive threshold consolidation, forecast-assisted reactive),
and reports the SLA/energy/migration trade-off per scenario.

With ``jobs > 1`` every (scenario, policy) pair fans out over the
hardened pool runner (:mod:`repro.experiments.pool`): the day-ahead
predictions are frozen once per scenario and shipped to the workers as
plain arrays, so results equal the serial run exactly; a pair that
times out or crashes is retried once and, failing that, reported as a
failed run in the output instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import OnlineBestFitPolicy, OnlineReactivePolicy
from ..cloud import get_scenario, sla_table, summarize
from ..core import EpactPolicy
from ..core.types import AllocationPolicy
from ..dcsim import SimulationResult, run_cloud_policies
from ..dcsim.cloud import _run_one_cloud_policy
from ..dcsim.engine import shared_predictions
from ..forecast import DayAheadPredictor
from .pool import FailedRun, failed_line, run_tasks

DEFAULT_SCENARIOS = (
    "zero-churn",
    "steady",
    "diurnal-burst",
    "flash-crowd",
    "batch-latency",
)


def default_cloud_policies() -> List[AllocationPolicy]:
    """The four-way comparison: day-ahead EPACT vs the online policies."""
    return [
        EpactPolicy(),
        OnlineBestFitPolicy(),
        OnlineReactivePolicy(),
        OnlineReactivePolicy(signal="forecast", name="ONLINE-REACTIVE-F"),
    ]


@dataclass(frozen=True)
class CloudResult:
    """Per-scenario, per-policy cloud simulation runs."""

    results: Dict[str, Dict[str, SimulationResult]]

    def scenario(self, name: str) -> Dict[str, SimulationResult]:
        """One scenario's policy runs."""
        return self.results[name]


def run_cloud(
    quick: bool = False,
    jobs: int = 1,
    scenario_names: Optional[Sequence[str]] = None,
    n_vms: int = 600,
    n_days: int = 14,
    n_slots: Optional[int] = None,
    seed: int = 2018,
    max_servers: int = 600,
    policies: Optional[Sequence[AllocationPolicy]] = None,
    tracer=None,
    metrics=None,
) -> CloudResult:
    """Run the cloud scenario fan (see module docstring).

    Args:
        quick: shrink to 120 VMs / 9 days / 2 evaluated days.
        jobs: worker processes; every (scenario, policy) pair is one
            task in a single shared pool.
        scenario_names: subset of the registry (default: all).
        n_vms / n_days / seed: scenario build configuration.
        n_slots: evaluated slots (default: everything after training).
        max_servers: fleet bound.
        policies: policies to compare (fresh instances are required for
            stateful online policies; the defaults are fresh).
        tracer / metrics: optional observability hooks
            (:mod:`repro.obs`).  Serial runs trace at engine level;
            parallel sweeps emit pool task events only (tracers do not
            cross the pickle boundary).  Results are identical.
    """
    if quick:
        n_vms, n_days, max_servers = 120, 9, 120
        n_slots = 48 if n_slots is None else n_slots
    names = list(scenario_names or DEFAULT_SCENARIOS)
    policy_list = (
        list(policies) if policies is not None else default_cloud_policies()
    )
    kwargs = dict(n_slots=n_slots, max_servers=max_servers)

    prepared = {}
    for name in names:
        dataset, schedule = get_scenario(name).build(
            n_vms=n_vms, n_days=n_days, seed=seed, n_slots=n_slots
        )
        prepared[name] = (dataset, DayAheadPredictor(dataset), schedule)

    results: Dict[str, Dict[str, SimulationResult]] = {}
    if jobs is None or jobs <= 1:
        for name in names:
            dataset, predictor, schedule = prepared[name]
            results[name] = run_cloud_policies(
                dataset,
                predictor,
                policy_list,
                schedule,
                tracer=tracer,
                metrics=metrics,
                **kwargs,
            )
        return CloudResult(results=results)

    tasks = []
    for name in names:
        dataset, predictor, schedule = prepared[name]
        shared = shared_predictions(dataset, predictor, n_slots=n_slots)
        tasks.extend(
            (
                (name, policy.name),
                (dataset, shared, policy, schedule, kwargs),
            )
            for policy in policy_list
        )
    runs = run_tasks(
        _run_one_cloud_policy, tasks, jobs, tracer=tracer, metrics=metrics
    )
    for name in names:
        results[name] = {
            policy.name: runs[(name, policy.name)]
            for policy in policy_list
        }
    return CloudResult(results=results)


def render(result: CloudResult) -> str:
    """Per-scenario SLA tables plus the headline trade-off.

    (scenario, policy) pairs that failed in a parallel sweep are listed
    per scenario instead of aborting the report.
    """
    lines = ["Online cloud — consolidating or not, under churn"]
    for name, all_runs in result.results.items():
        runs = {
            k: v
            for k, v in all_runs.items()
            if not isinstance(v, FailedRun)
        }
        scenario = get_scenario(name)
        lines.append("")
        lines.append(f"scenario {name}: {scenario.description}")
        lines.append(sla_table(runs))
        for k, v in all_runs.items():
            if isinstance(v, FailedRun):
                lines.append(failed_line(k, v))
        if "EPACT" in runs and "ONLINE-REACTIVE" in runs:
            epact = summarize(runs["EPACT"])
            react = summarize(runs["ONLINE-REACTIVE"])
            if epact.total_energy_mj > 0.0:
                delta = (
                    (react.total_energy_mj - epact.total_energy_mj)
                    / epact.total_energy_mj
                    * 100.0
                )
                lines.append(
                    f"  reactive online uses {delta:+.1f}% energy vs "
                    f"day-ahead EPACT, with {react.total_migrations} vs "
                    f"{epact.total_migrations} migrations"
                )
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_cloud(quick=True)))


if __name__ == "__main__":
    main()
