"""Hardened process-pool runner for experiment sweeps.

The experiment drivers fan (scenario, policy) pairs out over a
``ProcessPoolExecutor``.  The naive pattern — ``future.result()`` with
no timeout inside a ``with`` block — has two failure modes that kill a
whole sweep:

* a single wedged worker (e.g. a BLAS deadlock after fork) blocks the
  sweep forever;
* one crashed task raises mid-collection and throws away every other
  finished result.

:func:`run_tasks` fixes both: every task gets a per-wait timeout and
one bounded retry in a fresh single-worker pool, and tasks that still
fail come back as :data:`FailedRun` markers *in* the result mapping —
the sweep completes and reports what it could compute.  Use
:func:`split_failures` to separate the survivors from the failures.

Every task is also timed: successes wall-clock their own execution in
the worker, failures accumulate submit-to-final-failure time in the
parent, and :class:`FailedRun` carries both the elapsed seconds and
the attempt count so a FAILED summary line (:func:`failed_line`) says
how much was burned before giving up.  With a tracer, task lifecycle
events (``task_start`` / ``task_done`` / ``task_retry`` /
``task_failed``) land on the event channel and per-task wall times on
the timing channel.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Sequence, Tuple


@dataclass(frozen=True)
class FailedRun:
    """Marker for a task that failed after its retry.

    Attributes:
        key: the task's key as passed to :func:`run_tasks`.
        error: a one-line description of the final failure.
        attempts: how many times the task was actually tried (2 for
            the pooled run plus its retry; 1 when the retry could not
            even be submitted).
        elapsed_s: wall-clock seconds from first submission to the
            final failure, timeouts and retry included.
    """

    key: Hashable
    error: str
    attempts: int
    elapsed_s: float = 0.0


def failed_line(key: Hashable, failure: FailedRun) -> str:
    """The house FAILED summary line for one :class:`FailedRun`.

    Shared by the experiment renderers so every report surfaces the
    same facts: what failed, how often it was tried, how long it
    burned, and the final error.
    """
    return (
        f"  FAILED {key} after {failure.attempts} attempt(s) in "
        f"{failure.elapsed_s:.1f}s: {failure.error}"
    )


def _timed_call(fn: Callable, *args) -> Tuple[float, Any]:
    """Worker-side wrapper: ``(own wall seconds, fn(*args))``.

    Timing inside the worker excludes queueing, so a successful task's
    ``elapsed_s`` measures the task, not the pool's backlog.
    Module-level so it pickles.
    """
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def run_tasks(
    fn: Callable,
    tasks: Sequence[Tuple[Hashable, Tuple]],
    jobs: int,
    timeout_s: float = 900.0,
    tracer=None,
    metrics=None,
) -> Dict[Hashable, Any]:
    """Run ``fn(*args)`` for every ``(key, args)`` task over a pool.

    Results come back keyed and in task order; a task that times out or
    raises is retried once in a fresh single-worker pool (a fresh
    interpreter sidesteps wedged-worker state), and if the retry also
    fails its slot holds a :class:`FailedRun` instead of raising.

    Args:
        fn: a picklable callable (module-level function).
        tasks: ``(key, args)`` pairs; keys must be unique.
        jobs: worker processes for the shared pool.
        timeout_s: per-wait timeout; generous by default so only a
            genuinely wedged worker trips it.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`; emits
            task lifecycle events in the parent (tracers never cross
            the pickle boundary into workers) plus per-task wall times
            on the timing channel.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            accumulates a ``task_elapsed_s`` histogram and
            ``tasks`` / ``task_retries`` / ``task_failures`` counters.

    Returns:
        ``{key: result-or-FailedRun}`` in task insertion order.
    """
    keys = [key for key, _ in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("run_tasks keys must be unique")
    traced = tracer is not None and getattr(tracer, "enabled", False)
    measured = metrics is not None and getattr(metrics, "enabled", False)
    results: Dict[Hashable, Any] = {}
    elapsed: Dict[Hashable, float] = {}
    retried: set = set()
    retry: Dict[Hashable, Tuple[Tuple, str]] = {}
    submitted_at: Dict[Hashable, float] = {}

    pool = ProcessPoolExecutor(max_workers=max(1, int(jobs)))
    try:
        futures = {}
        for key, args in tasks:
            if traced:
                tracer.emit("task_start", key=str(key))
            submitted_at[key] = time.perf_counter()
            futures[key] = pool.submit(_timed_call, fn, *args)
        for key, args in tasks:
            try:
                elapsed[key], results[key] = futures[key].result(
                    timeout=timeout_s
                )
            except TimeoutError:
                futures[key].cancel()
                retry[key] = (args, f"timed out after {timeout_s:.0f}s")
                results[key] = None  # placeholder, keeps insertion order
            except Exception as exc:  # worker died or task raised
                retry[key] = (args, f"{type(exc).__name__}: {exc}")
                results[key] = None
    finally:
        # A wedged worker would make a waiting shutdown hang forever;
        # only wait when every task came back clean.
        pool.shutdown(wait=not retry, cancel_futures=bool(retry))

    for key, (args, first_error) in retry.items():
        retried.add(key)
        if traced:
            tracer.emit("task_retry", key=str(key), error=first_error)
        if measured:
            metrics.counter("task_retries")
        attempts = 1
        try:
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                attempts = 2
                elapsed[key], results[key] = solo.submit(
                    _timed_call, fn, *args
                ).result(timeout=timeout_s)
            finally:
                solo.shutdown(wait=False, cancel_futures=True)
        except Exception as exc:
            # Failures never report a clean in-worker time; what they
            # cost the sweep is everything since first submission.
            burn = time.perf_counter() - submitted_at[key]
            results[key] = FailedRun(
                key=key,
                error=(
                    f"first attempt: {first_error}; "
                    f"retry: {type(exc).__name__}: {exc}"
                ),
                attempts=attempts,
                elapsed_s=burn,
            )

    for key, _ in tasks:
        value = results[key]
        failed = isinstance(value, FailedRun)
        task_s = value.elapsed_s if failed else elapsed[key]
        if measured:
            metrics.counter("tasks")
            metrics.histogram("task_elapsed_s", task_s)
            if failed:
                metrics.counter("task_failures")
        if not traced:
            continue
        if failed:
            tracer.emit(
                "task_failed",
                key=str(key),
                error=value.error,
                attempts=value.attempts,
            )
        else:
            tracer.emit(
                "task_done", key=str(key), retried=key in retried
            )
        tracer.timing(
            "task_time",
            key=str(key),
            elapsed_s=task_s,
            attempts=(
                value.attempts
                if failed
                else (2 if key in retried else 1)
            ),
            failed=failed,
        )
    return results


def split_failures(
    results: Dict[Hashable, Any]
) -> Tuple[Dict[Hashable, Any], Dict[Hashable, FailedRun]]:
    """Partition a :func:`run_tasks` mapping into (ok, failed)."""
    ok = {
        key: value
        for key, value in results.items()
        if not isinstance(value, FailedRun)
    }
    failed = {
        key: value
        for key, value in results.items()
        if isinstance(value, FailedRun)
    }
    return ok, failed


def count_failures(value: Any) -> int:
    """Count :class:`FailedRun` markers anywhere inside a result.

    Experiment drivers return nested containers (dicts of dicts,
    dataclasses holding result mappings); this walks dicts, lists,
    tuples and dataclass fields so the CLI can turn "any run failed
    after retry" into a non-zero exit code without each driver growing
    its own traversal.
    """
    if isinstance(value, FailedRun):
        return 1
    if isinstance(value, dict):
        return sum(count_failures(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(count_failures(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            count_failures(getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
    return 0
