"""Hardened process-pool runner for experiment sweeps.

The experiment drivers fan (scenario, policy) pairs out over a
``ProcessPoolExecutor``.  The naive pattern — ``future.result()`` with
no timeout inside a ``with`` block — has two failure modes that kill a
whole sweep:

* a single wedged worker (e.g. a BLAS deadlock after fork) blocks the
  sweep forever;
* one crashed task raises mid-collection and throws away every other
  finished result.

:func:`run_tasks` fixes both: every task gets a per-wait timeout and
one bounded retry in a fresh single-worker pool, and tasks that still
fail come back as :data:`FailedRun` markers *in* the result mapping —
the sweep completes and reports what it could compute.  Use
:func:`split_failures` to separate the survivors from the failures.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor, TimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Sequence, Tuple


@dataclass(frozen=True)
class FailedRun:
    """Marker for a task that failed after its retry.

    Attributes:
        key: the task's key as passed to :func:`run_tasks`.
        error: a one-line description of the final failure.
        attempts: how many times the task was tried (always 2: the
            pooled run plus one retry in a fresh worker).
    """

    key: Hashable
    error: str
    attempts: int


def run_tasks(
    fn: Callable,
    tasks: Sequence[Tuple[Hashable, Tuple]],
    jobs: int,
    timeout_s: float = 900.0,
) -> Dict[Hashable, Any]:
    """Run ``fn(*args)`` for every ``(key, args)`` task over a pool.

    Results come back keyed and in task order; a task that times out or
    raises is retried once in a fresh single-worker pool (a fresh
    interpreter sidesteps wedged-worker state), and if the retry also
    fails its slot holds a :class:`FailedRun` instead of raising.

    Args:
        fn: a picklable callable (module-level function).
        tasks: ``(key, args)`` pairs; keys must be unique.
        jobs: worker processes for the shared pool.
        timeout_s: per-wait timeout; generous by default so only a
            genuinely wedged worker trips it.

    Returns:
        ``{key: result-or-FailedRun}`` in task insertion order.
    """
    keys = [key for key, _ in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("run_tasks keys must be unique")
    results: Dict[Hashable, Any] = {}
    retry: Dict[Hashable, Tuple[Tuple, str]] = {}

    pool = ProcessPoolExecutor(max_workers=max(1, int(jobs)))
    try:
        futures = {
            key: pool.submit(fn, *args) for key, args in tasks
        }
        for key, args in tasks:
            try:
                results[key] = futures[key].result(timeout=timeout_s)
            except TimeoutError:
                futures[key].cancel()
                retry[key] = (args, f"timed out after {timeout_s:.0f}s")
                results[key] = None  # placeholder, keeps insertion order
            except Exception as exc:  # worker died or task raised
                retry[key] = (args, f"{type(exc).__name__}: {exc}")
                results[key] = None
    finally:
        # A wedged worker would make a waiting shutdown hang forever;
        # only wait when every task came back clean.
        pool.shutdown(wait=not retry, cancel_futures=bool(retry))

    for key, (args, first_error) in retry.items():
        try:
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                results[key] = solo.submit(fn, *args).result(
                    timeout=timeout_s
                )
            finally:
                solo.shutdown(wait=False, cancel_futures=True)
        except Exception as exc:
            results[key] = FailedRun(
                key=key,
                error=(
                    f"first attempt: {first_error}; "
                    f"retry: {type(exc).__name__}: {exc}"
                ),
                attempts=2,
            )
    return results


def split_failures(
    results: Dict[Hashable, Any]
) -> Tuple[Dict[Hashable, Any], Dict[Hashable, FailedRun]]:
    """Partition a :func:`run_tasks` mapping into (ok, failed)."""
    ok = {
        key: value
        for key, value in results.items()
        if not isinstance(value, FailedRun)
    }
    failed = {
        key: value
        for key, value in results.items()
        if isinstance(value, FailedRun)
    }
    return ok, failed


def count_failures(value: Any) -> int:
    """Count :class:`FailedRun` markers anywhere inside a result.

    Experiment drivers return nested containers (dicts of dicts,
    dataclasses holding result mappings); this walks dicts, lists,
    tuples and dataclass fields so the CLI can turn "any run failed
    after retry" into a non-zero exit code without each driver growing
    its own traversal.
    """
    if isinstance(value, FailedRun):
        return 1
    if isinstance(value, dict):
        return sum(count_failures(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(count_failures(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            count_failures(getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
    return 0
