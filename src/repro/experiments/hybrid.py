"""Experiment: heterogeneous fleets — "Consolidating or Not?" per mix.

Sweeps the registered NTC/conventional fleet compositions
(:mod:`repro.cloud.fleets`) over the same traces and day-ahead
predictions, twice:

* **fixed population** — the paper's Section VI-C protocol with
  :class:`~repro.core.fleet.FleetEpactPolicy` splitting the demand
  across pools (spread on NTC, consolidate the spill on conventional
  servers);
* **under churn** — the online-cloud protocol on a churning scenario,
  comparing the fleet-aware day-ahead EPACT against the pool-aware
  reactive online policy.

The output answers the title question *across fleet compositions*:
energy, SLA violation rate and migrations per mix, plus the headline
all-NTC vs all-conventional delta.

With ``jobs > 1`` every (mix, protocol, policy) triple fans out over
the hardened pool runner (:mod:`repro.experiments.pool`); the
predictions are frozen once and shipped to the workers as plain
arrays, so results equal the serial run exactly, and a triple that
times out or crashes is retried once then reported as failed instead
of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import OnlineReactivePolicy
from ..cloud import get_fleet, get_scenario, list_fleets, sla_table
from ..core.fleet import FleetEpactPolicy
from ..core.types import AllocationPolicy
from ..dcsim import SimulationResult
from ..dcsim.cloud import CloudSimulation, _run_one_cloud_policy
from ..dcsim.engine import (
    DataCenterSimulation,
    _run_one_policy,
    shared_predictions,
)
from ..forecast import DayAheadPredictor
from .pool import FailedRun, failed_line, run_tasks

DEFAULT_MIXES = (
    "all-ntc",
    "ntc-heavy",
    "hybrid-50/50",
    "conventional-heavy",
    "all-conventional",
)


def default_hybrid_policies() -> List[AllocationPolicy]:
    """The churn-leg comparison: fleet-aware EPACT vs pool-aware online."""
    return [FleetEpactPolicy(), OnlineReactivePolicy()]


@dataclass(frozen=True)
class HybridResult:
    """Per-mix runs of both protocols.

    Attributes:
        fixed: fixed-population :class:`SimulationResult` per mix.
        churn: per-mix, per-policy runs on the churn scenario.
        churn_scenario: the churn scenario the second leg used.
    """

    fixed: Dict[str, SimulationResult]
    churn: Dict[str, Dict[str, SimulationResult]]
    churn_scenario: str


def run_hybrid(
    quick: bool = False,
    jobs: int = 1,
    mix_names: Optional[Sequence[str]] = None,
    n_vms: int = 600,
    n_days: int = 14,
    n_slots: Optional[int] = None,
    seed: int = 2018,
    total_servers: int = 600,
    churn_scenario: str = "diurnal-burst",
    policies: Optional[Sequence[AllocationPolicy]] = None,
) -> HybridResult:
    """Run the fleet-composition sweep (see module docstring).

    Args:
        quick: shrink to 120 VMs / 9 days / 2 evaluated days.
        jobs: worker processes; every (mix, protocol, policy) triple is
            one task in a single shared pool.
        mix_names: subset of the fleet registry (default: all mixes).
        n_vms / n_days / seed: trace configuration.
        n_slots: evaluated slots (default: everything after training).
        total_servers: fleet size shared by every mix.
        churn_scenario: the cloud scenario of the churn leg.
        policies: churn-leg policies (fresh instances are required for
            stateful online policies; the defaults are fresh).
    """
    if quick:
        # A deliberately tight fleet (vs the 120-server cloud quick
        # scale): the NTC pool of the conventional-heavy mixes then
        # actually binds, so the composition axis is visible — demand
        # spills onto the conventional pool instead of every mix
        # collapsing onto an oversized NTC pool.
        n_vms, n_days, total_servers = 120, 9, 40
        n_slots = 48 if n_slots is None else n_slots
    names = list(mix_names or DEFAULT_MIXES)
    fleets = {name: get_fleet(name, total_servers) for name in names}
    policy_list = (
        list(policies)
        if policies is not None
        else default_hybrid_policies()
    )

    dataset, schedule = get_scenario(churn_scenario).build(
        n_vms=n_vms, n_days=n_days, seed=seed, n_slots=n_slots
    )
    predictor = DayAheadPredictor(dataset)
    kwargs = dict(n_slots=n_slots)

    fixed: Dict[str, SimulationResult] = {}
    churn: Dict[str, Dict[str, SimulationResult]] = {}
    if jobs is None or jobs <= 1:
        for name in names:
            fleet = fleets[name]
            fixed[name] = DataCenterSimulation(
                dataset,
                predictor,
                FleetEpactPolicy(),
                fleet=fleet,
                **kwargs,
            ).run()
            churn[name] = {}
            for policy in policy_list:
                churn[name][policy.name] = CloudSimulation(
                    dataset,
                    predictor,
                    policy,
                    schedule,
                    fleet=fleet,
                    **kwargs,
                ).run()
        return HybridResult(
            fixed=fixed, churn=churn, churn_scenario=churn_scenario
        )

    shared = shared_predictions(dataset, predictor, n_slots=n_slots)
    fixed_tasks = []
    churn_tasks = []
    for name in names:
        fleet_kwargs = {**kwargs, "fleet": fleets[name]}
        fixed_tasks.append(
            (name, (dataset, shared, FleetEpactPolicy(), fleet_kwargs))
        )
        churn_tasks.extend(
            (
                (name, policy.name),
                (dataset, shared, policy, schedule, fleet_kwargs),
            )
            for policy in policy_list
        )
    fixed_runs = run_tasks(_run_one_policy, fixed_tasks, jobs)
    churn_runs = run_tasks(_run_one_cloud_policy, churn_tasks, jobs)
    for name in names:
        fixed[name] = fixed_runs[name]
        churn[name] = {
            policy.name: churn_runs[(name, policy.name)]
            for policy in policy_list
        }
    return HybridResult(
        fixed=fixed, churn=churn, churn_scenario=churn_scenario
    )


def render(result: HybridResult) -> str:
    """Per-mix tables plus the headline composition trade-off.

    Triples that failed in a parallel sweep are listed in place of
    their table rows instead of aborting the report.
    """
    descriptions = list_fleets()
    lines = [
        "Heterogeneous fleets — consolidating or not, per composition"
    ]
    fixed_ok = {
        k: v
        for k, v in result.fixed.items()
        if not isinstance(v, FailedRun)
    }
    lines.append("")
    lines.append(
        "fixed population (day-ahead EPACT split across pools):"
    )
    lines.append(sla_table(fixed_ok))
    for name, res in result.fixed.items():
        if isinstance(res, FailedRun):
            lines.append(failed_line(name, res))
    for name in result.fixed:
        lines.append(f"  {name}: {descriptions.get(name, '')}")

    lines.append("")
    lines.append(
        f"under churn ({result.churn_scenario}), per mix:"
    )
    for name, all_runs in result.churn.items():
        runs = {
            k: v
            for k, v in all_runs.items()
            if not isinstance(v, FailedRun)
        }
        lines.append("")
        lines.append(f"fleet {name}:")
        lines.append(sla_table(runs))
        for k, v in all_runs.items():
            if isinstance(v, FailedRun):
                lines.append(failed_line(k, v))

    energies = {
        name: sum(r.energy_j for r in res.records)
        for name, res in fixed_ok.items()
    }
    if "all-ntc" in energies and "all-conventional" in energies:
        ntc = energies["all-ntc"]
        conv = energies["all-conventional"]
        if conv > 0.0:
            delta = (ntc - conv) / conv * 100.0
            lines.append("")
            lines.append(
                f"headline: the all-NTC fleet uses {delta:+.1f}% energy "
                f"vs all-conventional on the same traces; the mixed "
                f"fleets interpolate between spreading and "
                f"consolidation."
            )
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_hybrid(quick=True)))


if __name__ == "__main__":
    main()
