"""Experiment: Fig. 1 — data-center power vs. frequency, NTC vs. non-NTC.

Regenerates both panels of the paper's Fig. 1: worst-case power of an
80-server data center running CPU-bounded load at utilization rates of
10-90%, swept over the DVFS range, for

* (a) the NTC server — an interior optimum near 1.9 GHz at moderate
  utilization, minimum-feasible frequency above the ~50% knee;
* (b) the conventional E5-2620 server — monotone decrease toward ``Fmax``
  (consolidation optimal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..anchors import FIG1_N_SERVERS, FIG1_UTILIZATIONS_PCT
from ..dcsim.reporting import format_table
from ..power.datacenter import DataCenterPowerAnalysis, DcOperatingPoint
from ..power.server_power import (
    ServerPowerModel,
    conventional_server_power_model,
    ntc_server_power_model,
)


@dataclass(frozen=True)
class Fig1Result:
    """Power curves and per-utilization optima for both panels."""

    ntc_curves: Dict[int, List[DcOperatingPoint]]
    conventional_curves: Dict[int, List[DcOperatingPoint]]
    ntc_optima: Dict[int, DcOperatingPoint]
    conventional_optima: Dict[int, DcOperatingPoint]

    def ntc_interior_optimum_range(self) -> Tuple[float, float]:
        """Min/max optimal frequency over the below-knee utilizations."""
        freqs = [
            p.freq_ghz for u, p in self.ntc_optima.items() if u <= 50
        ]
        return (min(freqs), max(freqs))


def run_fig1(
    n_servers: int = FIG1_N_SERVERS,
    utilizations_pct: Tuple[int, ...] = FIG1_UTILIZATIONS_PCT,
    ntc_power: ServerPowerModel | None = None,
    conventional_power: ServerPowerModel | None = None,
) -> Fig1Result:
    """Sweep both data centers over utilization and frequency."""
    ntc = DataCenterPowerAnalysis(
        ntc_power if ntc_power is not None else ntc_server_power_model(),
        n_servers=n_servers,
    )
    conv = DataCenterPowerAnalysis(
        conventional_power
        if conventional_power is not None
        else conventional_server_power_model(),
        n_servers=n_servers,
    )
    ntc_curves = {u: ntc.power_curve(u) for u in utilizations_pct}
    conv_curves = {u: conv.power_curve(u) for u in utilizations_pct}
    return Fig1Result(
        ntc_curves=ntc_curves,
        conventional_curves=conv_curves,
        ntc_optima={u: ntc.optimal_point(u) for u in utilizations_pct},
        conventional_optima={
            u: conv.optimal_point(u) for u in utilizations_pct
        },
    )


def render(result: Fig1Result) -> str:
    """Per-utilization optimum table plus selected curve rows."""
    headers = [
        "util %",
        "NTC opt f (GHz)",
        "NTC opt P (kW)",
        "NTC servers",
        "conv opt f (GHz)",
        "conv opt P (kW)",
    ]
    body = []
    for u in sorted(result.ntc_optima):
        n_opt = result.ntc_optima[u]
        c_opt = result.conventional_optima[u]
        body.append(
            [
                u,
                f"{n_opt.freq_ghz:.1f}",
                f"{n_opt.power_kw:.2f}",
                n_opt.n_active_servers,
                f"{c_opt.freq_ghz:.1f}",
                f"{c_opt.power_kw:.2f}",
            ]
        )
    lo, hi = result.ntc_interior_optimum_range()
    lines = [
        "Fig. 1 — worst-case DC power vs frequency (80 servers, CPU-bound)",
        format_table(headers, body),
        f"NTC interior optimum (util <= 50%): {lo:.1f}-{hi:.1f} GHz "
        f"(paper: ~1.9 GHz)",
        "conventional optimum: Fmax at every utilization "
        "(consolidation wins)",
    ]
    # A few full curves for eyeballing the shape.
    for u in (30, 50):
        curve = result.ntc_curves[u]
        row = ", ".join(
            f"{p.freq_ghz:.1f}:{p.power_kw:.2f}" for p in curve[::4]
        )
        lines.append(f"NTC curve @ {u}% (GHz:kW, subsampled): {row}")
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment."""
    print(render(run_fig1()))


if __name__ == "__main__":
    main()
