"""Experiment: Figs. 4-6 — the one-week data-center policy comparison.

Runs EPACT, COAT and COAT-OPT over the same synthetic cluster traces and
shared day-ahead forecasts, reproducing the paper's three weekly series:

* Fig. 4 — SLA violations per slot (EPACT drastically lower),
* Fig. 5 — active servers per slot (COAT substantially fewer than EPACT),
* Fig. 6 — energy per slot (EPACT saves up to ~45% vs COAT and ~10%
  overall vs COAT-OPT).

The full paper-scale configuration (600 VMs, one evaluated week) takes a
couple of minutes; ``quick=True`` runs a reduced configuration with the
same shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines import CoatOptPolicy, CoatPolicy
from ..core import EpactPolicy
from ..core.types import AllocationPolicy
from ..dcsim import (
    SimulationResult,
    active_server_reduction_pct,
    comparison_table,
    energy_savings_pct,
    run_policies,
    series_block,
    total_energy_savings_pct,
)
from ..forecast import DayAheadPredictor
from ..traces import TraceDataset, default_dataset


@dataclass(frozen=True)
class Fig456Result:
    """Policy runs plus the headline comparison statistics."""

    results: Dict[str, SimulationResult]

    @property
    def epact(self) -> SimulationResult:
        """EPACT's run."""
        return self.results["EPACT"]

    @property
    def coat(self) -> SimulationResult:
        """COAT's run."""
        return self.results["COAT"]

    @property
    def coat_opt(self) -> SimulationResult:
        """COAT-OPT's run."""
        return self.results["COAT-OPT"]

    def best_saving_vs_coat_pct(self) -> float:
        """Best per-slot energy saving vs COAT (paper: up to 45%)."""
        return float(energy_savings_pct(self.epact, self.coat).max())

    def total_saving_vs_coat_pct(self) -> float:
        """Whole-horizon saving vs COAT."""
        return total_energy_savings_pct(self.epact, self.coat)

    def total_saving_vs_coat_opt_pct(self) -> float:
        """Whole-horizon saving vs COAT-OPT (paper: ~10% worst case)."""
        return total_energy_savings_pct(self.epact, self.coat_opt)

    def server_reduction_coat_vs_epact_pct(self) -> float:
        """COAT's mean active-server reduction vs EPACT (paper: ~37%)."""
        return active_server_reduction_pct(self.coat, self.epact)

    def violation_ratio_epact_vs_coat(self) -> float:
        """EPACT violations as a fraction of COAT's (paper: near zero)."""
        coat_total = max(1, self.coat.total_violations)
        return self.epact.total_violations / coat_total


def run_fig456(
    dataset: Optional[TraceDataset] = None,
    n_vms: int = 600,
    n_days: int = 14,
    seed: int = 2018,
    max_servers: int = 600,
    n_slots: Optional[int] = None,
    quick: bool = False,
    extra_policies: Optional[List[AllocationPolicy]] = None,
    jobs: int = 1,
) -> Fig456Result:
    """Run the three-policy comparison.

    Args:
        dataset: traces to use; generated from the other knobs if omitted.
        n_vms / n_days / seed: generator configuration.
        max_servers: fleet size (paper: 600).
        n_slots: evaluated slots; defaults to everything after the
            training week (one week for 14-day traces).
        quick: shrink to 120 VMs / 9 days / 2 evaluated days.
        extra_policies: additional policies to run alongside the paper's
            three (e.g. fixed-cap variants for the Fig. 6 "other caps").
        jobs: worker processes for the policy runs (see
            :func:`repro.dcsim.run_policies`); 1 keeps the serial path.
    """
    if quick:
        n_vms, n_days = 120, 9
        n_slots = 48 if n_slots is None else n_slots
    data = (
        dataset
        if dataset is not None
        else default_dataset(n_vms=n_vms, n_days=n_days, seed=seed)
    )
    predictor = DayAheadPredictor(data)
    policies: List[AllocationPolicy] = [
        EpactPolicy(),
        CoatPolicy(),
        CoatOptPolicy(),
    ]
    if extra_policies:
        policies.extend(extra_policies)
    results = run_policies(
        data,
        predictor,
        policies,
        jobs=jobs,
        max_servers=max_servers,
        n_slots=n_slots,
    )
    return Fig456Result(results=results)


def render(result: Fig456Result) -> str:
    """Weekly series sparklines plus the headline statistics."""
    lines = ["Figs. 4-6 — one-week policy comparison"]
    lines.append("")
    lines.append(comparison_table(result.results))
    lines.append("\nFig. 4: violations per slot")
    for name, run in result.results.items():
        lines.append(series_block(name, run.violations_per_slot))
    lines.append("\nFig. 5: active servers per slot")
    for name, run in result.results.items():
        lines.append(series_block(name, run.active_servers_per_slot))
    lines.append("\nFig. 6: energy per slot (MJ)")
    for name, run in result.results.items():
        lines.append(series_block(name, run.energy_mj_per_slot, unit="MJ"))
    lines.append("")
    lines.append(
        f"EPACT vs COAT:     total saving "
        f"{result.total_saving_vs_coat_pct():.1f}%, best slot "
        f"{result.best_saving_vs_coat_pct():.1f}% (paper: up to 45%)"
    )
    lines.append(
        f"EPACT vs COAT-OPT: total saving "
        f"{result.total_saving_vs_coat_opt_pct():.1f}% (paper: ~10% worst)"
    )
    lines.append(
        f"COAT active servers vs EPACT: "
        f"-{result.server_reduction_coat_vs_epact_pct():.1f}% "
        f"(paper: -37%)"
    )
    lines.append(
        f"violations: EPACT {result.epact.total_violations}, COAT "
        f"{result.coat.total_violations}, COAT-OPT "
        f"{result.coat_opt.total_violations}"
    )
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_fig456(quick=True)))


if __name__ == "__main__":
    main()
