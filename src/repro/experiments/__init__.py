"""Experiment harness: one module per paper table/figure.

Every module exposes ``run_*`` (returns a result object), ``render``
(plain-text report) and ``main`` (CLI).  The published anchor values live
in :mod:`repro.anchors`.
"""

from . import export, fig1, fig2, fig3, fig456, fig7, runner, table1, thunderx

__all__ = [
    "export",
    "fig1",
    "fig2",
    "fig3",
    "fig456",
    "fig7",
    "runner",
    "table1",
    "thunderx",
]
