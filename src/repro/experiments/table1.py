"""Experiment: Table I — QoS analysis across the three platforms.

Regenerates the paper's Table I from the calibrated performance model:
execution times of the three workload classes on the Intel x86 reference
(2.66 GHz), the 2x QoS limit, Cavium ThunderX (2 GHz) and the proposed NTC
server (2 GHz), plus the NTC-over-ThunderX speedups the paper quotes
(1.25x-1.76x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..anchors import TABLE_I
from ..dcsim.reporting import format_table
from ..perf.simulator import PerformanceSimulator
from ..perf.workload import ALL_MEMORY_CLASSES


@dataclass(frozen=True)
class Table1Result:
    """Model-produced Table I plus deviations from the published values."""

    rows: Dict[str, Dict[str, float]]
    published: Dict[str, Dict[str, float]]
    speedups_vs_thunderx: Dict[str, float]

    def max_relative_error(self) -> float:
        """Largest |model - paper| / paper over all table cells."""
        worst = 0.0
        for label, row in self.rows.items():
            for key, value in row.items():
                paper = self.published[label][key]
                worst = max(worst, abs(value - paper) / paper)
        return worst


def run_table1(sim: PerformanceSimulator | None = None) -> Table1Result:
    """Compute the model's Table I."""
    simulator = sim if sim is not None else PerformanceSimulator()
    rows = simulator.table1()
    speedups = {
        mc.label: simulator.speedup_ntc_over_thunderx(mc)
        for mc in ALL_MEMORY_CLASSES
    }
    published = {k: dict(v) for k, v in TABLE_I.items()}
    return Table1Result(
        rows=rows, published=published, speedups_vs_thunderx=speedups
    )


def render(result: Table1Result) -> str:
    """Human-readable Table I with paper-vs-model columns."""
    headers = [
        "class",
        "x86@2.66 (model/paper)",
        "QoS limit",
        "ThunderX@2 (model/paper)",
        "NTC@2 (model/paper)",
        "NTC speedup vs TX",
    ]
    body = []
    for label, row in result.rows.items():
        paper = result.published[label]
        body.append(
            [
                label,
                f"{row['x86_2_66ghz_s']:.3f}/{paper['x86_2_66ghz_s']:.3f}",
                f"{row['qos_limit_s']:.3f}",
                f"{row['thunderx_2ghz_s']:.3f}/{paper['thunderx_2ghz_s']:.3f}",
                f"{row['ntc_2ghz_s']:.3f}/{paper['ntc_2ghz_s']:.3f}",
                f"{result.speedups_vs_thunderx[label]:.2f}x",
            ]
        )
    table = format_table(headers, body)
    return (
        "Table I — QoS analysis (execution times in seconds)\n"
        f"{table}\n"
        f"max relative error vs paper: "
        f"{result.max_relative_error() * 100:.2f}%"
    )


def main() -> None:
    """Run and print the experiment."""
    print(render(run_table1()))


if __name__ == "__main__":
    main()
