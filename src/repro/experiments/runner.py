"""Run-everything CLI: regenerates every table and figure of the paper.

Usage (installed as the ``repro-experiments`` console script)::

    repro-experiments                # all experiments, quick scale
    repro-experiments --full         # paper scale (minutes)
    repro-experiments table1 fig2    # a subset
    repro-experiments --jobs 4       # fan the data-center policy runs
                                     # and sweep points over 4 processes

The exit code reflects sweep health: any run that the hardened pool
runner could not complete (a ``FailedRun`` surviving its retry) makes
the process exit non-zero, so CI catches partial sweeps instead of
green-lighting a report full of ``FAILED`` lines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from . import (
    cloud,
    faults,
    fig1,
    fig2,
    fig3,
    fig456,
    fig7,
    hybrid,
    table1,
    telemetry,
)
from .pool import count_failures


def _run_table1(full: bool, jobs: int) -> Tuple[str, int]:
    return table1.render(table1.run_table1()), 0


def _run_fig1(full: bool, jobs: int) -> Tuple[str, int]:
    return fig1.render(fig1.run_fig1()), 0


def _run_fig2(full: bool, jobs: int) -> Tuple[str, int]:
    return fig2.render(fig2.run_fig2()), 0


def _run_fig3(full: bool, jobs: int) -> Tuple[str, int]:
    return fig3.render(fig3.run_fig3()), 0


def _run_fig456(full: bool, jobs: int) -> Tuple[str, int]:
    result = fig456.run_fig456(quick=not full, jobs=jobs)
    return fig456.render(result), count_failures(result)


def _run_fig7(full: bool, jobs: int) -> Tuple[str, int]:
    result = fig7.run_fig7(quick=not full, jobs=jobs)
    return fig7.render(result), count_failures(result)


def _run_cloud(full: bool, jobs: int) -> Tuple[str, int]:
    result = cloud.run_cloud(quick=not full, jobs=jobs)
    return cloud.render(result), count_failures(result)


def _run_hybrid(full: bool, jobs: int) -> Tuple[str, int]:
    result = hybrid.run_hybrid(quick=not full, jobs=jobs)
    return hybrid.render(result), count_failures(result)


def _run_faults(full: bool, jobs: int) -> Tuple[str, int]:
    result = faults.run_faults(quick=not full, jobs=jobs)
    return faults.render(result), count_failures(result)


def _run_telemetry(full: bool, jobs: int) -> Tuple[str, int]:
    result = telemetry.run_telemetry(quick=not full, jobs=jobs)
    return telemetry.render(result), count_failures(result)


def _run_thunderx(full: bool, jobs: int) -> Tuple[str, int]:
    from . import thunderx

    return thunderx.render(thunderx.run_thunderx()), 0


def _run_validate(full: bool, jobs: int) -> Tuple[str, int]:
    from ..validation import validate_reproduction

    return validate_reproduction().summary(), 0


EXPERIMENTS: Dict[str, Callable[[bool, int], Tuple[str, int]]] = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig456": _run_fig456,
    "fig7": _run_fig7,
    "cloud": _run_cloud,
    "hybrid": _run_hybrid,
    "faults": _run_faults,
    "telemetry": _run_telemetry,
    "thunderx": _run_thunderx,
    "validate": _run_validate,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'Energy Proportionality "
            "in Near-Threshold Computing Servers and Cloud Data Centers' "
            "(DATE 2018)"
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configurations (600 VMs, one-week horizon)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export every experiment's rows/series as CSV files",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the data-center experiments: fig456 "
            "fans its policies, fig7 its sweep points, cloud, faults "
            "and telemetry their (scenario, policy) pairs and hybrid "
            "its (mix, protocol, policy) triples over a process pool, "
            "sharing the day-ahead predictions (default: serial)"
        ),
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    failures = 0
    for name in names:
        print("=" * 72)
        output, n_failed = EXPERIMENTS[name](args.full, args.jobs)
        print(output)
        print()
        failures += n_failed
    if args.csv is not None:
        from .export import export_all

        paths = export_all(args.csv, quick=not args.full)
        print(f"wrote {len(paths)} CSV files to {args.csv}")
    if failures:
        print(
            f"{failures} run(s) FAILED after retry — see the report "
            f"above",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
