"""Run-everything CLI: regenerates every table and figure of the paper.

Usage (installed as the ``repro-experiments`` console script)::

    repro-experiments                # all experiments, quick scale
    repro-experiments --full         # paper scale (minutes)
    repro-experiments table1 fig2    # a subset
    repro-experiments --jobs 4       # fan the data-center policy runs
                                     # and sweep points over 4 processes
    repro-experiments cloud --out runs/today
                                     # also write run artifacts: manifest,
                                     # JSONL trace + timing channels,
                                     # metrics snapshot, per-experiment
                                     # text reports, summary.json
    repro-experiments report runs/today
                                     # scored audit report from a run dir

The exit code reflects sweep health: any run that the hardened pool
runner could not complete (a ``FailedRun`` surviving its retry) makes
the process exit non-zero, so CI catches partial sweeps instead of
green-lighting a report full of ``FAILED`` lines.

Observability (``--out DIR``) never changes results: tracing is
engine-level for serial runs and task-level for parallel sweeps, and
the simulation outputs are bit-identical either way (see
:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import (
    cloud,
    faults,
    fig1,
    fig2,
    fig3,
    fig456,
    fig7,
    hybrid,
    table1,
    telemetry,
)
from .pool import FailedRun, count_failures


@dataclass(frozen=True)
class ObsOptions:
    """Observability knobs the CLI threads into experiment wrappers.

    Attributes:
        tracer: optional :class:`~repro.obs.tracer.RunTracer`.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
        scenarios: optional scenario-name subset for the scenario-sweep
            experiments (cloud / faults / telemetry).  Names are
            registry-specific, so this is meant for single-experiment
            invocations (e.g. the CI smoke run).
    """

    tracer: Any = None
    metrics: Any = None
    scenarios: Optional[List[str]] = None


_NO_OBS = ObsOptions()

#: One wrapper per experiment: (full, jobs, obs) -> (text, n_failed,
#: result-or-None).  The result feeds the ``--out`` summary walker.
ExperimentFn = Callable[[bool, int, ObsOptions], Tuple[str, int, Any]]


def _run_table1(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    return table1.render(table1.run_table1()), 0, None


def _run_fig1(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    return fig1.render(fig1.run_fig1()), 0, None


def _run_fig2(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    return fig2.render(fig2.run_fig2()), 0, None


def _run_fig3(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    return fig3.render(fig3.run_fig3()), 0, None


def _run_fig456(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    result = fig456.run_fig456(quick=not full, jobs=jobs)
    return fig456.render(result), count_failures(result), result


def _run_fig7(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    result = fig7.run_fig7(quick=not full, jobs=jobs)
    return fig7.render(result), count_failures(result), result


def _run_cloud(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    result = cloud.run_cloud(
        quick=not full,
        jobs=jobs,
        scenario_names=obs.scenarios,
        tracer=obs.tracer,
        metrics=obs.metrics,
    )
    return cloud.render(result), count_failures(result), result


def _run_hybrid(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    result = hybrid.run_hybrid(quick=not full, jobs=jobs)
    return hybrid.render(result), count_failures(result), result


def _run_faults(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    result = faults.run_faults(
        quick=not full,
        jobs=jobs,
        fault_names=obs.scenarios,
        tracer=obs.tracer,
        metrics=obs.metrics,
    )
    return faults.render(result), count_failures(result), result


def _run_telemetry(
    full: bool, jobs: int, obs: ObsOptions
) -> Tuple[str, int, Any]:
    result = telemetry.run_telemetry(
        quick=not full,
        jobs=jobs,
        scenario_names=obs.scenarios,
        tracer=obs.tracer,
        metrics=obs.metrics,
    )
    return telemetry.render(result), count_failures(result), result


def _run_hyperscale(
    full: bool, jobs: int, obs: ObsOptions
) -> Tuple[str, int, Any]:
    from . import hyperscale

    # The scenario knob doubles as the profile selector here (the
    # hyperscale registry is its profile ladder): `--scenarios tiny`
    # is the CI smoke run, the default is the 50k-VM quick rung and
    # `--full` the 100k-VM, 4-region rung.
    profile = (
        obs.scenarios[0]
        if obs.scenarios
        else ("full" if full else "quick")
    )
    result = hyperscale.run_hyperscale(
        profile=profile,
        jobs=jobs,
        tracer=obs.tracer,
        metrics=obs.metrics,
    )
    return hyperscale.render(result), 0, result[1]


def _run_thunderx(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    from . import thunderx

    return thunderx.render(thunderx.run_thunderx()), 0, None


def _run_validate(full: bool, jobs: int, obs: ObsOptions) -> Tuple[str, int, Any]:
    from ..validation import validate_reproduction

    return validate_reproduction().summary(), 0, None


EXPERIMENTS: Dict[str, ExperimentFn] = {
    "table1": _run_table1,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig456": _run_fig456,
    "fig7": _run_fig7,
    "cloud": _run_cloud,
    "hybrid": _run_hybrid,
    "faults": _run_faults,
    "telemetry": _run_telemetry,
    "hyperscale": _run_hyperscale,
    "thunderx": _run_thunderx,
    "validate": _run_validate,
}


def collect_summaries(value: Any) -> Any:
    """Reduce an experiment result to a JSON-able summary tree.

    Walks dicts and dataclass fields, turning every
    :class:`~repro.dcsim.SimulationResult` leaf into its
    :func:`~repro.cloud.sla.summarize` dict and every
    :class:`~repro.experiments.pool.FailedRun` into a failure marker;
    everything else (schedules, raw arrays, rendered strings) is
    dropped.  Returns ``None`` when nothing summarizable remains, so
    figure experiments without simulation runs simply don't appear in
    ``summary.json``.
    """
    from ..cloud.sla import summarize
    from ..dcsim import SimulationResult

    if isinstance(value, SimulationResult):
        return dataclasses.asdict(summarize(value))
    if isinstance(value, FailedRun):
        return {
            "failed": True,
            "error": value.error,
            "attempts": value.attempts,
            "elapsed_s": value.elapsed_s,
        }
    if isinstance(value, dict):
        out = {}
        for key, child in value.items():
            reduced = collect_summaries(child)
            if reduced is not None:
                out[str(key)] = reduced
        return out or None
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field in dataclasses.fields(value):
            reduced = collect_summaries(getattr(value, field.name))
            if reduced is not None:
                out[field.name] = reduced
        # A dataclass with exactly one summarizable field (the usual
        # `results` mapping) collapses to that field, keeping the
        # summary tree shallow.
        if len(out) == 1:
            return next(iter(out.values()))
        return out or None
    return None


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arg_list = list(sys.argv[1:]) if argv is None else list(argv)
    if arg_list and arg_list[0] == "report":
        # The audit-report subcommand has its own tiny CLI; dispatch
        # before argparse so `report` never collides with experiment
        # names.
        from ..obs.report import main as report_main

        return report_main(arg_list[1:])

    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'Energy Proportionality "
            "in Near-Threshold Computing Servers and Cloud Data Centers' "
            "(DATE 2018)"
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configurations (600 VMs, one-week horizon)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export every experiment's rows/series as CSV files",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help=(
            "write run artifacts to DIR: manifest.json (seed, config "
            "hash, git rev, versions), trace.jsonl + timing.jsonl "
            "(structured events; deterministic and wall-clock channels), "
            "metrics.json, per-experiment text reports and summary.json; "
            "render them later with `repro-experiments report DIR`"
        ),
    )
    parser.add_argument(
        "--scenarios",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated scenario subset for the cloud / faults / "
            "telemetry sweeps (registry-specific names — combine with a "
            "single experiment, e.g. `telemetry --scenarios lossy-10pct` "
            "for a tiny traced smoke run)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the data-center experiments: fig456 "
            "fans its policies, fig7 its sweep points, cloud, faults "
            "and telemetry their (scenario, policy) pairs and hybrid "
            "its (mix, protocol, policy) triples over a process pool, "
            "sharing the day-ahead predictions (default: serial)"
        ),
    )
    args = parser.parse_args(arg_list)
    names = args.experiments or list(EXPERIMENTS)
    scenarios = (
        [s for s in args.scenarios.split(",") if s]
        if args.scenarios
        else None
    )

    tracer = None
    metrics = None
    if args.out is not None:
        from ..obs import MetricsRegistry, RunTracer, write_manifest

        os.makedirs(args.out, exist_ok=True)
        write_manifest(
            args.out,
            config={
                "experiments": names,
                "full": args.full,
                "jobs": args.jobs,
                "scenarios": scenarios,
            },
            seed=2018,
        )
        tracer = RunTracer.for_run_dir(args.out)
        metrics = MetricsRegistry()
    obs = ObsOptions(tracer=tracer, metrics=metrics, scenarios=scenarios)

    failures = 0
    summaries: Dict[str, Any] = {}
    try:
        for name in names:
            print("=" * 72)
            if tracer is not None:
                tracer.emit(
                    "experiment_start",
                    name=name,
                    full=args.full,
                    jobs=args.jobs,
                )
            output, n_failed, result = EXPERIMENTS[name](
                args.full, args.jobs, obs
            )
            print(output)
            print()
            failures += n_failed
            if tracer is not None:
                tracer.emit("experiment_end", name=name, failures=n_failed)
            if args.out is not None:
                with open(
                    os.path.join(args.out, f"{name}.txt"),
                    "w",
                    encoding="utf-8",
                ) as fh:
                    fh.write(output + "\n")
                summary = collect_summaries(result)
                if summary is not None:
                    summaries[name] = summary
    finally:
        if args.out is not None:
            metrics.emit_timing(tracer)
            metrics.write(os.path.join(args.out, "metrics.json"))
            tracer.close()
            with open(
                os.path.join(args.out, "summary.json"),
                "w",
                encoding="utf-8",
            ) as fh:
                json.dump(summaries, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote run artifacts to {args.out}")

    if args.csv is not None:
        from .export import export_all

        paths = export_all(args.csv, quick=not args.full)
        print(f"wrote {len(paths)} CSV files to {args.csv}")
    if failures:
        print(
            f"{failures} run(s) FAILED after retry — see the report "
            f"above",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
