"""Experiment: hyperscale sharded multi-datacenter simulation.

The paper's consolidation-vs-proportionality question at cloud scale:
tens of thousands of VMs routed across regional NTC fleets
(:mod:`repro.shard.geo`), each region allocated shard by shard
(:mod:`repro.shard.policy`) with the per-shard fan optionally spread
over a process pool.  The profile ladder follows the energy-audit
exemplar's ``small_startup`` → ``large_hyperscale`` rungs:

========  ========  ===========  ==============  ======  =======
profile   regions   VMs/region   servers/region  shards  slots
========  ========  ===========  ==============  ======  =======
tiny      2         300          120             4       2
quick     2         25 000       5 000           16      2
full      4         25 000       5 000           32      4
========  ========  ===========  ==============  ======  =======

``quick`` (the default) is the 50k-VM, 2-region, 10k-server
``large_hyperscale`` rung; ``tiny`` is the CI smoke profile; ``full``
is the 100k-VM, 4-region version.  The traces are synthetic
(vectorized sinusoid + seeded noise — the cluster-trace generator's
per-VM loop is too slow at this scale) and the predictor is the oracle
:class:`~repro.forecast.predictor.PerfectPredictor`, so the experiment
measures the *scale* machinery, not forecast quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.epact import EpactPolicy
from ..core.types import FleetSpec, PoolSpec
from ..errors import ConfigurationError
from ..forecast.predictor import PerfectPredictor
from ..perf.workload import ALL_MEMORY_CLASSES
from ..power.server_power import ntc_server_power_model
from ..shard import GeoFleetSpec, GeoRunResult, RegionSpec, run_geo_policies
from ..traces.dataset import TraceDataset
from ..traces.vm import VmSpec
from ..units import SAMPLES_PER_DAY
from ..dcsim.reporting import format_table

#: Default routing seed (the repo-wide experiment seed).
SEED = 2018


@dataclass(frozen=True)
class HyperscaleProfile:
    """One rung of the hyperscale profile ladder."""

    name: str
    n_regions: int
    vms_per_region: int
    servers_per_region: int
    shards: int
    n_slots: int


PROFILES: Dict[str, HyperscaleProfile] = {
    profile.name: profile
    for profile in (
        HyperscaleProfile("tiny", 2, 300, 120, 4, 2),
        HyperscaleProfile("quick", 2, 25_000, 5_000, 16, 2),
        HyperscaleProfile("full", 4, 25_000, 5_000, 32, 4),
    )
}


def synthetic_dataset(
    n_vms: int, n_days: int = 1, seed: int = SEED
) -> TraceDataset:
    """A fully vectorized synthetic fleet trace.

    Diurnal sinusoids with per-VM base load, amplitude and phase plus
    seeded Gaussian noise; memory follows its own base with a mild CPU
    coupling.  All array math — no per-VM Python loop — so 100k VMs
    build in well under a second.
    """
    if n_vms < 1 or n_days < 1:
        raise ConfigurationError("n_vms and n_days must be >= 1")
    gen = np.random.default_rng(seed)
    n_samples = n_days * SAMPLES_PER_DAY
    t = np.arange(n_samples) * (2.0 * np.pi / SAMPLES_PER_DAY)
    cpu_base = gen.uniform(3.0, 12.0, n_vms)
    amplitude = gen.uniform(0.2, 0.5, n_vms)
    phase = gen.uniform(0.0, 2.0 * np.pi, n_vms)
    cpu = cpu_base[:, None] * (
        1.0 + amplitude[:, None] * np.sin(t[None, :] + phase[:, None])
    )
    cpu += gen.normal(0.0, 0.3, (n_vms, n_samples))
    np.clip(cpu, 0.05, 100.0, out=cpu)
    mem_base = gen.uniform(5.0, 20.0, n_vms)
    mem = mem_base[:, None] + 0.3 * (cpu - cpu_base[:, None])
    np.clip(mem, 0.1, 100.0, out=mem)
    classes = ALL_MEMORY_CLASSES
    specs = tuple(
        VmSpec(
            vm_id=i,
            mem_class=classes[i % len(classes)],
            cpu_base_pct=float(cpu_base[i]),
            mem_base_pct=float(mem_base[i]),
            group=i % 32,
        )
        for i in range(n_vms)
    )
    return TraceDataset(specs=specs, cpu_pct=cpu, mem_pct=mem)


def build_geo(profile: HyperscaleProfile) -> GeoFleetSpec:
    """The profile's regional fleets: one NTC pool per region."""
    return GeoFleetSpec(
        regions=tuple(
            RegionSpec(
                name=f"region-{i}",
                fleet=FleetSpec(
                    pools=(
                        PoolSpec(
                            name="ntc",
                            power_model=ntc_server_power_model(),
                            n_servers=profile.servers_per_region,
                        ),
                    )
                ),
            )
            for i in range(profile.n_regions)
        )
    )


def run_hyperscale(
    profile: str = "quick",
    jobs: int = 1,
    seed: int = SEED,
    tracer=None,
    metrics=None,
) -> Tuple[HyperscaleProfile, GeoRunResult]:
    """Run the sharded multi-region EPACT comparison for one profile.

    Raises:
        ConfigurationError: for an unknown profile name.
    """
    spec = PROFILES.get(profile)
    if spec is None:
        raise ConfigurationError(
            f"unknown hyperscale profile {profile!r}; "
            f"choose from {sorted(PROFILES)}"
        )
    dataset = synthetic_dataset(
        spec.n_regions * spec.vms_per_region, n_days=1, seed=seed
    )
    result = run_geo_policies(
        dataset,
        PerfectPredictor,
        [EpactPolicy()],
        build_geo(spec),
        seed=seed,
        shards=spec.shards,
        jobs=jobs,
        tracer=tracer,
        metrics=metrics,
        n_slots=spec.n_slots,
    )
    return spec, result


def render(run: Tuple[HyperscaleProfile, GeoRunResult]) -> str:
    """Per-region energy/server/migration table plus fleet totals."""
    spec, result = run
    lines: List[str] = [
        f"Hyperscale profile {spec.name!r}: "
        f"{spec.n_regions} regions x {spec.vms_per_region} VMs, "
        f"{spec.servers_per_region} servers/region, "
        f"shards={spec.shards}, n_slots={spec.n_slots}",
        "",
    ]
    rows = []
    for policy_name, regions in result.results.items():
        for region_name, sim in regions.items():
            energy = sum(r.energy_j for r in sim.records)
            servers = max(r.n_active_servers for r in sim.records)
            migrations = sum(r.migrations for r in sim.records)
            rows.append(
                (
                    policy_name,
                    region_name,
                    result.routes[region_name],
                    servers,
                    f"{energy / 1e6:.2f}",
                    migrations,
                )
            )
        rows.append(
            (
                policy_name,
                "TOTAL",
                sum(result.routes.values()),
                "",
                f"{result.total_energy_j(policy_name) / 1e6:.2f}",
                "",
            )
        )
    lines.append(
        format_table(
            (
                "policy",
                "region",
                "vms",
                "peak active servers",
                "energy [MJ]",
                "migrations",
            ),
            rows,
        )
    )
    return "\n".join(lines)
