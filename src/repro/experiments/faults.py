"""Experiment: degraded operation — outages and power caps.

Sweeps the registered fault scenarios (:mod:`repro.cloud.faults`) —
no faults, rare/frequent server outages, a rack-level outage regime,
mild/severe fleet power caps, and the combined regime — over the
zero-churn cloud workload, comparing the paper's day-ahead EPACT
against the reactive online policies head-to-head *under failures*:

* EPACT re-solves each window on the surviving capacity (its emergency
  response is the engine's forced re-placement);
* the reactive policy force-migrates VMs off failed servers within
  their home pool first, consolidates onto a reduced server budget
  under a power cap, and sheds lowest-priority VMs into SLA debt when
  the surviving capacity physically cannot host the population.

The report shows, per fault scenario, the SLA table plus the
degraded-operation table (shed VM-minutes, server downtime, fault
migrations, cap throttling).

With ``jobs > 1`` every (scenario, policy) pair fans out over the
hardened pool runner (:mod:`repro.experiments.pool`); failures are
reported per pair instead of aborting the sweep, and results equal the
serial run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import OnlineReactivePolicy
from ..cloud import fault_table, get_fault_scenario, get_scenario, sla_table
from ..cloud.faults import FaultSchedule
from ..core import EpactPolicy
from ..core.types import AllocationPolicy
from ..dcsim import SimulationResult
from ..dcsim.cloud import CloudSimulation, _run_one_cloud_policy
from ..dcsim.engine import shared_predictions
from ..forecast import DayAheadPredictor
from .pool import FailedRun, failed_line, run_tasks

DEFAULT_FAULT_SCENARIOS = (
    "none",
    "rare-outages",
    "frequent-outages",
    "rack-outage",
    "power-cap-mild",
    "power-cap-severe",
    "cap-and-outages",
)


def default_fault_policies() -> List[AllocationPolicy]:
    """Day-ahead EPACT vs the reactive online policies, under faults."""
    return [
        EpactPolicy(),
        OnlineReactivePolicy(),
        OnlineReactivePolicy(signal="forecast", name="ONLINE-REACTIVE-F"),
    ]


@dataclass(frozen=True)
class FaultsResult:
    """Per-fault-scenario, per-policy runs plus the schedules used."""

    results: Dict[str, Dict[str, SimulationResult]]
    schedules: Dict[str, FaultSchedule]


def run_faults(
    quick: bool = False,
    jobs: int = 1,
    fault_names: Optional[Sequence[str]] = None,
    workload: str = "zero-churn",
    n_vms: int = 600,
    n_days: int = 14,
    n_slots: Optional[int] = None,
    seed: int = 2018,
    max_servers: int = 120,
    policies: Optional[Sequence[AllocationPolicy]] = None,
    tracer=None,
    metrics=None,
) -> FaultsResult:
    """Run the fault-scenario sweep (see module docstring).

    Args:
        quick: shrink to 120 VMs / 9 days / 2 evaluated days.
        jobs: worker processes; every (fault scenario, policy) pair is
            one task in the hardened pool runner.
        fault_names: subset of the fault registry (default: all).
        workload: the cloud workload scenario the faults hit
            (zero-churn by default so fault effects are isolated from
            churn effects).
        n_vms / n_days / seed: workload build configuration.
        n_slots: evaluated slots (default: everything after training).
        max_servers: fleet bound (= the fault schedule's server count).
        policies: policies to compare (fresh instances are required for
            stateful online policies; the defaults are fresh).
        tracer / metrics: optional observability hooks
            (:mod:`repro.obs`).  Serial runs trace at engine level
            (fault preambles, transitions, windows); parallel sweeps
            emit pool task events only (tracers do not cross the
            pickle boundary).  Results are identical.
    """
    if quick:
        # A deliberately tight fleet (vs the 120-server cloud quick
        # scale): nominal (provisioned full-load) power then sits close
        # enough to the consolidated operating point that the registry's
        # cap windows actually throttle, and outages actually squeeze
        # capacity.
        n_vms, n_days, max_servers = 120, 9, 24
        n_slots = 48 if n_slots is None else n_slots
    names = list(fault_names or DEFAULT_FAULT_SCENARIOS)
    policy_list = (
        list(policies) if policies is not None else default_fault_policies()
    )

    dataset, schedule = get_scenario(workload).build(
        n_vms=n_vms, n_days=n_days, seed=seed, n_slots=n_slots
    )
    predictor = DayAheadPredictor(dataset)
    # One schedule per fault scenario, covering the whole dataset
    # horizon (the engine checks coverage of the evaluated window).
    schedules = {
        name: get_fault_scenario(name).build(
            n_servers=max_servers,
            horizon_start=0,
            horizon_end=dataset.n_slots,
            seed=seed,
        )
        for name in names
    }

    results: Dict[str, Dict[str, SimulationResult]] = {}
    if jobs is None or jobs <= 1:
        for name in names:
            kwargs = dict(
                n_slots=n_slots,
                max_servers=max_servers,
                faults=schedules[name],
                tracer=tracer,
                metrics=metrics,
            )
            results[name] = {
                policy.name: CloudSimulation(
                    dataset, predictor, policy, schedule, **kwargs
                ).run()
                for policy in policy_list
            }
        return FaultsResult(results=results, schedules=schedules)

    shared = shared_predictions(dataset, predictor, n_slots=n_slots)
    tasks = []
    for name in names:
        kwargs = dict(
            n_slots=n_slots,
            max_servers=max_servers,
            faults=schedules[name],
        )
        tasks.extend(
            (
                (name, policy.name),
                (dataset, shared, policy, schedule, kwargs),
            )
            for policy in policy_list
        )
    runs = run_tasks(
        _run_one_cloud_policy, tasks, jobs, tracer=tracer, metrics=metrics
    )
    for name in names:
        results[name] = {
            policy.name: runs[(name, policy.name)]
            for policy in policy_list
        }
    return FaultsResult(results=results, schedules=schedules)


def render(result: FaultsResult) -> str:
    """Per-fault-scenario SLA + degraded-operation tables."""
    lines = ["Degraded operation — outages and power caps"]
    for name, all_runs in result.results.items():
        runs = {
            k: v
            for k, v in all_runs.items()
            if not isinstance(v, FailedRun)
        }
        scenario = get_fault_scenario(name)
        fs = result.schedules[name]
        lines.append("")
        lines.append(
            f"faults {name}: {scenario.description} "
            f"({len(fs.server_outages)} outage(s), "
            f"{len(fs.cap_windows)} cap window(s))"
        )
        lines.append(sla_table(runs))
        if fs.has_events:
            lines.append(fault_table(runs))
        for k, v in all_runs.items():
            if isinstance(v, FailedRun):
                lines.append(failed_line(k, v))
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_faults(quick=True)))


if __name__ == "__main__":
    main()
