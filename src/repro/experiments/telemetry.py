"""Experiment: degraded telemetry — streaming decisions from a lossy feed.

Sweeps the registered telemetry scenarios
(:mod:`repro.cloud.telemetry`) — clean, 1%/10% sample loss, recurring
collector outages, late/out-of-order delivery bursts, and spike/NaN
corruption — over the zero-churn cloud workload, comparing the paper's
day-ahead EPACT against the reactive online policies when every policy
must decide from the *delivered* stream instead of the true traces:

* EPACT's day-ahead fits ride the forecast-staleness fallback ladder
  (fresh fit on imputed history → aged last-good forecast →
  persistence → frozen placement when the stream goes dark);
* the reactive policies read the imputed last-slot signal, so sample
  loss directly blunts their consolidation triggers.

Accounting always runs on the true traces, so the report prices what
each degradation regime *costs* (energy, violations, blind windows)
rather than what the degraded stream claims.  The clean scenario is
the control: it reproduces the batch engine bit-exactly.

With ``jobs > 1`` every (scenario, policy) pair fans out over the
hardened pool runner (:mod:`repro.experiments.pool`).  Workers ship
the configured predictor and re-fit deterministically on their own
observed stream, so results equal the serial run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import OnlineReactivePolicy
from ..cloud import (
    get_scenario,
    get_telemetry_scenario,
    sla_table,
    telemetry_table,
)
from ..cloud.streaming import _run_one_streaming_policy
from ..cloud.telemetry import TELEMETRY_SCENARIOS, TelemetryFaultSchedule
from ..core import EpactPolicy
from ..core.types import AllocationPolicy
from ..dcsim import SimulationResult
from ..forecast import DayAheadPredictor
from .pool import FailedRun, failed_line, run_tasks

DEFAULT_TELEMETRY_SCENARIOS = tuple(TELEMETRY_SCENARIOS)


def default_telemetry_policies() -> List[AllocationPolicy]:
    """Day-ahead EPACT vs the reactive online policies, on lossy feeds."""
    return [
        EpactPolicy(),
        OnlineReactivePolicy(),
        OnlineReactivePolicy(signal="forecast", name="ONLINE-REACTIVE-F"),
    ]


@dataclass(frozen=True)
class TelemetryResult:
    """Per-telemetry-scenario, per-policy runs plus the schedules used."""

    results: Dict[str, Dict[str, SimulationResult]]
    schedules: Dict[str, TelemetryFaultSchedule]


def run_telemetry(
    quick: bool = False,
    jobs: int = 1,
    scenario_names: Optional[Sequence[str]] = None,
    workload: str = "zero-churn",
    n_vms: int = 600,
    n_days: int = 14,
    n_slots: Optional[int] = None,
    seed: int = 2018,
    max_servers: int = 120,
    policies: Optional[Sequence[AllocationPolicy]] = None,
    tracer=None,
    metrics=None,
) -> TelemetryResult:
    """Run the telemetry-scenario sweep (see module docstring).

    Args:
        quick: shrink to 120 VMs / 9 days / 2 evaluated days.
        jobs: worker processes; every (telemetry scenario, policy) pair
            is one task in the hardened pool runner.
        scenario_names: subset of the telemetry registry (default: all).
        workload: the cloud workload the degraded stream reports on
            (zero-churn by default so telemetry effects are isolated
            from churn effects).
        n_vms / n_days / seed: workload build configuration.
        n_slots: evaluated slots (default: everything after training).
        max_servers: fleet bound.
        policies: policies to compare (fresh instances are required for
            stateful online policies; the defaults are fresh).
        tracer / metrics: optional observability hooks
            (:mod:`repro.obs`).  Serial runs trace at engine level
            (windows, ladder rungs, degradations); parallel sweeps
            emit pool task events only, because tracers do not cross
            the pickle boundary.  Results are identical either way.
    """
    if quick:
        n_vms, n_days, max_servers = 120, 9, 24
        n_slots = 48 if n_slots is None else n_slots
    names = list(scenario_names or DEFAULT_TELEMETRY_SCENARIOS)
    policy_list = (
        list(policies)
        if policies is not None
        else default_telemetry_policies()
    )

    dataset, schedule = get_scenario(workload).build(
        n_vms=n_vms, n_days=n_days, seed=seed, n_slots=n_slots
    )
    predictor = DayAheadPredictor(dataset)
    # One degradation timeline per scenario, covering the whole trace
    # horizon (the streaming engine checks the forecaster's history
    # streams in from slot 0).
    schedules = {
        name: get_telemetry_scenario(name).build(
            n_vms=dataset.n_vms,
            horizon_start=0,
            horizon_end=dataset.n_slots,
            seed=seed,
        )
        for name in names
    }
    kwargs = dict(n_slots=n_slots, max_servers=max_servers)

    results: Dict[str, Dict[str, SimulationResult]] = {}
    if jobs is None or jobs <= 1:
        serial_kwargs = dict(kwargs, tracer=tracer, metrics=metrics)
        for name in names:
            results[name] = {
                policy.name: _run_one_streaming_policy(
                    dataset,
                    predictor,
                    policy,
                    schedule,
                    schedules[name],
                    serial_kwargs,
                )
                for policy in policy_list
            }
        return TelemetryResult(results=results, schedules=schedules)

    tasks = []
    for name in names:
        tasks.extend(
            (
                (name, policy.name),
                (
                    dataset,
                    predictor,
                    policy,
                    schedule,
                    schedules[name],
                    kwargs,
                ),
            )
            for policy in policy_list
        )
    runs = run_tasks(
        _run_one_streaming_policy,
        tasks,
        jobs,
        tracer=tracer,
        metrics=metrics,
    )
    for name in names:
        results[name] = {
            policy.name: runs[(name, policy.name)]
            for policy in policy_list
        }
    return TelemetryResult(results=results, schedules=schedules)


def render(result: TelemetryResult) -> str:
    """Per-telemetry-scenario SLA + degradation tables."""
    lines = ["Degraded telemetry — streaming decisions from a lossy feed"]
    for name, all_runs in result.results.items():
        runs = {
            k: v
            for k, v in all_runs.items()
            if not isinstance(v, FailedRun)
        }
        scenario = get_telemetry_scenario(name)
        ts = result.schedules[name]
        lines.append("")
        lines.append(
            f"telemetry {name}: {scenario.description} "
            f"({ts.n_collectors} collector(s), "
            f"{len(ts.collector_outages)} outage window(s))"
        )
        lines.append(sla_table(runs))
        if ts.has_degradation:
            lines.append(telemetry_table(runs))
        for k, v in all_runs.items():
            if isinstance(v, FailedRun):
                lines.append(failed_line(k, v))
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_telemetry(quick=True)))


if __name__ == "__main__":
    main()
