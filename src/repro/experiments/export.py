"""CSV export of every experiment's rows/series.

The benchmark harness prints human-readable tables; downstream users
(plotting scripts, regression dashboards) want machine-readable output.
Each ``export_*`` function writes one or more CSV files and returns the
paths written.  ``export_all`` regenerates everything into a directory —
wired to ``repro-experiments --csv DIR``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List

from .fig1 import Fig1Result
from .fig2 import Fig2Result
from .fig3 import Fig3Result
from .fig456 import Fig456Result
from .fig7 import Fig7Result
from .table1 import Table1Result


def _write_rows(path: Path, header: List[str], rows) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_table1(result: Table1Result, directory: Path) -> List[Path]:
    """Table I: model and paper values side by side."""
    rows = []
    for label, row in result.rows.items():
        paper = result.published[label]
        for key in row:
            rows.append([label, key, row[key], paper[key]])
    return [
        _write_rows(
            directory / "table1.csv",
            ["class", "cell", "model_s", "paper_s"],
            rows,
        )
    ]


def export_fig1(result: Fig1Result, directory: Path) -> List[Path]:
    """Fig. 1: both panels' power curves, long format."""
    rows = []
    for panel, curves in (
        ("ntc", result.ntc_curves),
        ("conventional", result.conventional_curves),
    ):
        for util, curve in curves.items():
            for point in curve:
                rows.append(
                    [
                        panel,
                        util,
                        point.freq_ghz,
                        point.power_kw,
                        point.n_active_servers,
                    ]
                )
    return [
        _write_rows(
            directory / "fig1.csv",
            ["panel", "utilization_pct", "freq_ghz", "power_kw", "servers"],
            rows,
        )
    ]


def export_fig2(result: Fig2Result, directory: Path) -> List[Path]:
    """Fig. 2: normalized execution time per class and frequency."""
    rows = []
    for label, points in result.sweeps.items():
        for point in points:
            rows.append(
                [
                    label,
                    point.freq_ghz,
                    point.execution_time_s,
                    point.normalized_to_qos_limit,
                    int(point.meets_qos),
                ]
            )
    return [
        _write_rows(
            directory / "fig2.csv",
            ["class", "freq_ghz", "exec_time_s", "normalized", "meets_qos"],
            rows,
        )
    ]


def export_fig3(result: Fig3Result, directory: Path) -> List[Path]:
    """Fig. 3: efficiency curves per class."""
    rows = []
    for label, points in result.curves.items():
        for point in points:
            rows.append(
                [label, point.freq_ghz, point.buips_per_watt, point.power_w]
            )
    return [
        _write_rows(
            directory / "fig3.csv",
            ["class", "freq_ghz", "buips_per_watt", "power_w"],
            rows,
        )
    ]


def export_fig456(result: Fig456Result, directory: Path) -> List[Path]:
    """Figs. 4-6: the three weekly series for every policy."""
    rows = []
    for name, run in result.results.items():
        for record in run.records:
            rows.append(
                [
                    name,
                    record.slot_index,
                    record.violations,
                    record.n_active_servers,
                    record.energy_mj,
                    record.mean_freq_ghz,
                    record.migrations,
                    record.case,
                ]
            )
    return [
        _write_rows(
            directory / "fig456.csv",
            [
                "policy",
                "slot",
                "violations",
                "active_servers",
                "energy_mj",
                "mean_freq_ghz",
                "migrations",
                "case",
            ],
            rows,
        )
    ]


def export_fig7(result: Fig7Result, directory: Path) -> List[Path]:
    """Fig. 7: the static-power sweep."""
    rows = [
        [
            p.static_w,
            p.epact_energy_mj,
            p.coat_energy_mj,
            p.saving_pct,
            p.epact_optimal_freq_ghz,
        ]
        for p in result.points
    ]
    return [
        _write_rows(
            directory / "fig7.csv",
            [
                "static_w",
                "epact_mj",
                "coat_mj",
                "saving_pct",
                "opt_freq_ghz",
            ],
            rows,
        )
    ]


def export_all(directory: str | Path, quick: bool = True) -> List[Path]:
    """Run every experiment and export all CSVs into ``directory``."""
    from .fig1 import run_fig1
    from .fig2 import run_fig2
    from .fig3 import run_fig3
    from .fig456 import run_fig456
    from .fig7 import run_fig7
    from .table1 import run_table1

    out = Path(directory)
    paths: List[Path] = []
    paths += export_table1(run_table1(), out)
    paths += export_fig1(run_fig1(), out)
    paths += export_fig2(run_fig2(), out)
    paths += export_fig3(run_fig3(), out)
    paths += export_fig456(run_fig456(quick=quick), out)
    paths += export_fig7(run_fig7(quick=quick), out)
    return paths
