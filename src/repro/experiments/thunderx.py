"""Experiment: why the paper rejected the stock Cavium ThunderX.

Section III-A: "for our target applications, the Cavium performance was
slower (from 1.5x to 1.35x) than the x86 platform with similar
characteristics, and unable to meet QoS constraints".  This experiment
quantifies that motivation from the calibrated models:

* per-class QoS degradation of the stock ThunderX across its DVFS range —
  mid-mem and high-mem violate the 2x limit even flat out at 2 GHz;
* the same analysis for the proposed NTC server, which meets QoS with
  frequency to spare;
* the contribution breakdown: how much of the fix came from the
  out-of-order core (compute component) vs. the memory subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..dcsim.reporting import format_table
from ..perf.simulator import PerformanceSimulator
from ..perf.workload import ALL_MEMORY_CLASSES


@dataclass(frozen=True)
class PlatformQosRow:
    """QoS verdict of one class on one platform at its top frequency."""

    platform: str
    mem_class: str
    top_freq_ghz: float
    degradation_at_top: float
    meets_qos: bool
    min_qos_freq_ghz: float | None


@dataclass(frozen=True)
class ThunderxResult:
    """The motivation analysis: stock ThunderX vs proposed NTC server."""

    rows: List[PlatformQosRow]
    compute_speedup: Dict[str, float]
    memory_speedup: Dict[str, float]

    def thunderx_infeasible_classes(self) -> List[str]:
        """Classes the stock ThunderX cannot serve within QoS at all."""
        return [
            row.mem_class
            for row in self.rows
            if row.platform == "thunderx" and row.min_qos_freq_ghz is None
        ]


def run_thunderx(sim: PerformanceSimulator | None = None) -> ThunderxResult:
    """Evaluate QoS feasibility on ThunderX and the NTC server."""
    simulator = sim if sim is not None else PerformanceSimulator()
    rows: List[PlatformQosRow] = []
    for platform in ("thunderx", "ntc"):
        spec = simulator.platform(platform)
        for mem_class in ALL_MEMORY_CLASSES:
            timing = simulator.timing(mem_class, platform)
            top = spec.f_max_ghz
            degradation = simulator.qos.degradation(
                mem_class, top, timing
            )
            min_freq: float | None = None
            for freq in spec.opps.frequencies_ghz:
                if simulator.qos.meets_qos(mem_class, freq, timing):
                    min_freq = freq
                    break
            rows.append(
                PlatformQosRow(
                    platform=platform,
                    mem_class=mem_class.label,
                    top_freq_ghz=top,
                    degradation_at_top=degradation,
                    meets_qos=min_freq is not None,
                    min_qos_freq_ghz=min_freq,
                )
            )

    compute_speedup: Dict[str, float] = {}
    memory_speedup: Dict[str, float] = {}
    for mem_class in ALL_MEMORY_CLASSES:
        cal = simulator.calibrations[mem_class]
        compute_speedup[mem_class.label] = (
            cal.thunderx.compute_seconds_ghz / cal.ntc.compute_seconds_ghz
        )
        thunderx_mem = cal.thunderx.memory_seconds
        ntc_mem = max(cal.ntc.memory_seconds, 1e-12)
        memory_speedup[mem_class.label] = thunderx_mem / ntc_mem
    return ThunderxResult(
        rows=rows,
        compute_speedup=compute_speedup,
        memory_speedup=memory_speedup,
    )


def render(result: ThunderxResult) -> str:
    """QoS feasibility table plus the redesign contribution breakdown."""
    headers = [
        "platform",
        "class",
        "top f (GHz)",
        "degradation @ top",
        "min QoS f (GHz)",
    ]
    body = []
    for row in result.rows:
        body.append(
            [
                row.platform,
                row.mem_class,
                f"{row.top_freq_ghz:.1f}",
                f"{row.degradation_at_top:.2f}x",
                "NONE" if row.min_qos_freq_ghz is None
                else f"{row.min_qos_freq_ghz:.1f}",
            ]
        )
    infeasible = result.thunderx_infeasible_classes()
    lines = [
        "ThunderX motivation analysis (why the paper redesigned the server)",
        format_table(headers, body),
        f"classes stock ThunderX cannot serve within 2x QoS: "
        f"{infeasible or 'none'}",
        "redesign contribution (ThunderX/NTC time-component ratios):",
    ]
    for label in result.compute_speedup:
        lines.append(
            f"  {label:9s}: compute x{result.compute_speedup[label]:.2f} "
            f"(OoO core), memory x{result.memory_speedup[label]:.2f} "
            f"(subsystem redesign)"
        )
    return "\n".join(lines)


def main() -> None:
    """Run and print the experiment."""
    print(render(run_thunderx()))


if __name__ == "__main__":
    main()
