"""Experiment: Fig. 7 — EPACT vs. COAT under different static power.

Sweeps the per-server static (motherboard/fan/disk) power from an
efficient 5 W to a traditional 45 W and compares EPACT against COAT at
each point.  The paper's finding: EPACT's saving *shrinks* as static power
grows (high static power favors consolidation), so EPACT becomes even more
effective as future technologies cut static power further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..anchors import FIG7_STATIC_POWER_SWEEP_W
from ..baselines import CoatPolicy
from ..core import EpactPolicy
from ..dcsim import run_policies, shared_predictions
from ..dcsim.reporting import format_table
from ..forecast import DayAheadPredictor
from ..power.server_power import ntc_server_power_model
from ..traces import TraceDataset, default_dataset


@dataclass(frozen=True)
class Fig7Point:
    """Result at one static-power setting."""

    static_w: float
    epact_energy_mj: float
    coat_energy_mj: float
    epact_optimal_freq_ghz: float

    @property
    def saving_pct(self) -> float:
        """EPACT's energy saving over COAT at this static power."""
        return (
            (self.coat_energy_mj - self.epact_energy_mj)
            / self.coat_energy_mj
            * 100.0
        )


@dataclass(frozen=True)
class Fig7Result:
    """The full static-power sweep."""

    points: List[Fig7Point]

    def savings(self) -> List[Tuple[float, float]]:
        """(static W, saving %) pairs in sweep order."""
        return [(p.static_w, p.saving_pct) for p in self.points]

    def is_monotonically_decreasing(self, tolerance_pct: float = 2.0) -> bool:
        """Whether savings decrease with static power (within tolerance)."""
        s = [p.saving_pct for p in self.points]
        return all(b <= a + tolerance_pct for a, b in zip(s, s[1:]))


def _run_fig7_point(
    data: TraceDataset,
    predictor,
    static_w: float,
    max_servers: int,
    n_slots: Optional[int],
) -> Fig7Point:
    """One static-power point of the sweep (picklable worker body)."""
    power = ntc_server_power_model().with_motherboard(float(static_w))
    results = run_policies(
        data,
        predictor,
        [EpactPolicy(), CoatPolicy()],
        power_model=power,
        max_servers=max_servers,
        n_slots=n_slots,
    )
    return Fig7Point(
        static_w=float(static_w),
        epact_energy_mj=results["EPACT"].total_energy_mj,
        coat_energy_mj=results["COAT"].total_energy_mj,
        epact_optimal_freq_ghz=power.optimal_frequency_ghz(),
    )


def run_fig7(
    dataset: Optional[TraceDataset] = None,
    static_sweep_w: Tuple[float, ...] = FIG7_STATIC_POWER_SWEEP_W,
    n_vms: int = 300,
    n_days: int = 9,
    seed: int = 2018,
    max_servers: int = 600,
    n_slots: Optional[int] = 48,
    quick: bool = False,
    jobs: int = 1,
) -> Fig7Result:
    """Run EPACT and COAT at each static-power point.

    The sweep replaces the motherboard/fan/disk component of the server
    power model (default 15 W) with each sweep value; everything else —
    traces, forecasts, policies — is held fixed.  With ``jobs > 1`` the
    sweep points fan out over a ``ProcessPoolExecutor``, sharing the
    day-ahead predictions (computed once) as plain arrays.
    """
    if quick:
        n_vms, n_days, n_slots = 100, 9, 24
    data = (
        dataset
        if dataset is not None
        else default_dataset(n_vms=n_vms, n_days=n_days, seed=seed)
    )
    predictor = DayAheadPredictor(data)
    if jobs is None or jobs <= 1 or len(static_sweep_w) <= 1:
        points = [
            _run_fig7_point(data, predictor, w, max_servers, n_slots)
            for w in static_sweep_w
        ]
        return Fig7Result(points=points)

    from concurrent.futures import ProcessPoolExecutor

    shared = shared_predictions(data, predictor, n_slots=n_slots)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(static_sweep_w))
    ) as pool:
        futures = [
            pool.submit(
                _run_fig7_point, data, shared, w, max_servers, n_slots
            )
            for w in static_sweep_w
        ]
        return Fig7Result(points=[f.result() for f in futures])


def render(result: Fig7Result) -> str:
    """Savings-vs-static-power table."""
    headers = [
        "static (W)",
        "EPACT (MJ)",
        "COAT (MJ)",
        "saving (%)",
        "opt f (GHz)",
    ]
    body = [
        [
            f"{p.static_w:.0f}",
            f"{p.epact_energy_mj:.1f}",
            f"{p.coat_energy_mj:.1f}",
            f"{p.saving_pct:.1f}",
            f"{p.epact_optimal_freq_ghz:.1f}",
        ]
        for p in result.points
    ]
    return (
        "Fig. 7 — EPACT vs COAT under different static power\n"
        f"{format_table(headers, body)}\n"
        f"savings decrease with static power: "
        f"{result.is_monotonically_decreasing()} "
        "(paper: yes — EPACT gains from low-static-power technology)"
    )


def main() -> None:
    """Run and print the experiment (reduced scale for the CLI)."""
    print(render(run_fig7(quick=True)))


if __name__ == "__main__":
    main()
