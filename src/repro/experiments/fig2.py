"""Experiment: Fig. 2 — normalized execution time vs. core frequency.

Regenerates the paper's Fig. 2: per-class execution time on the NTC
server, normalized to the 2x QoS limit, over the 0.1-2.5 GHz sweep, plus
the QoS crossover frequencies (1.2 GHz for low-mem, 1.8 GHz for mid/high).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..anchors import FIG2_FREQ_SWEEP_GHZ, QOS_MIN_FREQ_GHZ
from ..dcsim.reporting import format_table
from ..perf.simulator import PerformanceSimulator, SweepPoint
from ..perf.workload import ALL_MEMORY_CLASSES


@dataclass(frozen=True)
class Fig2Result:
    """Per-class sweeps and QoS floors."""

    sweeps: Dict[str, List[SweepPoint]]
    qos_floors_ghz: Dict[str, float]

    def normalized_at(self, label: str, freq_ghz: float) -> float:
        """Normalized execution time of a class at a grid frequency."""
        for point in self.sweeps[label]:
            if abs(point.freq_ghz - freq_ghz) < 1.0e-9:
                return point.normalized_to_qos_limit
        raise KeyError(f"{freq_ghz} GHz not on the sweep grid")


def run_fig2(
    sim: PerformanceSimulator | None = None,
    freqs_ghz: Tuple[float, ...] = FIG2_FREQ_SWEEP_GHZ,
) -> Fig2Result:
    """Sweep all classes over the paper's frequency grid."""
    simulator = sim if sim is not None else PerformanceSimulator()
    sweeps = {
        mc.label: simulator.qos_sweep(mc, freqs_ghz)
        for mc in ALL_MEMORY_CLASSES
    }
    opps = simulator.platform("ntc").opps
    floors = {
        mc.label: simulator.qos.min_qos_frequency(mc, opps)
        for mc in ALL_MEMORY_CLASSES
    }
    return Fig2Result(sweeps=sweeps, qos_floors_ghz=floors)


def render(result: Fig2Result) -> str:
    """Normalized-execution-time table (values <= 1.0 meet QoS)."""
    freqs = [p.freq_ghz for p in next(iter(result.sweeps.values()))]
    headers = ["f (GHz)"] + [label for label in result.sweeps]
    body = []
    for i, freq in enumerate(freqs):
        row: List[object] = [f"{freq:.1f}"]
        for label in result.sweeps:
            point = result.sweeps[label][i]
            marker = "" if point.meets_qos else " *"
            row.append(f"{point.normalized_to_qos_limit:.3f}{marker}")
        body.append(row)
    floors = ", ".join(
        f"{label}: {f:.1f} GHz (paper {QOS_MIN_FREQ_GHZ[label]:.1f})"
        for label, f in result.qos_floors_ghz.items()
    )
    return (
        "Fig. 2 — execution time normalized to the QoS limit "
        "(* = violates QoS)\n"
        f"{format_table(headers, body)}\n"
        f"QoS frequency floors: {floors}"
    )


def main() -> None:
    """Run and print the experiment."""
    print(render(run_fig2()))


if __name__ == "__main__":
    main()
