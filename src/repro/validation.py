"""Built-in reproduction self-check.

Runs the fast anchored validations (everything except the data-center
week) and returns a structured report — a one-call answer to "is this
install still reproducing the paper?".  Wired to
``repro-experiments validate`` and usable programmatically::

    from repro.validation import validate_reproduction
    report = validate_reproduction()
    assert report.all_passed, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from .anchors import (
    NTC_OPTIMAL_FREQ_GHZ,
    NTC_SPEEDUP_OVER_THUNDERX_RANGE,
    QOS_MIN_FREQ_GHZ,
)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    name: str
    passed: bool
    detail: str


@dataclass
class ValidationReport:
    """All check outcomes plus aggregates."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    @property
    def n_failed(self) -> int:
        """Number of failed checks."""
        return sum(1 for check in self.checks if not check.passed)

    def summary(self) -> str:
        """Human-readable PASS/FAIL listing."""
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        verdict = (
            "all checks passed"
            if self.all_passed
            else f"{self.n_failed} check(s) FAILED"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _check(
    report: ValidationReport, name: str, fn: Callable[[], tuple]
) -> None:
    try:
        passed, detail = fn()
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        passed, detail = False, f"raised {type(exc).__name__}: {exc}"
    report.checks.append(
        CheckResult(name=name, passed=bool(passed), detail=detail)
    )


def validate_reproduction() -> ValidationReport:
    """Run the fast anchored checks and return the report."""
    from .experiments.fig3 import run_fig3
    from .experiments.table1 import run_table1
    from .perf import ALL_MEMORY_CLASSES, PerformanceSimulator
    from .power import (
        conventional_server_power_model,
        ntc_server_power_model,
    )
    from .power.datacenter import DataCenterPowerAnalysis

    report = ValidationReport()
    sim = PerformanceSimulator()
    ntc_power = ntc_server_power_model()

    def table1_check():
        err = run_table1(sim).max_relative_error()
        return err < 0.005, f"max relative error {err * 100:.2f}% (< 0.5%)"

    _check(report, "Table I reproduction", table1_check)

    def speedup_check():
        lo, hi = NTC_SPEEDUP_OVER_THUNDERX_RANGE
        speedups = [
            sim.speedup_ntc_over_thunderx(mc) for mc in ALL_MEMORY_CLASSES
        ]
        ok = all(lo - 0.05 <= s <= hi + 0.05 for s in speedups)
        pretty = ", ".join(f"{s:.2f}x" for s in speedups)
        return ok, f"{pretty} (paper {lo}-{hi}x)"

    _check(report, "NTC-over-ThunderX speedups", speedup_check)

    def floors_check():
        opps = sim.platform("ntc").opps
        floors = {
            mc.label: sim.qos.min_qos_frequency(mc, opps)
            for mc in ALL_MEMORY_CLASSES
        }
        ok = all(
            abs(floors[label] - QOS_MIN_FREQ_GHZ[label]) < 1e-9
            for label in floors
        )
        return ok, f"{floors} (paper {dict(QOS_MIN_FREQ_GHZ)})"

    _check(report, "Fig. 2 QoS frequency floors", floors_check)

    def ntc_optimum_check():
        f_opt = ntc_power.optimal_frequency_ghz()
        return (
            abs(f_opt - NTC_OPTIMAL_FREQ_GHZ) < 0.11,
            f"{f_opt:.1f} GHz (paper ~{NTC_OPTIMAL_FREQ_GHZ} GHz)",
        )

    _check(report, "NTC energy-optimal frequency", ntc_optimum_check)

    def conventional_check():
        conv = conventional_server_power_model()
        f_opt = conv.optimal_frequency_ghz()
        return (
            abs(f_opt - conv.spec.f_max_ghz) < 1e-9,
            f"{f_opt:.1f} GHz == Fmax (consolidation wins)",
        )

    _check(report, "Conventional server optimum", conventional_check)

    def fig1_knee_check():
        dc = DataCenterPowerAnalysis(ntc_power, n_servers=80)
        below = [dc.optimal_point(u).freq_ghz for u in (10, 30, 50)]
        above_ok = all(
            abs(
                dc.optimal_point(u).freq_ghz
                - dc.min_feasible_frequency_ghz(u)
            )
            < 1e-9
            for u in (70, 90)
        )
        below_ok = all(1.7 <= f <= 2.0 for f in below)
        return (
            below_ok and above_ok,
            f"below-knee optima {below}, above-knee = min feasible",
        )

    _check(report, "Fig. 1(a) utilization knee", fig1_knee_check)

    def fig3_check():
        result = run_fig3(sim, ntc_power)
        peaks = result.peak_frequencies()
        ordered = all(
            a.buips_per_watt > b.buips_per_watt
            for a, b in zip(
                result.curves["low-mem"], result.curves["high-mem"]
            )
        )
        high_ok = 1.0 <= peaks["high-mem"] <= 1.4
        return (
            ordered and high_ok,
            f"peaks {peaks}, low>high efficiency everywhere",
        )

    _check(report, "Fig. 3 efficiency structure", fig3_check)

    return report


def main() -> int:
    """CLI entry: print the report, exit non-zero on failure."""
    report = validate_reproduction()
    print(report.summary())
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
