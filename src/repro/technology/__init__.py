"""Process-technology substrate: voltage/frequency curves, leakage, OPPs.

This subpackage models the technology layer of the paper's Section IV: the
28nm UTBB FD-SOI process that enables near-threshold operation, and a
conventional bulk process for the non-NTC comparison server.
"""

from .leakage import (
    LeakageModel,
    bulk_core_leakage,
    fdsoi28_core_leakage,
    fdsoi28_sram_leakage,
)
from .opp import (
    OperatingPoint,
    OppTable,
    build_opp_table,
    conventional_opp_table,
    ntc_opp_table,
    uniform_opp_grid,
)
from .scaling import (
    NodeScaling,
    fdsoi12_scaling,
    fdsoi20_scaling,
    scaled_ntc_power_model,
)
from .voltage import VoltageFrequencyModel, bulk_planar, fdsoi28

__all__ = [
    "LeakageModel",
    "NodeScaling",
    "OperatingPoint",
    "OppTable",
    "VoltageFrequencyModel",
    "build_opp_table",
    "bulk_core_leakage",
    "bulk_planar",
    "conventional_opp_table",
    "fdsoi12_scaling",
    "fdsoi20_scaling",
    "fdsoi28",
    "fdsoi28_core_leakage",
    "fdsoi28_sram_leakage",
    "ntc_opp_table",
    "scaled_ntc_power_model",
    "uniform_opp_grid",
]
