"""Leakage (static) power models.

Sub-threshold leakage current rises exponentially with supply voltage
through drain-induced barrier lowering (DIBL), and leakage *power* gains an
additional linear factor of ``V``.  We therefore model a leakage component
as::

    P_leak(V) = P_ref * (V / V_ref) * exp((V - V_ref) / v_slope)

anchored at a reference point ``(V_ref, P_ref)`` measured (in the paper's
case) at the nominal operating voltage.  ``v_slope`` controls how steeply
leakage collapses when the supply is lowered into the near-threshold
region — the effect that gives NTC servers their drastically reduced static
power (Section I of the paper).

The model deliberately ignores temperature dependence: the paper's server
power model is isothermal (fan power folded into the constant motherboard
term), and adding a temperature knob would not change any reproduced trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class LeakageModel:
    """Exponential-in-voltage leakage power model.

    Attributes:
        name: label used in error messages.
        p_ref_w: leakage power in watts at the reference voltage.
        v_ref: reference supply voltage in volts.
        v_slope: exponential slope in volts; smaller values mean a steeper
            collapse of leakage as voltage drops.
    """

    name: str
    p_ref_w: float
    v_ref: float
    v_slope: float

    def __post_init__(self) -> None:
        if self.p_ref_w < 0.0:
            raise ConfigurationError(
                f"{self.name}: reference leakage power must be >= 0"
            )
        if self.v_ref <= 0.0 or self.v_slope <= 0.0:
            raise ConfigurationError(
                f"{self.name}: v_ref and v_slope must be positive"
            )

    def power_w(self, voltage_v: float) -> float:
        """Leakage power in watts at supply ``voltage_v``.

        Raises:
            DomainError: if the voltage is not positive.
        """
        if voltage_v <= 0.0:
            raise DomainError(
                f"{self.name}: leakage voltage must be positive, "
                f"got {voltage_v}"
            )
        scale = voltage_v / self.v_ref
        return self.p_ref_w * scale * math.exp(
            (voltage_v - self.v_ref) / self.v_slope
        )

    def scaled(self, factor: float) -> "LeakageModel":
        """Return a copy whose reference power is multiplied by ``factor``.

        Useful for deriving the leakage of a block from a measured sibling
        block (e.g. scaling a 256KB SRAM macro measurement up to a 16MB
        last-level cache).
        """
        if factor < 0.0:
            raise ConfigurationError(
                f"{self.name}: scaling factor must be >= 0, got {factor}"
            )
        return LeakageModel(
            name=self.name,
            p_ref_w=self.p_ref_w * factor,
            v_ref=self.v_ref,
            v_slope=self.v_slope,
        )


def fdsoi28_core_leakage(cores: int = 16) -> LeakageModel:
    """Core-region leakage for the paper's 16-core FD-SOI NTC chip.

    Calibrated so that the whole core region (cores + L1/L2, Section IV-1)
    leaks ≈14 W at the 1.30 V / 3.1 GHz corner and collapses to ≈3 W around
    the 0.85 V / 1.9 GHz energy-optimal point — the ratio implied by the
    near-threshold prototype measurements the paper builds on (Refs. [4],
    [23]).
    """
    per_core_ref_w = 14.0 / 16.0
    return LeakageModel(
        name="FD-SOI core-region leakage",
        p_ref_w=per_core_ref_w * cores,
        v_ref=1.30,
        v_slope=0.425,
    )


def fdsoi28_sram_leakage(size_mb: float) -> LeakageModel:
    """Leakage of an FD-SOI SRAM array of ``size_mb`` mebibytes.

    Extrapolated from the paper's measurement methodology (Section IV-2):
    leakage measured on a 256KB SRAM block and scaled linearly with
    capacity.  We anchor the 256KB block at 18 mW @ 1.0 V, giving ≈1.2 W
    for the 16MB LLC at nominal voltage.
    """
    if size_mb <= 0.0:
        raise ConfigurationError("SRAM size must be positive")
    blocks = size_mb * 1024.0 / 256.0
    return LeakageModel(
        name=f"FD-SOI SRAM leakage ({size_mb:g} MB)",
        p_ref_w=0.018 * blocks,
        v_ref=1.0,
        v_slope=0.45,
    )


def bulk_core_leakage(cores: int = 6) -> LeakageModel:
    """Core leakage for the conventional bulk-process server (E5-2620-like).

    Bulk planar parts leak heavily and, because their voltage window is
    narrow (1.05-1.35 V), DVFS barely dents the static component.  We anchor
    at 20 W for the 6-core chip at 1.35 V with a gentle slope, so leakage
    stays within ≈1.5x across the whole DVFS range — the "large static
    server power" assumption the paper attributes to x86 platforms.
    """
    per_core_ref_w = 20.0 / 6.0
    return LeakageModel(
        name="bulk core leakage",
        p_ref_w=per_core_ref_w * cores,
        v_ref=1.35,
        v_slope=1.0,
    )
