"""Operating performance points (OPPs) and DVFS tables.

An OPP is a ``(frequency, voltage)`` pair a chip can run at.  A DVFS table
is the ordered list of OPPs exposed to the operating system — the paper's
policies pick frequencies from such a table (e.g. the online governor that
"sets the best frequency level for each server per sample").

The tables here are derived from a :class:`~repro.technology.voltage.
VoltageFrequencyModel`: given a grid of target frequencies, each point gets
the minimum voltage that sustains it.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError, InfeasibleError
from .voltage import VoltageFrequencyModel


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating point.

    Attributes:
        freq_ghz: clock frequency in GHz.
        voltage_v: minimum supply voltage sustaining that frequency, in V.
    """

    freq_ghz: float
    voltage_v: float


class OppTable:
    """Ordered, immutable table of operating performance points.

    The table is sorted by ascending frequency.  Lookup helpers implement
    the quantization the allocation policies need: *ceil* quantization for
    "slowest frequency that still covers this demand" and *floor*
    quantization for "fastest frequency not exceeding this cap".
    """

    def __init__(self, points: Iterable[OperatingPoint]):
        pts = sorted(points, key=lambda p: p.freq_ghz)
        if not pts:
            raise ConfigurationError("an OPP table needs at least one point")
        freqs = [p.freq_ghz for p in pts]
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("OPP table has duplicate frequencies")
        self._points: Tuple[OperatingPoint, ...] = tuple(pts)
        self._freqs: Tuple[float, ...] = tuple(freqs)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self._points[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.f_min_ghz, self.f_max_ghz
        return f"OppTable({len(self)} points, {lo:.2f}-{hi:.2f} GHz)"

    # -- bounds ---------------------------------------------------------------

    @property
    def f_min_ghz(self) -> float:
        """Lowest frequency in the table."""
        return self._freqs[0]

    @property
    def f_max_ghz(self) -> float:
        """Highest frequency in the table."""
        return self._freqs[-1]

    @property
    def frequencies_ghz(self) -> Tuple[float, ...]:
        """All frequencies in ascending order."""
        return self._freqs

    # -- quantization -----------------------------------------------------

    def ceil(self, freq_ghz: float) -> OperatingPoint:
        """Slowest OPP whose frequency is >= ``freq_ghz``.

        This is the quantization used when a frequency must *cover* a
        demand (e.g. the per-sample governor).  Demands at or below the
        table minimum return the minimum OPP.

        Raises:
            InfeasibleError: if ``freq_ghz`` exceeds the table maximum.
        """
        if freq_ghz > self.f_max_ghz:
            raise InfeasibleError(
                f"demand {freq_ghz:.4f} GHz exceeds the maximum OPP "
                f"({self.f_max_ghz:.4f} GHz)"
            )
        idx = bisect_left(self._freqs, freq_ghz)
        return self._points[idx]

    def floor(self, freq_ghz: float) -> OperatingPoint:
        """Fastest OPP whose frequency is <= ``freq_ghz``.

        This is the quantization used when a frequency acts as a *cap*.
        Caps at or above the table maximum return the maximum OPP.

        Raises:
            InfeasibleError: if ``freq_ghz`` is below the table minimum.
        """
        if freq_ghz < self.f_min_ghz:
            raise InfeasibleError(
                f"cap {freq_ghz:.4f} GHz is below the minimum OPP "
                f"({self.f_min_ghz:.4f} GHz)"
            )
        idx = bisect_left(self._freqs, freq_ghz)
        if idx < len(self._freqs) and self._freqs[idx] == freq_ghz:
            return self._points[idx]
        return self._points[idx - 1]

    def nearest(self, freq_ghz: float) -> OperatingPoint:
        """OPP whose frequency is closest to ``freq_ghz`` (ties go up)."""
        idx = bisect_left(self._freqs, freq_ghz)
        if idx == 0:
            return self._points[0]
        if idx == len(self._freqs):
            return self._points[-1]
        below, above = self._points[idx - 1], self._points[idx]
        if freq_ghz - below.freq_ghz < above.freq_ghz - freq_ghz:
            return below
        return above

    def index_of(self, freq_ghz: float) -> int:
        """Index of an exact frequency in the table.

        Raises:
            InfeasibleError: if the frequency is not an exact table entry.
        """
        idx = bisect_left(self._freqs, freq_ghz)
        if idx < len(self._freqs) and self._freqs[idx] == freq_ghz:
            return idx
        raise InfeasibleError(f"{freq_ghz} GHz is not an OPP of this table")


def build_opp_table(
    vf_model: VoltageFrequencyModel,
    frequencies_ghz: Sequence[float],
) -> OppTable:
    """Build an :class:`OppTable` from explicit target frequencies.

    Each frequency is paired with the minimum voltage sustaining it under
    ``vf_model``.  Frequencies outside the model's achievable range raise.
    """
    points: List[OperatingPoint] = []
    for freq in frequencies_ghz:
        voltage = vf_model.voltage_for_frequency(freq)
        points.append(OperatingPoint(freq_ghz=freq, voltage_v=voltage))
    return OppTable(points)


def uniform_opp_grid(
    vf_model: VoltageFrequencyModel,
    f_min_ghz: float,
    f_max_ghz: float,
    step_ghz: float = 0.1,
) -> OppTable:
    """Build a uniformly spaced OPP grid, inclusive of both endpoints.

    Grid points are generated at ``f_min, f_min+step, ...`` and ``f_max`` is
    appended if the grid does not land on it exactly.  Frequencies are
    rounded to a 1 MHz resolution to keep table entries exactly
    representable and comparable.
    """
    if f_min_ghz >= f_max_ghz:
        raise ConfigurationError("f_min must be below f_max")
    if step_ghz <= 0.0:
        raise ConfigurationError("step must be positive")
    freqs: List[float] = []
    n_steps = int(round((f_max_ghz - f_min_ghz) / step_ghz))
    for i in range(n_steps + 1):
        freq = round(f_min_ghz + i * step_ghz, 3)
        if freq <= f_max_ghz + 1e-9:
            freqs.append(min(freq, f_max_ghz))
    if freqs[-1] != f_max_ghz:
        freqs.append(f_max_ghz)
    # Deduplicate while preserving order (rounding may collide).
    unique: List[float] = []
    for freq in freqs:
        if not unique or freq > unique[-1]:
            unique.append(freq)
    return build_opp_table(vf_model, unique)


def ntc_opp_table(vf_model: VoltageFrequencyModel | None = None) -> OppTable:
    """The NTC server's DVFS table: 100 MHz steps from 0.3 to 3.1 GHz.

    The range matches the x-axis of the paper's Fig. 1(a) (300-3100 MHz),
    extended downward with the 100 MHz and 200 MHz near-threshold points
    that Fig. 2 sweeps.
    """
    from .voltage import fdsoi28

    model = vf_model if vf_model is not None else fdsoi28()
    freqs = [0.1, 0.2] + [round(0.3 + 0.1 * i, 1) for i in range(29)]
    return build_opp_table(model, freqs)


def conventional_opp_table(
    vf_model: VoltageFrequencyModel | None = None,
) -> OppTable:
    """The conventional server's DVFS table: 1.2-2.4 GHz in 100 MHz steps.

    Matches the x-axis of the paper's Fig. 1(b) (1200-2400 MHz), the DVFS
    window of the Intel E5-2620.
    """
    from .voltage import bulk_planar

    model = vf_model if vf_model is not None else bulk_planar()
    freqs = [round(1.2 + 0.1 * i, 1) for i in range(13)]
    return build_opp_table(model, freqs)
