"""Technology-node scaling projections (the paper's future-work axis).

The paper's introduction tracks the FD-SOI roadmap — 28nm in mass
production, 20nm at GlobalFoundries, 12nm planned — and its conclusion
argues EPACT "will be even more effective in future technologies, where
static power is expected to decrease further".  This module provides
first-order projections of the 28nm models onto those nodes so that claim
can be explored quantitatively (see ``benchmarks/bench_ablations.py``).

Scaling model (classic constant-field-flavoured first-order factors per
full node step; FD-SOI's back-bias keeps leakage in check, which is the
point of the technology):

* effective capacitance per core: x ``capacitance_factor``
* supply/threshold voltages: x ``voltage_factor``
* leakage power at the (scaled) reference voltage: x ``leakage_factor``
* platform static power (board/fan/disk): x ``platform_factor``
* maximum frequency: held — servers are power-limited, not fmax-limited.

These are projections, not measurements; they are deliberately
conservative and only feed trend-level experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .leakage import LeakageModel
from .voltage import VoltageFrequencyModel


@dataclass(frozen=True)
class NodeScaling:
    """First-order scaling factors from 28nm FD-SOI to a target node.

    Attributes:
        name: target node label, e.g. ``"20nm FD-SOI"``.
        capacitance_factor: effective-capacitance multiplier.
        voltage_factor: supply/threshold voltage multiplier.
        leakage_factor: leakage-power multiplier at the scaled reference.
        platform_factor: platform-static-power multiplier.
    """

    name: str
    capacitance_factor: float
    voltage_factor: float
    leakage_factor: float
    platform_factor: float

    def __post_init__(self) -> None:
        for field_name in (
            "capacitance_factor",
            "voltage_factor",
            "leakage_factor",
            "platform_factor",
        ):
            if getattr(self, field_name) <= 0.0:
                raise ConfigurationError(
                    f"{self.name}: {field_name} must be positive"
                )

    def scale_vf_model(
        self, base: VoltageFrequencyModel
    ) -> VoltageFrequencyModel:
        """Project a voltage/frequency curve onto the target node.

        Voltages shrink by ``voltage_factor``; the normalization constant
        is re-derived so the scaled curve reaches the same ``f_max`` at
        the scaled ``v_max`` (power-limited design point).
        """
        vth = base.vth_v * self.voltage_factor
        v_min = base.v_min * self.voltage_factor
        v_max = base.v_max * self.voltage_factor
        f_max = base.f_max_ghz
        k = f_max * v_max / math.pow(v_max - vth, base.alpha)
        return VoltageFrequencyModel(
            name=f"{base.name} -> {self.name}",
            vth_v=vth,
            alpha=base.alpha,
            v_min=v_min,
            v_max=v_max,
            k_ghz=k,
        )

    def scale_leakage(self, base: LeakageModel) -> LeakageModel:
        """Project a leakage model onto the target node."""
        return LeakageModel(
            name=f"{base.name} -> {self.name}",
            p_ref_w=base.p_ref_w * self.leakage_factor,
            v_ref=base.v_ref * self.voltage_factor,
            v_slope=base.v_slope * self.voltage_factor,
        )


def fdsoi20_scaling() -> NodeScaling:
    """28nm -> 20nm FD-SOI projection.

    Encodes the paper's premise that *static* power scales down faster
    than dynamic power on future FD-SOI nodes (back-bias leakage tuning,
    leaner platforms): capacitance x0.85, voltage x0.96, but leakage x0.6
    and platform static x0.65.
    """
    return NodeScaling(
        name="20nm FD-SOI",
        capacitance_factor=0.85,
        voltage_factor=0.96,
        leakage_factor=0.60,
        platform_factor=0.65,
    )


def fdsoi12_scaling() -> NodeScaling:
    """28nm -> 12nm FD-SOI projection.

    Same premise, one node further: capacitance x0.70, voltage x0.92,
    leakage x0.40, platform static x0.40 (integrated voltage regulators,
    NVMe-class storage, lean boards).
    """
    return NodeScaling(
        name="12nm FD-SOI",
        capacitance_factor=0.70,
        voltage_factor=0.92,
        leakage_factor=0.40,
        platform_factor=0.40,
    )


def scaled_ntc_power_model(scaling: NodeScaling):
    """NTC server power model projected onto a future node.

    Returns a :class:`~repro.power.server_power.ServerPowerModel` whose
    core capacitance, leakage, V/f curve and platform static power follow
    the scaling factors.  The architectural spec (cores, caches, DRAM) is
    unchanged — iso-architecture scaling.
    """
    from dataclasses import replace as dc_replace

    from ..arch.platforms import ntc_server
    from ..power.core_power import CoreRegionPowerModel
    from ..power.server_power import ntc_server_power_model
    from ..power.uncore import UncorePowerModel
    from ..technology.opp import ntc_opp_table

    base = ntc_server_power_model()
    spec = ntc_server()
    vf = scaling.scale_vf_model(spec.vf_model)
    scaled_spec = dc_replace(
        spec, vf_model=vf, opps=ntc_opp_table(vf_model=vf)
    )
    core = CoreRegionPowerModel(
        ceff_nf=base.core.ceff_nf * scaling.capacitance_factor,
        leakage=scaling.scale_leakage(base.core.leakage),
        wfm_reduction=base.core.wfm_reduction,
    )
    # The whole platform overhead (constant uncore, proportional uncore,
    # motherboard) scales: leaner chipsets and boards are exactly the
    # "static power expected to decrease further" of the paper.
    p = scaling.platform_factor
    uncore = UncorePowerModel(
        constant_w=base.uncore.constant_w * p,
        proportional_min_w=base.uncore.proportional_min_w * p,
        proportional_max_w=base.uncore.proportional_max_w * p,
        motherboard_w=base.uncore.motherboard_w * p,
        v_max=base.uncore.v_max * scaling.voltage_factor,
        f_max_ghz=base.uncore.f_max_ghz,
    )
    llc = base.llc
    if llc is not None:
        llc = dc_replace(
            llc, leakage=scaling.scale_leakage(llc.leakage)
        )
    return dc_replace(
        base, spec=scaled_spec, core=core, uncore=uncore, llc=llc
    )
