"""Voltage/frequency models for the process technologies in the paper.

The maximum clock frequency a CMOS circuit sustains at supply voltage ``V``
is modeled with the classic alpha-power law::

    f(V) = K * (V - Vth)^alpha / V

where ``Vth`` is the effective threshold voltage, ``alpha`` captures
velocity saturation (between 1 and 2 for modern nodes) and ``K`` normalizes
the curve so that the technology reaches its rated maximum frequency at its
maximum operating voltage.

Two concrete technologies are provided:

* :func:`fdsoi28` — the 28nm UTBB FD-SOI process of the paper's NTC server.
  Its distinguishing feature (Section I, Ref. [4] of the paper) is an
  ultra-wide operating voltage range extending deep into the near-threshold
  region, which is what makes the server energy proportional.
* :func:`bulk_planar` — a conventional bulk planar process standing in for
  the Intel E5-2620 server of Fig. 1(b), with the narrow voltage range
  typical of performance-tuned enterprise parts.

The inverse mapping (voltage required for a target frequency) has no closed
form and is computed by bisection; the curve is strictly increasing on the
valid voltage range so bisection is exact to the requested tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, DomainError

_BISECTION_TOLERANCE_V = 1.0e-9
_BISECTION_MAX_ITER = 200


@dataclass(frozen=True)
class VoltageFrequencyModel:
    """Alpha-power-law voltage/frequency curve for one process technology.

    Attributes:
        name: human-readable technology name.
        vth_v: effective threshold voltage in volts.
        alpha: velocity-saturation exponent (dimensionless).
        v_min: minimum operating supply voltage in volts.
        v_max: maximum operating supply voltage in volts.
        k_ghz: normalization constant such that
            ``f(v_max) = k_ghz * (v_max - vth_v)^alpha / v_max``.
    """

    name: str
    vth_v: float
    alpha: float
    v_min: float
    v_max: float
    k_ghz: float

    def __post_init__(self) -> None:
        if self.v_min <= self.vth_v:
            raise ConfigurationError(
                f"{self.name}: v_min ({self.v_min} V) must exceed the "
                f"threshold voltage ({self.vth_v} V)"
            )
        if self.v_max <= self.v_min:
            raise ConfigurationError(
                f"{self.name}: v_max ({self.v_max} V) must exceed "
                f"v_min ({self.v_min} V)"
            )
        if self.alpha <= 0.0 or self.k_ghz <= 0.0:
            raise ConfigurationError(
                f"{self.name}: alpha and k_ghz must be positive"
            )

    # -- forward curve ----------------------------------------------------

    def frequency_ghz(self, voltage_v: float) -> float:
        """Maximum sustainable clock frequency (GHz) at ``voltage_v``.

        Raises:
            DomainError: if the voltage is outside ``[v_min, v_max]``.
        """
        if not (self.v_min <= voltage_v <= self.v_max):
            raise DomainError(
                f"{self.name}: voltage {voltage_v} V outside operating "
                f"range [{self.v_min}, {self.v_max}] V"
            )
        overdrive = voltage_v - self.vth_v
        return self.k_ghz * math.pow(overdrive, self.alpha) / voltage_v

    @property
    def f_min_ghz(self) -> float:
        """Frequency at the minimum operating voltage."""
        return self.frequency_ghz(self.v_min)

    @property
    def f_max_ghz(self) -> float:
        """Frequency at the maximum operating voltage."""
        return self.frequency_ghz(self.v_max)

    # -- inverse curve ----------------------------------------------------

    def voltage_for_frequency(self, freq_ghz: float) -> float:
        """Minimum supply voltage (V) sustaining ``freq_ghz``.

        Computed by bisection on the strictly increasing forward curve.

        Raises:
            DomainError: if the frequency is outside the technology's
                achievable range ``[f_min_ghz, f_max_ghz]``.
        """
        f_lo = self.f_min_ghz
        f_hi = self.f_max_ghz
        if not (f_lo <= freq_ghz <= f_hi):
            raise DomainError(
                f"{self.name}: frequency {freq_ghz} GHz outside achievable "
                f"range [{f_lo:.4f}, {f_hi:.4f}] GHz"
            )
        lo, hi = self.v_min, self.v_max
        for _ in range(_BISECTION_MAX_ITER):
            mid = 0.5 * (lo + hi)
            if self.frequency_ghz(mid) < freq_ghz:
                lo = mid
            else:
                hi = mid
            if hi - lo < _BISECTION_TOLERANCE_V:
                break
        return hi

    # -- convenience ------------------------------------------------------

    def is_near_threshold(self, voltage_v: float, margin_v: float = 0.2) -> bool:
        """Whether ``voltage_v`` sits in the near-threshold region.

        The near-threshold region is conventionally defined as supply
        voltages within ``margin_v`` volts above the threshold voltage.
        """
        return self.vth_v < voltage_v <= self.vth_v + margin_v


def fdsoi28() -> VoltageFrequencyModel:
    """28nm UTBB FD-SOI voltage/frequency model (the paper's NTC process).

    Calibration choices (see DESIGN.md section 5):

    * ``v_max = 1.30 V`` reaching ``3.1 GHz``, the ``Fmax`` of the paper's
      Fig. 1(a) data-center analysis;
    * an ultra-wide range down to ``v_min = 0.27 V`` so the slowest
      operating point of Fig. 2 (100 MHz) is reachable in near-threshold;
    * ``alpha = 1.3`` (velocity-saturated short-channel behaviour), which
      makes supply voltage — and therefore dynamic energy per cycle — climb
      steeply toward ``Fmax``; this steepness is the physical origin of the
      ≈1.9 GHz energy-optimal point that the paper reports.
    """
    vth = 0.25
    alpha = 1.3
    v_max = 1.30
    f_max = 3.1
    k = f_max * v_max / math.pow(v_max - vth, alpha)
    return VoltageFrequencyModel(
        name="28nm UTBB FD-SOI",
        vth_v=vth,
        alpha=alpha,
        v_min=0.27,
        v_max=v_max,
        k_ghz=k,
    )


def bulk_planar() -> VoltageFrequencyModel:
    """Bulk planar process model for the conventional (non-NTC) server.

    Stands in for the 32nm parts of the Intel E5-2620 used in Fig. 1(b):
    a narrow 1.04-1.35 V window covering 1.2-2.4 GHz.  Voltage moves only
    ~0.24 V/GHz across the whole DVFS range, so lowering frequency buys
    almost no dynamic-energy reduction while static power amortizes worse —
    the reason consolidation at ``Fmax`` is optimal for these parts.
    """
    vth = 0.55
    alpha = 2.0
    v_max = 1.35
    f_max = 2.4
    k = f_max * v_max / math.pow(v_max - vth, alpha)
    return VoltageFrequencyModel(
        name="bulk planar (conventional server)",
        vth_v=vth,
        alpha=alpha,
        v_min=1.04,
        v_max=v_max,
        k_ghz=k,
    )
