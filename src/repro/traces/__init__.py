"""Workload-trace substrate: synthetic Google-cluster-like traces.

Provides the VM descriptors, temporal pattern primitives, the trace
generator and the :class:`TraceDataset` container the data-center
simulation consumes.
"""

from .dataset import TraceDataset
from .generator import (
    ClusterTraceGenerator,
    GeneratorConfig,
    default_dataset,
    memory_heavy_dataset,
)
from .io import load_dataset, save_dataset
from .lifecycle import (
    ChurnConfig,
    LifecycleSchedule,
    fixed_schedule,
    generate_lifecycle,
)
from .patterns import ar1_noise, burst_events, diurnal_profile, weekly_modulation
from .vm import VmSpec, VmTrace

__all__ = [
    "ChurnConfig",
    "ClusterTraceGenerator",
    "GeneratorConfig",
    "LifecycleSchedule",
    "TraceDataset",
    "VmSpec",
    "VmTrace",
    "ar1_noise",
    "burst_events",
    "default_dataset",
    "diurnal_profile",
    "fixed_schedule",
    "generate_lifecycle",
    "load_dataset",
    "memory_heavy_dataset",
    "save_dataset",
    "weekly_modulation",
]
