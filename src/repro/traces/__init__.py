"""Workload-trace substrate: synthetic Google-cluster-like traces.

Provides the VM descriptors, temporal pattern primitives, the trace
generator and the :class:`TraceDataset` container the data-center
simulation consumes.
"""

from .dataset import TraceDataset
from .generator import (
    ClusterTraceGenerator,
    GeneratorConfig,
    default_dataset,
    memory_heavy_dataset,
)
from .io import load_dataset, save_dataset
from .patterns import ar1_noise, burst_events, diurnal_profile, weekly_modulation
from .vm import VmSpec, VmTrace

__all__ = [
    "ClusterTraceGenerator",
    "GeneratorConfig",
    "TraceDataset",
    "VmSpec",
    "VmTrace",
    "ar1_noise",
    "burst_events",
    "default_dataset",
    "diurnal_profile",
    "load_dataset",
    "memory_heavy_dataset",
    "save_dataset",
    "weekly_modulation",
]
