"""Trace dataset persistence (NumPy ``.npz`` container).

Generating the paper-scale dataset takes under a second, but experiments
that must share *identical* traces across processes or machines (or pin
them in version control) want a file format.  One ``.npz`` holds the two
utilization matrices plus the per-VM spec columns; round-tripping is
exact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ConfigurationError
from ..perf.workload import MemoryClass
from .dataset import TraceDataset
from .vm import VmSpec

_FORMAT_VERSION = 1


def save_dataset(dataset: TraceDataset, path: Union[str, Path]) -> Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        target,
        format_version=np.array([_FORMAT_VERSION]),
        cpu_pct=dataset.cpu_pct,
        mem_pct=dataset.mem_pct,
        mem_class=np.array(
            [spec.mem_class.label for spec in dataset.specs]
        ),
        cpu_base_pct=np.array(
            [spec.cpu_base_pct for spec in dataset.specs]
        ),
        mem_base_pct=np.array(
            [spec.mem_base_pct for spec in dataset.specs]
        ),
        group=np.array([spec.group for spec in dataset.specs]),
    )
    return target


def load_dataset(path: Union[str, Path]) -> TraceDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        ConfigurationError: for missing files or unknown format versions.
    """
    target = Path(path)
    if not target.exists():
        raise ConfigurationError(f"no trace file at {target}")
    with np.load(target, allow_pickle=False) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported trace format version {version}"
            )
        labels = [str(label) for label in data["mem_class"]]
        specs = tuple(
            VmSpec(
                vm_id=i,
                mem_class=MemoryClass.from_label(labels[i]),
                cpu_base_pct=float(data["cpu_base_pct"][i]),
                mem_base_pct=float(data["mem_base_pct"][i]),
                group=int(data["group"][i]),
            )
            for i in range(len(labels))
        )
        return TraceDataset(
            specs=specs,
            cpu_pct=np.array(data["cpu_pct"]),
            mem_pct=np.array(data["mem_pct"]),
        )
