"""VM descriptors and per-VM utilization traces.

The paper's evaluation drives ~600 VMs whose CPU and memory utilization is
sampled every 5 minutes from the Google Cluster traces (Section III-B).
A :class:`VmSpec` describes one VM's static properties; a :class:`VmTrace`
couples a spec with its utilization time series.

Utilization units follow DESIGN.md: CPU percent is relative to one server's
full capacity at ``Fmax``; memory percent is relative to one server's DRAM
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..perf.workload import MemoryClass


@dataclass(frozen=True)
class VmSpec:
    """Static description of one VM.

    Attributes:
        vm_id: index of the VM in its dataset.
        mem_class: the workload class (drives QoS floor, stall behaviour
            and DRAM traffic intensity).
        cpu_base_pct: long-run mean CPU utilization in percent.
        mem_base_pct: long-run mean memory utilization in percent.
        group: correlation-group index (VMs in a group share load shape;
            the structure correlation-aware policies exploit).
    """

    vm_id: int
    mem_class: MemoryClass
    cpu_base_pct: float
    mem_base_pct: float
    group: int

    def __post_init__(self) -> None:
        if self.vm_id < 0:
            raise ConfigurationError("vm_id must be non-negative")
        if not (0.0 < self.cpu_base_pct <= 100.0):
            raise ConfigurationError(
                f"VM {self.vm_id}: cpu base must be in (0, 100]"
            )
        if not (0.0 < self.mem_base_pct <= 100.0):
            raise ConfigurationError(
                f"VM {self.vm_id}: mem base must be in (0, 100]"
            )
        if self.group < 0:
            raise ConfigurationError("group must be non-negative")


@dataclass(frozen=True)
class VmTrace:
    """One VM's utilization time series.

    Attributes:
        spec: the VM's static description.
        cpu_pct: CPU utilization per sample (1-D array, percent).
        mem_pct: memory utilization per sample (1-D array, percent).
    """

    spec: VmSpec
    cpu_pct: np.ndarray
    mem_pct: np.ndarray

    def __post_init__(self) -> None:
        if self.cpu_pct.ndim != 1 or self.mem_pct.ndim != 1:
            raise ConfigurationError("traces must be 1-D arrays")
        if self.cpu_pct.shape != self.mem_pct.shape:
            raise ConfigurationError(
                "CPU and memory traces must have equal length"
            )
        if np.any(self.cpu_pct < 0.0) or np.any(self.mem_pct < 0.0):
            raise ConfigurationError("utilization cannot be negative")

    @property
    def n_samples(self) -> int:
        """Number of 5-minute samples in the trace."""
        return int(self.cpu_pct.shape[0])

    def peak_cpu_pct(self) -> float:
        """Maximum CPU utilization over the trace."""
        return float(self.cpu_pct.max())

    def mean_cpu_pct(self) -> float:
        """Mean CPU utilization over the trace."""
        return float(self.cpu_pct.mean())

    def peak_mem_pct(self) -> float:
        """Maximum memory utilization over the trace."""
        return float(self.mem_pct.max())
