"""Trace dataset container and statistics.

A :class:`TraceDataset` bundles the per-VM specs with two matrices of
shape ``(n_vms, n_samples)`` — CPU and memory utilization per 5-minute
sample — plus slicing helpers aligned to the paper's slot/day time grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..perf.workload import MemoryClass
from ..units import SAMPLES_PER_DAY, SAMPLES_PER_SLOT
from .vm import VmSpec, VmTrace


@dataclass(frozen=True)
class TraceDataset:
    """Utilization traces for a fleet of VMs.

    Attributes:
        specs: per-VM static descriptions, index-aligned with the rows of
            the utilization matrices.
        cpu_pct: CPU utilization, shape ``(n_vms, n_samples)``, percent of
            one server's ``Fmax`` capacity.
        mem_pct: memory utilization, shape ``(n_vms, n_samples)``, percent
            of one server's DRAM capacity.
    """

    specs: Tuple[VmSpec, ...]
    cpu_pct: np.ndarray
    mem_pct: np.ndarray

    def __post_init__(self) -> None:
        if self.cpu_pct.ndim != 2 or self.mem_pct.ndim != 2:
            raise ConfigurationError("utilization matrices must be 2-D")
        if self.cpu_pct.shape != self.mem_pct.shape:
            raise ConfigurationError("CPU and memory shapes must match")
        if len(self.specs) != self.cpu_pct.shape[0]:
            raise ConfigurationError(
                f"{len(self.specs)} specs but "
                f"{self.cpu_pct.shape[0]} trace rows"
            )
        if np.any(self.cpu_pct < 0.0) or np.any(self.mem_pct < 0.0):
            raise ConfigurationError("utilization cannot be negative")

    # -- shape ---------------------------------------------------------------

    @property
    def n_vms(self) -> int:
        """Number of VMs."""
        return self.cpu_pct.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of 5-minute samples per VM."""
        return self.cpu_pct.shape[1]

    @property
    def n_days(self) -> int:
        """Whole days covered by the traces."""
        return self.n_samples // SAMPLES_PER_DAY

    @property
    def n_slots(self) -> int:
        """Whole 1-hour allocation slots covered by the traces."""
        return self.n_samples // SAMPLES_PER_SLOT

    # -- access ---------------------------------------------------------------

    def vm(self, vm_id: int) -> VmTrace:
        """Full trace of one VM."""
        if not (0 <= vm_id < self.n_vms):
            raise DomainError(f"vm_id {vm_id} out of range")
        return VmTrace(
            spec=self.specs[vm_id],
            cpu_pct=self.cpu_pct[vm_id],
            mem_pct=self.mem_pct[vm_id],
        )

    def mem_classes(self) -> List[MemoryClass]:
        """Per-VM workload classes, index-aligned with trace rows."""
        return [spec.mem_class for spec in self.specs]

    def slot_slice(self, slot_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """CPU and memory matrices for one 1-hour slot (12 samples).

        Raises:
            DomainError: if the slot is outside the dataset.
        """
        if not (0 <= slot_index < self.n_slots):
            raise DomainError(
                f"slot {slot_index} out of range [0, {self.n_slots})"
            )
        lo = slot_index * SAMPLES_PER_SLOT
        hi = lo + SAMPLES_PER_SLOT
        return self.cpu_pct[:, lo:hi], self.mem_pct[:, lo:hi]

    def day_slice(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """CPU and memory matrices for one day (288 samples)."""
        if not (0 <= day_index < self.n_days):
            raise DomainError(
                f"day {day_index} out of range [0, {self.n_days})"
            )
        lo = day_index * SAMPLES_PER_DAY
        hi = lo + SAMPLES_PER_DAY
        return self.cpu_pct[:, lo:hi], self.mem_pct[:, lo:hi]

    def subset(self, vm_ids: Sequence[int]) -> "TraceDataset":
        """Dataset restricted to a subset of VMs (re-indexed)."""
        ids = list(vm_ids)
        specs = []
        for new_id, old_id in enumerate(ids):
            old = self.specs[old_id]
            specs.append(
                VmSpec(
                    vm_id=new_id,
                    mem_class=old.mem_class,
                    cpu_base_pct=old.cpu_base_pct,
                    mem_base_pct=old.mem_base_pct,
                    group=old.group,
                )
            )
        return TraceDataset(
            specs=tuple(specs),
            cpu_pct=self.cpu_pct[ids].copy(),
            mem_pct=self.mem_pct[ids].copy(),
        )

    # -- statistics -------------------------------------------------------------

    def aggregate_cpu_pct(self) -> np.ndarray:
        """Sum of CPU utilization over VMs, per sample.

        In units of "percent of one server": 100 means one fully loaded
        server at ``Fmax``.
        """
        return self.cpu_pct.sum(axis=0)

    def aggregate_mem_pct(self) -> np.ndarray:
        """Sum of memory utilization over VMs, per sample."""
        return self.mem_pct.sum(axis=0)

    def peak_server_equivalents(self) -> float:
        """Peak aggregate CPU demand in fully-loaded-server equivalents."""
        return float(self.aggregate_cpu_pct().max() / 100.0)

    def mean_cpu_correlation_within_groups(self) -> float:
        """Average pairwise CPU correlation of VMs sharing a group.

        The statistic the correlation-aware policies exploit; tests assert
        it is materially higher than across groups.
        """
        return self._mean_correlation(same_group=True)

    def mean_cpu_correlation_across_groups(self) -> float:
        """Average pairwise CPU correlation of VMs in different groups."""
        return self._mean_correlation(same_group=False)

    def _mean_correlation(self, same_group: bool) -> float:
        rows = self.cpu_pct - self.cpu_pct.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(rows, axis=1)
        norms[norms == 0.0] = 1.0
        normalized = rows / norms[:, None]
        corr = normalized @ normalized.T
        groups = np.array([spec.group for spec in self.specs])
        same = groups[:, None] == groups[None, :]
        off_diagonal = ~np.eye(self.n_vms, dtype=bool)
        mask = (same if same_group else ~same) & off_diagonal
        if not mask.any():
            return 0.0
        return float(corr[mask].mean())
