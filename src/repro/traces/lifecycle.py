"""VM lifecycle model: arrivals, departures and resizes over a horizon.

The paper's Section VI-C evaluation consolidates a *fixed* VM
population; a production cloud is dominated by churn.  This module
provides the lifecycle substrate of the ``repro.cloud`` subsystem:

* a :class:`LifecycleSchedule` — per-VM arrival and departure slots plus
  optional resize events, with the membership / change-point queries the
  online engine needs (``active_ids``, ``next_change``, ``scale_at``);
* :func:`generate_lifecycle` — a seeded generator producing Poisson
  arrivals (optionally diurnally modulated, with flash-crowd spikes),
  heavy-tailed lognormal lifetimes, an optional short-lived "batch"
  sub-population, and Poisson resize events;
* :func:`fixed_schedule` — the zero-churn degenerate case (every VM
  active for the whole horizon), which must reproduce the fixed-
  population engine exactly.

All randomness flows through one ``numpy`` Generator in a fixed draw
order, so a given ``(config, n_vms, horizon, seed)`` always produces the
identical schedule — the determinism the cloud tests assert.

Arrivals and departures happen at slot boundaries (the paper's 1-hour
allocation grid): a VM with ``arrival_slot == a`` and ``departure_slot
== d`` is active for slots ``a <= slot < d``.  A resize event at slot
``s`` rescales the VM's CPU/memory trace (and its forecasts) from ``s``
onward until the next event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, DomainError


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the lifecycle generator.

    Attributes:
        initial_fraction: fraction of the VM pool already running at the
            first horizon slot.
        arrival_rate_frac: mean arrivals per slot as a fraction of the
            pool size (Poisson; ``0.005`` at 600 VMs = 3 VMs/hour).
        lifetime_mean_slots: mean VM lifetime in slots.
        lifetime_sigma: lognormal shape parameter; larger values give the
            heavy tail of real cloud lifetimes.
        arrival_diurnal_amplitude: 0..1 modulation of the arrival rate
            over the day (peak at midday, trough at night).
        flash_slots: horizon-relative slots receiving an arrival burst.
        flash_arrivals: extra arrivals injected at each flash slot.
        short_lived_fraction: fraction of arriving VMs drawn from the
            short-lived "batch" sub-population.
        short_lifetime_mean_slots: mean lifetime of that sub-population.
        resize_rate_per_slot: per-VM Poisson rate of resize events per
            active slot.
        resize_range: uniform range of resize factors (applied to both
            CPU and memory utilization from the event slot onward).
    """

    initial_fraction: float = 0.6
    arrival_rate_frac: float = 0.004
    lifetime_mean_slots: float = 48.0
    lifetime_sigma: float = 0.9
    arrival_diurnal_amplitude: float = 0.0
    flash_slots: Tuple[int, ...] = ()
    flash_arrivals: int = 0
    short_lived_fraction: float = 0.0
    short_lifetime_mean_slots: float = 6.0
    resize_rate_per_slot: float = 0.0
    resize_range: Tuple[float, float] = (0.6, 1.5)

    def __post_init__(self) -> None:
        if not (0.0 <= self.initial_fraction <= 1.0):
            raise ConfigurationError("initial_fraction must be in [0, 1]")
        if self.arrival_rate_frac < 0.0:
            raise ConfigurationError("arrival_rate_frac must be >= 0")
        if self.lifetime_mean_slots <= 0.0:
            raise ConfigurationError("lifetime_mean_slots must be > 0")
        if self.lifetime_sigma < 0.0:
            raise ConfigurationError("lifetime_sigma must be >= 0")
        if not (0.0 <= self.arrival_diurnal_amplitude <= 1.0):
            raise ConfigurationError(
                "arrival_diurnal_amplitude must be in [0, 1]"
            )
        if any(int(s) < 0 for s in self.flash_slots):
            raise ConfigurationError(
                "flash_slots are horizon-relative and must be >= 0; got "
                f"{tuple(self.flash_slots)} — offsets count from the "
                "horizon's first slot"
            )
        if self.flash_arrivals < 0:
            raise ConfigurationError("flash_arrivals must be >= 0")
        if not (0.0 <= self.short_lived_fraction <= 1.0):
            raise ConfigurationError(
                "short_lived_fraction must be in [0, 1]"
            )
        if self.short_lifetime_mean_slots <= 0.0:
            raise ConfigurationError(
                "short_lifetime_mean_slots must be > 0"
            )
        if self.resize_rate_per_slot < 0.0:
            raise ConfigurationError("resize_rate_per_slot must be >= 0")
        lo, hi = self.resize_range
        if not (0.0 < lo <= hi):
            raise ConfigurationError("resize_range must be 0 < lo <= hi")


class LifecycleSchedule:
    """Per-VM arrival/departure slots plus resize events over a horizon.

    Args:
        arrival_slot: per-VM first active slot, length ``n_vms``.  VMs
            that never run carry ``arrival_slot == departure_slot``.
        departure_slot: per-VM first slot *after* the VM leaves
            (exclusive bound).
        horizon_start: first slot of the simulated horizon.
        horizon_end: one past the last simulated slot.
        resize_events: optional ``(vm_id, slot, cpu_factor, mem_factor)``
            tuples; each replaces the VM's scale factors from ``slot``
            onward.
    """

    def __init__(
        self,
        arrival_slot: np.ndarray,
        departure_slot: np.ndarray,
        horizon_start: int,
        horizon_end: int,
        resize_events: Sequence[Tuple[int, int, float, float]] = (),
    ):
        arrival = np.asarray(arrival_slot, dtype=np.int64)
        departure = np.asarray(departure_slot, dtype=np.int64)
        if arrival.ndim != 1 or arrival.shape != departure.shape:
            raise ConfigurationError(
                "arrival and departure must be equal-length 1-D arrays"
            )
        if horizon_end <= horizon_start:
            raise ConfigurationError("horizon must cover at least one slot")
        if np.any(departure < arrival):
            raise ConfigurationError("departure_slot precedes arrival_slot")
        self._arrival = arrival
        self._departure = departure
        self._start = int(horizon_start)
        self._end = int(horizon_end)
        self._events = sorted(
            (int(vm), int(slot), float(fc), float(fm))
            for vm, slot, fc, fm in resize_events
        )
        for vm, slot, fc, fm in self._events:
            if not (0 <= vm < arrival.shape[0]):
                raise ConfigurationError(f"resize vm {vm} out of range")
            if fc <= 0.0 or fm <= 0.0:
                raise ConfigurationError("resize factors must be positive")
        self._change_slots = self._build_change_slots()
        self._scale_snapshots = self._build_scale_snapshots()

    # -- construction helpers ------------------------------------------------

    def _build_change_slots(self) -> np.ndarray:
        """Sorted unique slots (within the horizon) where membership or
        scale changes — the online engine cuts windows at these points.

        VMs with ``arrival == departure`` never run and contribute no
        change points.
        """
        lives = self._departure > self._arrival
        points: List[int] = []
        for arr in (self._arrival[lives], self._departure[lives]):
            inside = arr[(arr > self._start) & (arr < self._end)]
            points.extend(int(s) for s in inside)
        points.extend(
            slot
            for _, slot, _, _ in self._events
            if self._start < slot < self._end
        )
        return np.unique(np.asarray(points, dtype=np.int64))

    def _build_scale_snapshots(self):
        """Per-change-slot full scale vectors (copy-on-write timeline)."""
        if not self._events:
            return None
        n_vms = self._arrival.shape[0]
        slots = sorted({slot for _, slot, _, _ in self._events})
        cpu = np.ones(n_vms)
        mem = np.ones(n_vms)
        snapshots = []
        by_slot: dict = {}
        for vm, slot, fc, fm in self._events:
            by_slot.setdefault(slot, []).append((vm, fc, fm))
        for slot in slots:
            cpu = cpu.copy()
            mem = mem.copy()
            for vm, fc, fm in by_slot[slot]:
                cpu[vm] = fc
                mem[vm] = fm
            snapshots.append((cpu, mem))
        return np.asarray(slots, dtype=np.int64), snapshots

    # -- shape ---------------------------------------------------------------

    @property
    def n_vms(self) -> int:
        """Size of the VM pool the schedule covers."""
        return self._arrival.shape[0]

    @property
    def horizon_start(self) -> int:
        """First slot of the horizon."""
        return self._start

    @property
    def horizon_end(self) -> int:
        """One past the last slot of the horizon."""
        return self._end

    @property
    def arrival_slots(self) -> np.ndarray:
        """Per-VM arrival slot (read-only view)."""
        return self._arrival

    @property
    def departure_slots(self) -> np.ndarray:
        """Per-VM departure slot, exclusive (read-only view)."""
        return self._departure

    @property
    def has_resizes(self) -> bool:
        """Whether any resize events exist."""
        return bool(self._events)

    @property
    def resize_events(self) -> List[Tuple[int, int, float, float]]:
        """Sorted ``(vm, slot, cpu_factor, mem_factor)`` events."""
        return list(self._events)

    # -- queries -------------------------------------------------------------

    def active_mask(self, slot: int) -> np.ndarray:
        """Boolean per-VM "is active during ``slot``" mask."""
        return (self._arrival <= slot) & (slot < self._departure)

    def active_ids(self, slot: int) -> np.ndarray:
        """Sorted global ids of the VMs active during ``slot``."""
        return np.flatnonzero(self.active_mask(slot))

    def next_change(self, slot: int) -> int:
        """First slot after ``slot`` where membership or scale changes.

        Returns ``horizon_end`` when nothing changes any more — the
        caller can always use it as an exclusive window bound.
        """
        idx = int(np.searchsorted(self._change_slots, slot, side="right"))
        if idx >= self._change_slots.shape[0]:
            return self._end
        return int(self._change_slots[idx])

    def scale_at(
        self, slot: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Per-VM (cpu, mem) utilization scale factors active at ``slot``.

        ``None`` when the schedule carries no resize events at all — the
        engine then skips scaling entirely, keeping the zero-churn path
        bit-identical to the fixed-population engine.
        """
        if self._scale_snapshots is None:
            return None
        slots, snapshots = self._scale_snapshots
        idx = int(np.searchsorted(slots, slot, side="right")) - 1
        if idx < 0:
            n = self.n_vms
            return np.ones(n), np.ones(n)
        return snapshots[idx]

    def churn_in(self, lo: int, hi: int) -> Tuple[int, int]:
        """Arrivals and departures with slot in ``[lo, hi)``.

        The initial population (``arrival == horizon_start``) and VMs
        that never run are not counted as arrivals — churn is what
        happens *after* the horizon opens.
        """
        lives = self._departure > self._arrival
        arrivals = int(
            (
                lives
                & (self._arrival >= lo)
                & (self._arrival < hi)
                & (self._arrival > self._start)
            ).sum()
        )
        departures = int(
            (
                lives
                & (self._departure >= lo)
                & (self._departure < hi)
            ).sum()
        )
        return arrivals, departures


def fixed_schedule(
    n_vms: int, horizon_start: int, horizon_end: int
) -> LifecycleSchedule:
    """Zero-churn schedule: every VM active over the whole horizon."""
    if n_vms < 1:
        raise DomainError("n_vms must be >= 1")
    return LifecycleSchedule(
        arrival_slot=np.full(n_vms, horizon_start, dtype=np.int64),
        departure_slot=np.full(n_vms, horizon_end, dtype=np.int64),
        horizon_start=horizon_start,
        horizon_end=horizon_end,
    )


def _diurnal_rate_factor(slot: int, amplitude: float) -> float:
    """Arrival-rate modulation over the day (peak midday, trough 2am)."""
    if amplitude <= 0.0:
        return 1.0
    hour = slot % 24
    return 1.0 + amplitude * float(np.sin(2.0 * np.pi * (hour - 8.0) / 24.0))


def _draw_lifetime(
    rng: np.random.Generator, mean_slots: float, sigma: float
) -> int:
    """Heavy-tailed lognormal lifetime with the requested mean, >= 1."""
    mu = float(np.log(mean_slots)) - 0.5 * sigma * sigma
    return max(1, int(round(float(rng.lognormal(mu, sigma)))))


def generate_lifecycle(
    n_vms: int,
    horizon_start: int,
    horizon_end: int,
    config: Optional[ChurnConfig] = None,
    seed: int = 0,
) -> LifecycleSchedule:
    """Generate a deterministic churn schedule for a VM pool.

    The pool is consumed in VM-id order: ids ``[0, n_init)`` form the
    initial population and later arrivals take the next unused id, so a
    VM's trace row is fixed regardless of when it arrives.  VMs the
    arrival process never reaches stay inactive for the whole horizon
    (``arrival == departure``).

    Args:
        n_vms: VM pool size (must match the trace dataset).
        horizon_start: first simulated slot.
        horizon_end: one past the last simulated slot.
        config: churn knobs; defaults to :class:`ChurnConfig`.
        seed: PRNG seed; the same seed always yields the same schedule.
    """
    if n_vms < 1:
        raise DomainError("n_vms must be >= 1")
    if horizon_end <= horizon_start:
        raise DomainError("horizon must cover at least one slot")
    cfg = config if config is not None else ChurnConfig()
    rng = np.random.default_rng(seed)

    arrival = np.full(n_vms, horizon_end, dtype=np.int64)
    departure = np.full(n_vms, horizon_end, dtype=np.int64)

    def assign(vm: int, arrive_at: int) -> None:
        short = (
            cfg.short_lived_fraction > 0.0
            and float(rng.random()) < cfg.short_lived_fraction
        )
        mean = (
            cfg.short_lifetime_mean_slots
            if short
            else cfg.lifetime_mean_slots
        )
        lifetime = _draw_lifetime(rng, mean, cfg.lifetime_sigma)
        arrival[vm] = arrive_at
        departure[vm] = min(arrive_at + lifetime, horizon_end)

    n_init = int(round(cfg.initial_fraction * n_vms))
    next_vm = 0
    for vm in range(n_init):
        assign(vm, horizon_start)
        next_vm += 1

    rate = cfg.arrival_rate_frac * n_vms
    flash = {horizon_start + int(s) for s in cfg.flash_slots}
    for slot in range(horizon_start + 1, horizon_end):
        k = int(rng.poisson(rate * _diurnal_rate_factor(
            slot, cfg.arrival_diurnal_amplitude
        )))
        if slot in flash:
            k += cfg.flash_arrivals
        for _ in range(k):
            if next_vm >= n_vms:
                break
            assign(next_vm, slot)
            next_vm += 1

    events: List[Tuple[int, int, float, float]] = []
    if cfg.resize_rate_per_slot > 0.0:
        lo, hi = cfg.resize_range
        for vm in range(n_vms):
            span = int(departure[vm] - arrival[vm])
            if span < 2:
                continue
            n_events = int(rng.poisson(cfg.resize_rate_per_slot * span))
            if n_events == 0:
                continue
            slots = rng.integers(
                arrival[vm] + 1, departure[vm], size=n_events
            )
            factors = rng.uniform(lo, hi, size=(n_events, 2))
            for s, (fc, fm) in zip(slots, factors):
                events.append((vm, int(s), float(fc), float(fm)))

    return LifecycleSchedule(
        arrival_slot=arrival,
        departure_slot=departure,
        horizon_start=horizon_start,
        horizon_end=horizon_end,
        resize_events=events,
    )
