"""Temporal pattern primitives for the synthetic cluster traces.

The Google Cluster traces the paper uses exhibit three properties the
policies depend on:

* **daily periodicity** — the justification for ARIMA day-ahead forecasts;
* **CPU-load correlation across VMs** — groups of VMs (tiers of the same
  service) peak together, which is what correlation-aware allocation
  exploits;
* **abrupt changes** — occasional bursts/level shifts that defeat the
  predictor and cause the SLA violations of Fig. 4.

This module provides the corresponding signal primitives; the generator
composes them.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import SAMPLES_PER_DAY


def diurnal_profile(
    n_samples: int,
    peak_sample: float,
    sharpness: float = 2.0,
    samples_per_day: int = SAMPLES_PER_DAY,
) -> np.ndarray:
    """Smooth daily profile in ``[0, 1]`` peaking at ``peak_sample``.

    A raised-cosine shaped as ``((1 + cos(phase)) / 2) ** sharpness``:
    higher ``sharpness`` gives narrower business-hours-style peaks.

    Args:
        n_samples: length of the output.
        peak_sample: sample-of-day (0..samples_per_day) of the daily peak.
        sharpness: peak narrowness exponent (>= 0).
        samples_per_day: samples per 24 h period.
    """
    if n_samples < 0:
        raise ConfigurationError("n_samples must be non-negative")
    if sharpness < 0.0:
        raise ConfigurationError("sharpness must be non-negative")
    t = np.arange(n_samples)
    phase = 2.0 * np.pi * (t - peak_sample) / samples_per_day
    return ((1.0 + np.cos(phase)) / 2.0) ** sharpness


def weekly_modulation(
    n_samples: int,
    weekend_factor: float = 0.6,
    samples_per_day: int = SAMPLES_PER_DAY,
    week_start_day: int = 0,
) -> np.ndarray:
    """Multiplicative weekday/weekend envelope.

    Days 5 and 6 of each week (counting from ``week_start_day``) are scaled
    by ``weekend_factor`` — banking batch load drops on weekends.
    """
    if not (0.0 < weekend_factor <= 1.0):
        raise ConfigurationError("weekend factor must be in (0, 1]")
    t = np.arange(n_samples)
    day = (t // samples_per_day + week_start_day) % 7
    envelope = np.ones(n_samples)
    envelope[day >= 5] = weekend_factor
    return envelope


def ar1_noise(
    n_samples: int,
    rng: np.random.Generator,
    sigma: float,
    phi: float = 0.85,
) -> np.ndarray:
    """Zero-mean AR(1) noise with stationary standard deviation ``sigma``.

    ``x_t = phi * x_{t-1} + eps_t``; the innovation variance is chosen so
    the stationary process has the requested ``sigma``.
    """
    if sigma < 0.0:
        raise ConfigurationError("sigma must be non-negative")
    if not (-1.0 < phi < 1.0):
        raise ConfigurationError("phi must be in (-1, 1) for stationarity")
    if n_samples == 0:
        return np.zeros(0)
    from scipy.signal import lfilter

    innovation_sigma = sigma * np.sqrt(1.0 - phi * phi)
    eps = rng.normal(0.0, innovation_sigma, size=n_samples)
    eps[0] = rng.normal(0.0, sigma)
    # x_t = phi x_{t-1} + eps_t is an IIR filter with a = [1, -phi].
    return lfilter([1.0], [1.0, -phi], eps)


def burst_events(
    n_samples: int,
    rng: np.random.Generator,
    rate_per_day: float,
    min_duration: int = 6,
    max_duration: int = 36,
    samples_per_day: int = SAMPLES_PER_DAY,
) -> np.ndarray:
    """Additive burst mask in ``[0, 1]``: abrupt, unpredictable surges.

    Burst starts arrive as a Poisson process with ``rate_per_day`` events
    per day; each burst holds a random plateau (0.5-1.0 of full amplitude)
    for a random duration of 0.5-3 hours.  These are the "abrupt workload
    changes" that cause the mispredictions behind the paper's Fig. 4.
    """
    if rate_per_day < 0.0:
        raise ConfigurationError("rate must be non-negative")
    if not (1 <= min_duration <= max_duration):
        raise ConfigurationError("need 1 <= min_duration <= max_duration")
    mask = np.zeros(n_samples)
    if n_samples == 0 or rate_per_day == 0.0:
        return mask
    n_days = n_samples / samples_per_day
    n_events = rng.poisson(rate_per_day * n_days)
    for _ in range(n_events):
        start = int(rng.integers(0, n_samples))
        duration = int(rng.integers(min_duration, max_duration + 1))
        amplitude = rng.uniform(0.5, 1.0)
        end = min(n_samples, start + duration)
        mask[start:end] = np.maximum(mask[start:end], amplitude)
    return mask
