"""Physical units, conversions and time-grid constants.

The library works internally in a small set of canonical units:

====================  ======================================
quantity              canonical unit
====================  ======================================
frequency             GHz
voltage               V
power                 W
energy                J
time                  s
capacitance           nF (so that ``nF * V^2 * GHz`` gives W)
memory size           GB
utilization           percent of one server at ``Fmax``
====================  ======================================

The module also defines the discrete time grid used throughout the paper's
evaluation: samples every 5 minutes, allocation slots of 1 hour, and a
one-week horizon.
"""

from __future__ import annotations

from .errors import DomainError

# --------------------------------------------------------------------------
# Frequency conversions
# --------------------------------------------------------------------------

MHZ_PER_GHZ = 1000.0
HZ_PER_GHZ = 1.0e9


def ghz_to_mhz(freq_ghz: float) -> float:
    """Convert a frequency from GHz to MHz."""
    return freq_ghz * MHZ_PER_GHZ


def mhz_to_ghz(freq_mhz: float) -> float:
    """Convert a frequency from MHz to GHz."""
    return freq_mhz / MHZ_PER_GHZ


def ghz_to_hz(freq_ghz: float) -> float:
    """Convert a frequency from GHz to Hz."""
    return freq_ghz * HZ_PER_GHZ


# --------------------------------------------------------------------------
# Energy conversions
# --------------------------------------------------------------------------

JOULES_PER_MEGAJOULE = 1.0e6
PICOJOULES_PER_JOULE = 1.0e12


def joules_to_megajoules(energy_j: float) -> float:
    """Convert joules to megajoules (the unit of the paper's Fig. 6)."""
    return energy_j / JOULES_PER_MEGAJOULE


def picojoules_to_joules(energy_pj: float) -> float:
    """Convert picojoules (per-access energies) to joules."""
    return energy_pj / PICOJOULES_PER_JOULE


def watt_hours_to_joules(energy_wh: float) -> float:
    """Convert watt-hours to joules."""
    return energy_wh * 3600.0


# --------------------------------------------------------------------------
# Memory conversions
# --------------------------------------------------------------------------

MB_PER_GB = 1024.0
BYTES_PER_GB = 1024.0**3
MILLIWATTS_PER_WATT = 1000.0


def mb_to_gb(size_mb: float) -> float:
    """Convert mebibytes to gibibytes."""
    return size_mb / MB_PER_GB


def mw_to_w(power_mw: float) -> float:
    """Convert milliwatts to watts."""
    return power_mw / MILLIWATTS_PER_WATT


# --------------------------------------------------------------------------
# Evaluation time grid (Section V-B of the paper)
# --------------------------------------------------------------------------

SAMPLE_PERIOD_S = 300.0
"""Utilization sampling period: one sample every 5 minutes."""

SAMPLES_PER_SLOT = 12
"""Samples per allocation slot (slot T = 1 hour)."""

SLOT_PERIOD_S = SAMPLE_PERIOD_S * SAMPLES_PER_SLOT
"""Allocation slot length in seconds (3600 s)."""

SLOTS_PER_DAY = 24
"""Allocation slots per day."""

SAMPLES_PER_DAY = SAMPLES_PER_SLOT * SLOTS_PER_DAY
"""Utilization samples per day (288)."""

SLOTS_PER_WEEK = SLOTS_PER_DAY * 7
"""Allocation slots per week (168, the x-axis of Figs. 4-6)."""

SAMPLES_PER_WEEK = SAMPLES_PER_DAY * 7
"""Utilization samples per week (2016)."""


# --------------------------------------------------------------------------
# Percentage helpers
# --------------------------------------------------------------------------

FULL_UTILIZATION_PCT = 100.0
"""Aggregate utilization of a fully loaded server, in percent."""


def check_percentage(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a percentage in ``[0, 100]``.

    Returns the value unchanged so the function can be used inline.

    Raises:
        DomainError: if the value is outside ``[0, 100]`` or not finite.
    """
    if not (0.0 <= value <= FULL_UTILIZATION_PCT):
        raise DomainError(
            f"{name} must be a percentage in [0, 100], got {value!r}"
        )
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive.

    Returns the value unchanged so the function can be used inline.

    Raises:
        DomainError: if the value is not strictly positive.
    """
    if not value > 0.0:
        raise DomainError(f"{name} must be strictly positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is zero or positive.

    Returns the value unchanged so the function can be used inline.

    Raises:
        DomainError: if the value is negative.
    """
    if value < 0.0:
        raise DomainError(f"{name} must be non-negative, got {value!r}")
    return value
