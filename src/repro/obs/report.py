"""The ``repro-experiments report <run-dir>`` audit renderer.

Reads a run directory written by ``repro-experiments --out DIR``
(manifest, metrics snapshot, JSONL trace channels, per-experiment
summaries) and renders an energy-audit-style scored report:

* a provenance header from the manifest (git rev, config hash, seed,
  library versions) so every number is traceable to an exact run;
* scored comparison tables per experiment group — energy and SLA debt
  graded A+..F relative to the best policy of the same group
  (:func:`repro.dcsim.reporting.score_letter`);
* degradation tables (imputed samples, stale/blind windows, fault
  migrations) wherever a group actually degraded;
* a phase-time breakdown (forecast / policy / allocate / account) and
  counter/histogram summary from the metrics snapshot;
* per-pool attribution (mean active servers per fleet pool, from the
  allocation events) and the slowest sweep tasks (timing channel).

Every event in both JSONL channels is validated against
:data:`repro.obs.tracer.EVENT_SCHEMAS` first; a violation fails the
report with a non-zero exit code — CI runs this command against a
freshly traced smoke run, so schema drift cannot land silently.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from .manifest import MANIFEST_FILENAME, load_manifest
from .metrics import METRICS_FILENAME, load_metrics
from .tracer import (
    TIMING_FILENAME,
    TRACE_FILENAME,
    TraceSchemaError,
    iter_trace_file,
    validate_event,
)

SUMMARY_FILENAME = "summary.json"

#: SlaSummary keys that mark a leaf policy-summary dict.
_SUMMARY_MARKER = "total_energy_mj"

#: Degradation columns: (summary key, table header).
_DEGRADATION_COLS = (
    ("imputed_samples", "imputed smp."),
    ("stale_forecast_windows", "stale wins."),
    ("blind_windows", "blind wins."),
    ("collector_downtime_minutes", "coll. down-min"),
    ("shed_vm_minutes", "shed VM-min"),
    ("fault_migrations", "fault migr."),
    ("capped_samples", "capped smp."),
)


def _load_summary(run_dir) -> Optional[dict]:
    path = os.path.join(run_dir, SUMMARY_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _validate_channels(run_dir, out: List[str]) -> Tuple[list, list]:
    """Validate both JSONL channels; return their decoded events."""
    events: list = []
    timing: list = []
    for filename, channel, store in (
        (TRACE_FILENAME, "event", events),
        (TIMING_FILENAME, "timing", timing),
    ):
        path = os.path.join(run_dir, filename)
        if not os.path.exists(path):
            continue
        for event in iter_trace_file(path):
            validate_event(event, channel=channel)
            store.append(event)
        out.append(
            f"  {filename}: {len(store)} event(s), schema OK"
        )
    return events, timing


def _policy_groups(
    node, path: Tuple[str, ...] = ()
) -> List[Tuple[Tuple[str, ...], Dict[str, dict]]]:
    """Find ``{policy: summary-dict}`` groups anywhere in the summary.

    A group is a dict whose values are leaf summary dicts (identified
    by the :data:`_SUMMARY_MARKER` key) or failure markers; the path of
    dict keys above it labels the table.
    """
    if not isinstance(node, dict):
        return []
    values = [v for v in node.values() if isinstance(v, dict)]
    if values and all(
        _SUMMARY_MARKER in v or v.get("failed") for v in values
    ):
        return [(path, node)]
    groups = []
    for key, child in node.items():
        groups.extend(_policy_groups(child, path + (str(key),)))
    return groups


def _scored_group_tables(label: str, group: Dict[str, dict]) -> List[str]:
    """Scored energy/SLA table (plus degradation table) for one group."""
    from ..dcsim.reporting import format_table, score_letter

    lines = [f"-- {label}"]
    ok = {
        name: s
        for name, s in group.items()
        if isinstance(s, dict) and _SUMMARY_MARKER in s
    }
    failed = {
        name: s
        for name, s in group.items()
        if isinstance(s, dict) and s.get("failed")
    }
    if ok:
        energies = [s["total_energy_mj"] for s in ok.values()]
        debts = [s.get("shed_vm_minutes", 0.0) for s in ok.values()]
        finite_e = [e for e in energies if e == e]
        finite_d = [d for d in debts if d == d]
        best_e = min(finite_e) if finite_e else float("nan")
        best_d = min(finite_d) if finite_d else float("nan")
        rows = []
        for name, s in ok.items():
            debt = s.get("shed_vm_minutes", 0.0)
            rows.append(
                [
                    name,
                    f"{s['total_energy_mj']:.1f}",
                    score_letter(s["total_energy_mj"], best_e),
                    s["total_violations"],
                    f"{s['violation_rate']:.4f}",
                    f"{debt:.0f}",
                    score_letter(debt, best_d),
                    s["total_migrations"],
                    f"{s['mean_active_servers']:.1f}",
                ]
            )
        lines.append(
            format_table(
                [
                    "policy",
                    "energy (MJ)",
                    "grade",
                    "viol.",
                    "viol. rate",
                    "SLA debt (VM-min)",
                    "grade",
                    "migr.",
                    "servers",
                ],
                rows,
            )
        )
        degraded_cols = [
            (key, header)
            for key, header in _DEGRADATION_COLS
            if any(s.get(key, 0) for s in ok.values())
        ]
        if degraded_cols:
            rows = [
                [name]
                + [
                    (
                        f"{s.get(key, 0):.0f}"
                        if isinstance(s.get(key, 0), float)
                        else s.get(key, 0)
                    )
                    for key, _ in degraded_cols
                ]
                for name, s in ok.items()
            ]
            lines.append("degradation:")
            lines.append(
                format_table(
                    ["policy"] + [h for _, h in degraded_cols], rows
                )
            )
    for name, s in failed.items():
        lines.append(
            f"  FAILED {name} after {s.get('attempts', '?')} attempt(s) "
            f"in {s.get('elapsed_s', 0.0):.1f}s: {s.get('error', '?')}"
        )
    return lines


def _phase_section(metrics: dict) -> List[str]:
    from ..dcsim.reporting import format_table

    lines: List[str] = []
    phases = metrics.get("phases") or {}
    if phases:
        total = sum(p["total_s"] for p in phases.values())
        rows = [
            [
                name,
                p["calls"],
                f"{p['total_s']:.3f}",
                f"{(p['total_s'] / total * 100.0) if total else 0.0:.1f}%",
                f"{p.get('max_s', 0.0) * 1.0e3:.1f}",
            ]
            for name, p in phases.items()
        ]
        lines.append("phase-time breakdown:")
        lines.append(
            format_table(
                ["phase", "calls", "total (s)", "share", "max (ms)"],
                rows,
            )
        )
    counters = metrics.get("counters") or {}
    if counters:
        lines.append(
            "counters: "
            + ", ".join(f"{k}={v}" for k, v in counters.items())
        )
    for name, hist in (metrics.get("histograms") or {}).items():
        lines.append(
            f"histogram {name}: n={hist['count']} "
            f"mean={hist['mean']:.3f} min={hist['min']:.3f} "
            f"max={hist['max']:.3f}"
        )
    peak = metrics.get("peak_mem_bytes")
    if peak is not None:
        lines.append(f"peak traced memory: {peak / 1.0e6:.1f} MB")
    return lines


def _pool_attribution(events: list) -> List[str]:
    """Mean active servers per fleet pool, per traced policy run."""
    from ..dcsim.reporting import format_table

    per_policy: Dict[str, List[List[int]]] = {}
    current = "?"
    for event in events:
        kind = event["event"]
        if kind == "run_start":
            current = event.get("policy", "?")
        elif kind == "allocation_window" and "pool_active" in event:
            per_policy.setdefault(current, []).append(
                event["pool_active"]
            )
    if not per_policy:
        return []
    n_pools = max(
        len(sample) for rows in per_policy.values() for sample in rows
    )
    rows = []
    for policy, samples in per_policy.items():
        means = [0.0] * n_pools
        for sample in samples:
            for i, value in enumerate(sample):
                means[i] += value
        rows.append(
            [policy]
            + [f"{m / len(samples):.1f}" for m in means]
            + [len(samples)]
        )
    headers = (
        ["policy"]
        + [f"pool {i} (mean srv)" for i in range(n_pools)]
        + ["windows"]
    )
    return [
        "per-pool attribution (mean active servers per window):",
        format_table(headers, rows),
    ]


def _task_section(timing: list, top: int = 15) -> List[str]:
    from ..dcsim.reporting import format_table

    tasks = [e for e in timing if e["event"] == "task_time"]
    if not tasks:
        return []
    tasks.sort(key=lambda e: -e["elapsed_s"])
    rows = [
        [
            e["key"],
            f"{e['elapsed_s']:.2f}",
            e.get("attempts", 1),
            "yes" if e.get("failed") else "",
        ]
        for e in tasks[:top]
    ]
    lines = [f"slowest sweep tasks (top {min(top, len(tasks))}):"]
    lines.append(
        format_table(["task", "elapsed (s)", "attempts", "failed"], rows)
    )
    return lines


def render_report(run_dir) -> str:
    """Render the audit report for one run directory.

    Raises:
        TraceSchemaError: a trace file exists but contains an invalid
            or unknown event (the CLI turns this into exit code 1).
        FileNotFoundError: the directory does not exist.
    """
    if not os.path.isdir(run_dir):
        raise FileNotFoundError(f"run directory not found: {run_dir}")
    lines: List[str] = [f"audit report: {run_dir}", "=" * 72]

    manifest = load_manifest(run_dir)
    if manifest is not None:
        config = manifest.get("config", {})
        lines.append(
            f"rev {manifest.get('git_rev', '?')} · config "
            f"{manifest.get('config_hash', '?')} · seed "
            f"{manifest.get('seed', '?')} · python "
            f"{manifest.get('python', '?')} · numpy "
            f"{manifest.get('numpy', '?')}"
        )
        lines.append(
            f"created {manifest.get('created_utc', '?')} · experiments: "
            f"{', '.join(config.get('experiments', []) or ['?'])}"
            + (" · full scale" if config.get("full") else " · quick scale")
        )
    else:
        lines.append(f"(no {MANIFEST_FILENAME}: provenance unknown)")

    lines.append("")
    lines.append("trace validation:")
    events, timing = _validate_channels(run_dir, lines)
    if events:
        counts: Dict[str, int] = {}
        for event in events:
            counts[event["event"]] = counts.get(event["event"], 0) + 1
        lines.append(
            "  event mix: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )

    summary = _load_summary(run_dir)
    if summary:
        for name, node in summary.items():
            groups = _policy_groups(node)
            if not groups:
                continue
            lines.append("")
            lines.append(f"experiment {name}:")
            for path, group in groups:
                label = " / ".join(path) if path else name
                lines.extend(_scored_group_tables(label, group))

    metrics = load_metrics(os.path.join(run_dir, METRICS_FILENAME))
    if metrics:
        section = _phase_section(metrics)
        if section:
            lines.append("")
            lines.extend(section)

    pool_lines = _pool_attribution(events)
    if pool_lines:
        lines.append("")
        lines.extend(pool_lines)

    task_lines = _task_section(timing)
    if task_lines:
        lines.append("")
        lines.extend(task_lines)

    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for ``repro-experiments report``."""
    args = list(sys.argv[1:]) if argv is None else list(argv)
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(
            "usage: repro-experiments report <run-dir>\n\n"
            "Render a scored audit report from a run directory written "
            "by `repro-experiments --out DIR` (validates every traced "
            "event against its schema; exits 1 on violation).",
            file=sys.stderr,
        )
        return 0 if args and args[0] in ("-h", "--help") else 2
    try:
        print(render_report(args[0]))
    except (TraceSchemaError, FileNotFoundError) as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
