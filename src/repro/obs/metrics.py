"""Counter/gauge/histogram registry and perf_counter phase timers.

The registry answers "where did the time go and how much work was
done": counters accumulate event counts (windows allocated, migrations
counted, polls retried), gauges record last-seen values, histograms
keep streaming summary statistics (count/sum/min/max) without storing
samples, and :meth:`MetricsRegistry.phase` times named phases
(``forecast`` / ``allocate`` / ``account`` / ``policy``) with
``time.perf_counter``.

Like the tracer, the default everywhere is a no-op
(:data:`NULL_METRICS`) and registries only observe — simulation
outputs are bit-identical with metrics on or off.  All wall-clock
readings live here or on the timing channel, never in the
deterministic event stream.

``tracemalloc`` peak capture is opt-in (:meth:`start_memory_capture`)
because tracing allocations costs real time; when enabled the snapshot
gains a ``peak_mem_bytes`` entry.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from typing import Dict, Optional

#: Phase names the engines use; others are allowed (the registry is
#: generic) but these are the documented breakdown.
PHASES = ("forecast", "allocate", "account", "policy")

METRICS_FILENAME = "metrics.json"


class _PhaseStat:
    __slots__ = ("calls", "total_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed


class _HistStat:
    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class _NullPhase:
    """Shared do-nothing context manager (cheaper than a generator)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _PhaseTimer:
    """Reusable ``with`` timer bound to one :class:`_PhaseStat`.

    One instance per phase name, cached by the registry, so the hot
    loop pays two ``perf_counter`` calls and an attribute store per
    window instead of a fresh generator frame.  Not re-entrant with
    itself (nesting a phase inside the same phase double-counts).
    """

    __slots__ = ("_stat", "_start")

    def __init__(self, stat: _PhaseStat) -> None:
        self._stat = stat
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._stat.add(time.perf_counter() - self._start)
        return False


class NullMetrics:
    """No-op registry: the default of every instrumented constructor."""

    enabled = False

    def counter(self, name: str, amount: int = 1) -> None:
        """Discard a count."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge reading."""

    def histogram(self, name: str, value: float) -> None:
        """Discard a sample."""

    def phase(self, name: str) -> _NullPhase:
        """Time nothing."""
        return _NULL_PHASE

    def start_memory_capture(self) -> None:
        """Capture nothing."""

    def snapshot(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}, "phases": {}}

    def write(self, path) -> None:
        """Write nothing."""


#: Shared no-op registry.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Accumulates counters, gauges, histograms and phase timings.

    A registry may be shared across several simulation runs (e.g. all
    policies of one experiment); phase times then aggregate across
    runs, which is what the report's phase-breakdown table wants.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, _HistStat] = {}
        self._phases: Dict[str, _PhaseStat] = {}
        self._timers: Dict[str, _PhaseTimer] = {}
        self._mem_capture = False
        self._peak_mem = 0

    # -- accumulation --------------------------------------------------

    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a named counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Record the last-seen value of a named gauge."""
        self._gauges[name] = float(value)

    def histogram(self, name: str, value: float) -> None:
        """Add one sample to a streaming histogram summary."""
        stat = self._hists.get(name)
        if stat is None:
            stat = self._hists[name] = _HistStat()
        stat.add(float(value))

    def phase(self, name: str) -> _PhaseTimer:
        """A ``with`` timer for a named phase (``perf_counter``).

        Timers are cached per name, so this is cheap to call per
        window.  Nested different-named phases both count; don't nest
        a phase inside itself.
        """
        timer = self._timers.get(name)
        if timer is None:
            stat = self._phases.get(name)
            if stat is None:
                stat = self._phases[name] = _PhaseStat()
            timer = self._timers[name] = _PhaseTimer(stat)
        return timer

    # -- memory --------------------------------------------------------

    def start_memory_capture(self) -> None:
        """Begin tracemalloc peak tracking (idempotent, opt-in)."""
        if not self._mem_capture:
            self._mem_capture = True
            if not tracemalloc.is_tracing():
                tracemalloc.start()

    def _read_peak(self) -> None:
        if self._mem_capture and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if peak > self._peak_mem:
                self._peak_mem = peak

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable view of everything accumulated so far."""
        self._read_peak()
        out = {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: stat.as_dict()
                for name, stat in sorted(self._hists.items())
            },
            "phases": {
                name: {
                    "calls": stat.calls,
                    "total_s": stat.total_s,
                    "max_s": stat.max_s,
                }
                for name, stat in sorted(self._phases.items())
            },
        }
        if self._mem_capture:
            out["peak_mem_bytes"] = self._peak_mem
        return out

    def write(self, path) -> None:
        """Write the snapshot as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def emit_timing(self, tracer) -> None:
        """Mirror accumulated phase times onto a tracer's timing
        channel (one ``phase_time`` event per phase)."""
        if not getattr(tracer, "enabled", False):
            return
        for name, stat in sorted(self._phases.items()):
            tracer.timing(
                "phase_time",
                phase=name,
                calls=stat.calls,
                total_s=stat.total_s,
                max_s=stat.max_s,
            )


def load_metrics(path) -> Optional[dict]:
    """Read a metrics snapshot JSON; ``None`` if absent."""
    import os

    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
