"""Run manifests: enough provenance to reproduce a run directory.

A manifest records the command-equivalent configuration (experiment
names, seed, sweep sizes), a stable hash of that configuration, the
git revision the code ran at, and the library versions that shaped the
numerics.  It is written as ``manifest.json`` alongside every
``repro-experiments --out`` run, and the ``report`` command leads with
it so any audit table is traceable to an exact (rev, config, seed).

Wall-clock creation time is recorded (a manifest is provenance, not a
determinism artifact) but kept out of the config hash, so the hash of
"the same run" is stable across days.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from hashlib import sha256
from typing import Optional

MANIFEST_FILENAME = "manifest.json"

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


def config_hash(config: dict) -> str:
    """A short stable hash of a JSON-serializable config dict.

    Canonical JSON (sorted keys, compact separators) in, first 12 hex
    chars of SHA-256 out — enough to compare runs, short enough to
    read aloud.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_rev() -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def build_manifest(config: dict, seed: Optional[int] = None) -> dict:
    """Assemble a manifest for one run.

    Args:
        config: the JSON-serializable run configuration (experiment
            names, flags, sweep sizes...).  Hashed canonically.
        seed: the run's base seed, surfaced top-level next to the
            hash because it is the first thing a reproducer needs.
    """
    import numpy

    return {
        "manifest_version": MANIFEST_VERSION,
        "config": config,
        "config_hash": config_hash(config),
        "seed": seed,
        "git_rev": git_rev(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "created_utc": datetime.now(timezone.utc).isoformat(),
    }


def write_manifest(run_dir, config: dict, seed: Optional[int] = None) -> dict:
    """Build and write ``manifest.json`` into a run directory."""
    os.makedirs(run_dir, exist_ok=True)
    manifest = build_manifest(config, seed=seed)
    path = os.path.join(run_dir, MANIFEST_FILENAME)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def load_manifest(run_dir) -> Optional[dict]:
    """Read ``manifest.json`` from a run directory; ``None`` if absent."""
    path = os.path.join(run_dir, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
