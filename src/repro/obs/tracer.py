"""Structured run tracing: JSONL event streams with a null default.

A tracer answers "how did this run get its answer": every allocation
window, fault transition, telemetry degradation, forecast-ladder rung
choice, checkpoint write and sweep-task outcome becomes one structured
JSON event.  Two channels keep the house determinism rule honest:

* the **event channel** (``trace.jsonl``) carries only deterministic
  fields — slot indices, counts, policy/case names, seeded schedule
  facts.  Two same-seed runs must produce byte-identical event
  streams, which the observability test-suite asserts via
  :meth:`RunTracer.event_bytes`.
* the **timing channel** (``timing.jsonl``) quarantines everything
  wall-clock (per-task elapsed seconds, retry delays).  It is excluded
  from determinism comparisons by construction.

The default tracer everywhere is the no-op :data:`NULL_TRACER`:
simulations constructed without an explicit tracer pay one attribute
read per would-be event (the ``enabled`` flag) and nothing else, and
results are bit-identical with tracing on or off because tracers only
ever observe.

Every event type has a schema in :data:`EVENT_SCHEMAS`;
:func:`validate_event` checks a decoded event against it (pure
Python — no external JSON-schema dependency), and
:func:`validate_trace_file` walks a whole JSONL file.  The ``report``
command refuses run directories whose traces do not validate.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List

from ..errors import ConfigurationError

TRACE_FILENAME = "trace.jsonl"
TIMING_FILENAME = "timing.jsonl"

_NUMBER = {"type": "number"}
_INT = {"type": "integer"}
_STR = {"type": "string"}
_BOOL = {"type": "boolean"}
_INT_ARRAY = {"type": "array", "items": "integer"}

#: Per-event-type schemas.  ``fields`` maps every allowed field to a
#: type spec (``type`` one of integer/number/string/boolean/array,
#: optional ``enum``); ``required`` lists the fields that must be
#: present.  ``seq`` (monotonic per channel) and ``event`` (the type
#: tag) are implicit on every event.
EVENT_SCHEMAS: Dict[str, dict] = {
    "run_start": {
        "doc": "A simulation run begins (one per engine run).",
        "fields": {
            "policy": _STR,
            "engine": {
                "type": "string",
                "enum": ["fixed", "cloud", "streaming"],
            },
            "start_slot": _INT,
            "n_slots": _INT,
            "n_servers": _INT,
            "n_vms": _INT,
            "n_pools": _INT,
        },
        "required": ["policy", "engine", "start_slot", "n_slots"],
    },
    "run_end": {
        "doc": "A simulation run finished; whole-horizon aggregates.",
        "fields": {
            "policy": _STR,
            "n_records": _INT,
            "energy_mj": _NUMBER,
            "violations": _INT,
            "migrations": _INT,
        },
        "required": ["policy", "n_records", "energy_mj", "violations"],
    },
    "allocation_window": {
        "doc": "One allocation window: placement shape and churn.",
        "fields": {
            "slot": _INT,
            "n_window": _INT,
            "case": _STR,
            "n_servers": _INT,
            "active_servers": _INT,
            "migrations": _INT,
            "fault_migrations": _INT,
            "forced_placements": _INT,
            "shed_vms": _INT,
            "n_active_vms": _INT,
            "arrivals": _INT,
            "departures": _INT,
            "pool_active": _INT_ARRAY,
        },
        "required": [
            "slot",
            "n_window",
            "n_servers",
            "active_servers",
            "migrations",
        ],
    },
    "fault_event": {
        "doc": "One seeded fault-schedule entry (run preamble).",
        "fields": {
            "kind": {"type": "string", "enum": ["outage", "cap"]},
            "start_slot": _INT,
            "end_slot": _INT,
            "n_servers": _INT,
            "cap_frac": _NUMBER,
        },
        "required": ["kind", "start_slot", "end_slot"],
    },
    "fault_transition": {
        "doc": "The fault state changed at a window boundary.",
        "fields": {
            "slot": _INT,
            "n_failed": _INT,
            "cap_frac": _NUMBER,
            "available_servers": _INT,
        },
        "required": ["slot", "n_failed", "cap_frac"],
    },
    "telemetry_window": {
        "doc": "Degraded-telemetry state behind one window decision.",
        "fields": {
            "slot": _INT,
            "rung": {
                "type": "string",
                "enum": [
                    "fresh",
                    "stale",
                    "persistence",
                    "reactive-only",
                ],
            },
            "imputed_samples": _INT,
            "collectors_down": _INT,
            "blind": _BOOL,
        },
        "required": ["slot", "rung", "imputed_samples"],
    },
    "ladder_rung": {
        "doc": "The forecast ladder chose a rung for one day.",
        "fields": {
            "day": _INT,
            "rung": {
                "type": "string",
                "enum": ["fresh", "stale", "persistence"],
            },
        },
        "required": ["day", "rung"],
    },
    "poll_retry": {
        "doc": "A collector poll failed and was retried (or gave up).",
        "fields": {
            "collector": _INT,
            "slot": _INT,
            "attempt": _INT,
            "gave_up": _BOOL,
        },
        "required": ["collector", "slot", "attempt", "gave_up"],
    },
    "checkpoint": {
        "doc": "A streaming checkpoint was snapshot (and maybe written).",
        "fields": {
            "slot": _INT,
            "n_records": _INT,
            "persisted": _BOOL,
        },
        "required": ["slot", "n_records", "persisted"],
    },
    # -- operator decision stream (repro.serve) ------------------------
    "decision_placement": {
        "doc": "The service loop committed one window's placement.",
        "fields": {
            "slot": _INT,
            "n_window": _INT,
            "case": _STR,
            "n_active_vms": _INT,
            "active_servers": _INT,
            "forced_placements": _INT,
            "arrivals": _INT,
            "departures": _INT,
            "blind": _BOOL,
            "checkpointed": _BOOL,
        },
        "required": ["slot", "n_window", "case", "active_servers"],
    },
    "decision_migration": {
        "doc": "A window's placement moved VMs off their servers.",
        "fields": {
            "slot": _INT,
            "migrations": _INT,
        },
        "required": ["slot", "migrations"],
    },
    "decision_rung": {
        "doc": "The forecast rung a window's decision planned from.",
        "fields": {
            "slot": _INT,
            "rung": {
                "type": "string",
                "enum": [
                    "fresh",
                    "stale",
                    "persistence",
                    "reactive-only",
                ],
            },
            "stale": _BOOL,
            "imputed_samples": _INT,
            "collectors_down": _INT,
        },
        "required": ["slot", "rung"],
    },
    "decision_sla": {
        "doc": "A window's accounted SLA debt and energy cost.",
        "fields": {
            "slot": _INT,
            "violations": _INT,
            "energy_j": _NUMBER,
        },
        "required": ["slot", "violations", "energy_j"],
    },
    "shard_window": {
        "doc": "One sharded allocation window: shard shapes and budgets.",
        "fields": {
            "n_shards": _INT,
            "n_vms": _INT,
            "shard_sizes": _INT_ARRAY,
            "server_budgets": _INT_ARRAY,
            "forced": _INT,
        },
        "required": ["n_shards", "n_vms", "shard_sizes"],
    },
    "region_route": {
        "doc": "The geo router assigned one region its VM share.",
        "fields": {
            "region": _STR,
            "n_vms": _INT,
            "n_servers": _INT,
            "seed": _INT,
            "weight": _NUMBER,
        },
        "required": ["region", "n_vms", "n_servers"],
    },
    "experiment_start": {
        "doc": "The CLI began one experiment.",
        "fields": {"name": _STR, "full": _BOOL, "jobs": _INT},
        "required": ["name"],
    },
    "experiment_end": {
        "doc": "The CLI finished one experiment.",
        "fields": {"name": _STR, "failures": _INT},
        "required": ["name", "failures"],
    },
    "task_start": {
        "doc": "A sweep task was submitted to the process pool.",
        "fields": {"key": _STR},
        "required": ["key"],
    },
    "task_done": {
        "doc": "A sweep task returned a result.",
        "fields": {"key": _STR, "retried": _BOOL},
        "required": ["key"],
    },
    "task_retry": {
        "doc": "A sweep task failed once; retrying in a fresh pool.",
        "fields": {"key": _STR, "error": _STR},
        "required": ["key", "error"],
    },
    "task_failed": {
        "doc": "A sweep task failed after its retry (FailedRun).",
        "fields": {"key": _STR, "error": _STR, "attempts": _INT},
        "required": ["key", "error", "attempts"],
    },
    # -- timing channel only ------------------------------------------
    "phase_time": {
        "doc": "Accumulated wall time of one profiled phase.",
        "fields": {
            "phase": _STR,
            "calls": _INT,
            "total_s": _NUMBER,
            "max_s": _NUMBER,
        },
        "required": ["phase", "calls", "total_s"],
    },
    "task_time": {
        "doc": "Wall-clock cost of one sweep task (includes queueing "
        "for failed attempts).",
        "fields": {
            "key": _STR,
            "elapsed_s": _NUMBER,
            "attempts": _INT,
            "failed": _BOOL,
        },
        "required": ["key", "elapsed_s"],
    },
}

#: Event types that may only appear on the timing channel (they carry
#: wall-clock fields and would break event-stream determinism).
TIMING_ONLY_EVENTS = frozenset({"phase_time", "task_time"})

_TYPE_CHECKS = {
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "array": lambda v: isinstance(v, list),
}


class TraceSchemaError(ConfigurationError):
    """An emitted or decoded event does not match its schema."""


def validate_event(event: dict, channel: str = "event") -> None:
    """Check one decoded event against :data:`EVENT_SCHEMAS`.

    Args:
        event: the decoded JSON object.
        channel: ``"event"`` or ``"timing"`` — timing-only event types
            are rejected on the event channel and vice versa.

    Raises:
        TraceSchemaError: on an unknown type, a missing required
            field, a field of the wrong type, an enum violation, or an
            undeclared field.
    """
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be an object, got {event!r}")
    kind = event.get("event")
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        raise TraceSchemaError(f"unknown event type {kind!r}")
    if channel == "event" and kind in TIMING_ONLY_EVENTS:
        raise TraceSchemaError(
            f"{kind!r} carries wall-clock data and belongs on the "
            f"timing channel, not the event channel"
        )
    if channel == "timing" and kind not in TIMING_ONLY_EVENTS:
        raise TraceSchemaError(
            f"{kind!r} is an event-channel type, found on timing channel"
        )
    seq = event.get("seq")
    if not _TYPE_CHECKS["integer"](seq) or seq < 0:
        raise TraceSchemaError(f"{kind}: seq must be a non-negative int")
    fields = schema["fields"]
    for name in schema["required"]:
        if name not in event:
            raise TraceSchemaError(f"{kind}: missing required field {name!r}")
    for name, value in event.items():
        if name in ("seq", "event"):
            continue
        spec = fields.get(name)
        if spec is None:
            raise TraceSchemaError(f"{kind}: undeclared field {name!r}")
        if not _TYPE_CHECKS[spec["type"]](value):
            raise TraceSchemaError(
                f"{kind}: field {name!r} must be {spec['type']}, "
                f"got {value!r}"
            )
        if spec["type"] == "array":
            item_check = _TYPE_CHECKS[spec.get("items", "integer")]
            if not all(item_check(item) for item in value):
                raise TraceSchemaError(
                    f"{kind}: array field {name!r} has items of the "
                    f"wrong type: {value!r}"
                )
        enum = spec.get("enum")
        if enum is not None and value not in enum:
            raise TraceSchemaError(
                f"{kind}: field {name!r} must be one of {enum}, "
                f"got {value!r}"
            )


def iter_trace_file(path) -> Iterator[dict]:
    """Yield decoded events from a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc


def validate_trace_file(path, channel: str = "event") -> int:
    """Validate every event in a JSONL file; return the event count."""
    count = 0
    for event in iter_trace_file(path):
        validate_event(event, channel=channel)
        count += 1
    return count


def _coerce(value):
    """Make a field JSON-serializable (NumPy scalars/arrays included)."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 0) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    raise TraceSchemaError(
        f"field value {value!r} ({type(value).__name__}) is not "
        f"JSON-serializable"
    )


class NullTracer:
    """The zero-overhead default: every emit is a no-op.

    Hot loops should guard event assembly on :attr:`enabled` so a
    run without tracing never even builds the field dict.
    """

    enabled = False

    def emit(self, event: str, **fields) -> None:
        """Discard an event."""

    def timing(self, event: str, **fields) -> None:
        """Discard a timing event."""

    def close(self) -> None:
        """Nothing to flush."""

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Shared no-op tracer; the default of every instrumented constructor.
NULL_TRACER = NullTracer()


class RunTracer:
    """Collects structured events, optionally streaming them to JSONL.

    Events are kept in memory (:attr:`events` / :attr:`timing_events`)
    and, when paths are given, appended line-by-line to the trace
    files.  Serialization is canonical (sorted keys, no whitespace),
    so identical event streams are identical bytes.

    Args:
        trace_path: event-channel JSONL path (``None`` = memory only).
        timing_path: timing-channel JSONL path (``None`` = memory only).
        validate: check every event against its schema at emit time
            (on by default — emitting is rare enough that the check is
            free insurance against schema drift).
    """

    enabled = True

    def __init__(
        self,
        trace_path=None,
        timing_path=None,
        validate: bool = True,
    ) -> None:
        self.events: List[dict] = []
        self.timing_events: List[dict] = []
        self._validate = validate
        self._seq = 0
        self._timing_seq = 0
        self._trace_fh = (
            open(trace_path, "w", encoding="utf-8")
            if trace_path is not None
            else None
        )
        self._timing_fh = (
            open(timing_path, "w", encoding="utf-8")
            if timing_path is not None
            else None
        )

    @classmethod
    def for_run_dir(cls, run_dir, validate: bool = True) -> "RunTracer":
        """A tracer writing ``trace.jsonl`` + ``timing.jsonl`` in a dir."""
        os.makedirs(run_dir, exist_ok=True)
        return cls(
            trace_path=os.path.join(run_dir, TRACE_FILENAME),
            timing_path=os.path.join(run_dir, TIMING_FILENAME),
            validate=validate,
        )

    # -- emission ------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Record one deterministic event on the event channel."""
        record = {"seq": self._seq, "event": event}
        for name, value in fields.items():
            record[name] = _coerce(value)
        if self._validate:
            validate_event(record, channel="event")
        self._seq += 1
        self.events.append(record)
        if self._trace_fh is not None:
            self._trace_fh.write(_dumps(record) + "\n")

    def timing(self, event: str, **fields) -> None:
        """Record one wall-clock event on the timing channel."""
        record = {"seq": self._timing_seq, "event": event}
        for name, value in fields.items():
            record[name] = _coerce(value)
        if self._validate:
            validate_event(record, channel="timing")
        self._timing_seq += 1
        self.timing_events.append(record)
        if self._timing_fh is not None:
            self._timing_fh.write(_dumps(record) + "\n")

    # -- inspection ----------------------------------------------------

    def event_bytes(self) -> bytes:
        """Canonical serialization of the event channel.

        The determinism witness: two same-seed runs must produce equal
        ``event_bytes()`` (the timing channel is deliberately absent).
        """
        return b"\n".join(
            _dumps(event).encode("utf-8") for event in self.events
        )

    def of_type(self, event: str) -> List[dict]:
        """All event-channel events of one type, in emission order."""
        return [e for e in self.events if e["event"] == event]

    def close(self) -> None:
        """Flush and close the JSONL files (idempotent)."""
        for fh in (self._trace_fh, self._timing_fh):
            if fh is not None and not fh.closed:
                fh.close()

    def __enter__(self) -> "RunTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _dumps(record: dict) -> str:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
