"""Observability: structured tracing, metrics, manifests, audit reports.

The package answers "how did this run get its answer" without ever
changing the answer: tracers and metric registries only observe, the
no-op defaults (:data:`NULL_TRACER`, :data:`NULL_METRICS`) cost one
attribute read per would-be event, and every wall-clock quantity lives
on a separate timing channel so deterministic event streams stay
byte-identical across same-seed runs.

Submodules:

* :mod:`~repro.obs.tracer` — :class:`RunTracer` / :class:`NullTracer`,
  JSONL channels, event schemas and validation;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` /
  :class:`NullMetrics`, phase timers, tracemalloc peak capture;
* :mod:`~repro.obs.manifest` — run manifests (seed, config hash, git
  rev, library versions);
* :mod:`~repro.obs.report` — the ``repro-experiments report`` renderer
  (imported lazily by the CLI; not re-exported here because it pulls
  in :mod:`repro.dcsim`, which itself imports this package).
"""

from .manifest import (
    MANIFEST_FILENAME,
    build_manifest,
    config_hash,
    load_manifest,
    write_manifest,
)
from .metrics import (
    METRICS_FILENAME,
    PHASES,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    load_metrics,
)
from .tracer import (
    EVENT_SCHEMAS,
    NULL_TRACER,
    NullTracer,
    RunTracer,
    TIMING_FILENAME,
    TRACE_FILENAME,
    TraceSchemaError,
    iter_trace_file,
    validate_event,
    validate_trace_file,
)

__all__ = [
    "EVENT_SCHEMAS",
    "MANIFEST_FILENAME",
    "METRICS_FILENAME",
    "NULL_METRICS",
    "NULL_TRACER",
    "PHASES",
    "TIMING_FILENAME",
    "TRACE_FILENAME",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "RunTracer",
    "TraceSchemaError",
    "build_manifest",
    "config_hash",
    "iter_trace_file",
    "load_manifest",
    "load_metrics",
    "validate_event",
    "validate_trace_file",
    "write_manifest",
]
