"""Incremental day-ahead forecasting: sliding-window Hannan-Rissanen.

The batched forecaster (:mod:`repro.forecast.batch`, PR 2) assembles
both Hannan-Rissanen regressions from shared lag statistics, so a
day's full re-fit decomposes into clearly priced stages: the
exponentially weighted seasonal profiles (two cheap reductions), the
**long-AR innovation stage** — ``max(m, p) + 1`` whole-window lag
autocorrelations, a batched ``(1+m)``-dimensional eigen-tested solve,
and the AR(m) filter pass — and the small final ARMA solve.  The long-
AR stage exists only to *estimate innovations*; its coefficients move
slowly as the window slides one day.  :class:`IncrementalDayAheadForecaster`
therefore freezes exactly that stage across an epoch of consecutive
days and re-derives everything else fresh:

* seasonal profiles and the remainder matrix are recomputed exactly as
  the oracle computes them (same reductions, bit-identical values);
* the frozen AR(m) coefficients filter the refreshed remainder into
  innovation estimates (one vectorized pass, no re-estimation);
* only the ``p + 1`` lag autocorrelations the final ARMA stage reads
  are formed — not the ``max(m, p) + 1`` the long-AR stage would need
  — and the small ``(1+p+q)``-dimensional normal equations are
  re-solved from them through the shared
  :func:`~repro.forecast.batch._ar_normal_equations` /
  :func:`~repro.forecast.batch._extend_with_innovations` /
  :func:`~repro.forecast.batch._solve_normal` helpers;
* the companion-matrix evaluator
  (:func:`~repro.forecast.batch.batched_arma_forecast`) is reused for
  every re-forecast.

Epochs and the oracle
---------------------

An *epoch* is up to ``refit_every_days`` consecutive forecast days.
The epoch start is a full fit — operation-for-operation the batched
:class:`~repro.forecast.predictor.DayAheadPredictor` path, and
bit-identical to it whenever the batched solver accepts every row —
which *is* the house-convention oracle, kept callable as
:meth:`~IncrementalDayAheadForecaster.oracle_forecast_day` (and as
``refit_every_days=1``, which degenerates to a daily full re-fit).
Within an epoch the frozen innovation filter is the **only**
approximation versus the oracle; the tolerance is asserted in
``tests/test_serve_equivalence.py``.  A non-consecutive day request
(the forecast ladder skipped a day on a stale or persistence rung) or
an epoch reaching ``refit_every_days`` starts a fresh epoch, so the
approximation cannot accumulate.  Rows the incremental solve
rank-rejects carry the previous day's coefficients; rows the *full*
fit rejects degrade to the seasonal profile — both counted in
``fallback_count``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ConfigurationError, DomainError, ForecastError
from ..forecast.batch import (
    BatchArmaFit,
    _ar_normal_equations,
    _extend_with_innovations,
    _solve_normal,
    batched_arma_forecast,
)
from ..forecast.decomposed import DecomposedArimaForecaster
from ..forecast.predictor import ForecasterFactory, default_forecaster_factory
from ..traces.dataset import TraceDataset
from ..units import SAMPLES_PER_DAY, SAMPLES_PER_SLOT, SLOTS_PER_DAY

# Constant-series collapse rule, identical to batched_arma_fit (numpy's
# default rtol/atol spelt out).
_CONST_RTOL = 1.0e-5
_CONST_ATOL = 1.0e-8


def _day_type(day: int) -> int:
    """Weekday (0) / weekend (1) label, the predictor's 7-day rule."""
    return 1 if day % 7 >= 5 else 0


class _Epoch:
    """Frozen long-AR stage plus the previous day's accepted ARMA fit."""

    __slots__ = ("day", "age", "c1", "a1", "const", "ar", "ma")

    def __init__(
        self,
        day: int,
        age: int,
        c1: np.ndarray,
        a1: np.ndarray,
        const: np.ndarray,
        ar: np.ndarray,
        ma: np.ndarray,
    ) -> None:
        self.day = day
        self.age = age
        self.c1 = c1
        self.a1 = a1
        self.const = const
        self.ar = ar
        self.ma = ma


class IncrementalDayAheadForecaster:
    """Sliding-window day-ahead forecasts, interface-compatible with
    :class:`~repro.forecast.predictor.DayAheadPredictor`.

    Args:
        dataset: the utilization traces (for the streaming engine, the
            ingest layer's imputed ``observed_dataset`` — reads see the
            stream's current best knowledge).
        history_days: trailing training window in days (>= 2).
        factory: forecaster factory; must produce a
            :class:`~repro.forecast.decomposed.DecomposedArimaForecaster`
            with ``d == 0`` and a one-day period — the incremental
            update is derived for exactly that model family.
        clip_range: forecasts are clipped into this range.
        refit_every_days: epoch length — a full (oracle) re-fit runs
            every this many consecutive days (>= 1; 1 disables the
            incremental path entirely).

    Raises:
        DomainError: for a too-short history window (message matches
            :class:`~repro.forecast.predictor.DayAheadPredictor`).
        ConfigurationError: for an unsupported model family or a bad
            ``refit_every_days``.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        history_days: int = 7,
        factory: Optional[ForecasterFactory] = None,
        clip_range: Tuple[float, float] = (0.0, 100.0),
        refit_every_days: int = 7,
    ):
        if history_days < 2:
            raise DomainError("history_days must be >= 2 (seasonal fit)")
        if refit_every_days < 1:
            raise ConfigurationError(
                f"refit_every_days must be >= 1, got {refit_every_days}"
            )
        factory = factory if factory is not None else default_forecaster_factory
        probe = factory()
        if not (
            isinstance(probe, DecomposedArimaForecaster)
            and probe.order.d == 0
            and probe.period == SAMPLES_PER_DAY
        ):
            raise ConfigurationError(
                "incremental forecasting requires a DecomposedArimaForecaster "
                f"with d=0 and period={SAMPLES_PER_DAY} (one day); "
                "use DayAheadPredictor for other model families"
            )
        self._dataset = dataset
        self._history_days = int(history_days)
        self._order = probe.order
        self._decay = probe.decay
        self._clip = clip_range
        self._refit_every = int(refit_every_days)
        self._epoch: Optional[_Epoch] = None
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._fallback_count = 0
        self._full_fit_count = 0
        self._incremental_count = 0

    # -- properties ----------------------------------------------------

    @property
    def history_days(self) -> int:
        """Trailing training-window length in days."""
        return self._history_days

    @property
    def first_predictable_day(self) -> int:
        """First day index with a full training window behind it."""
        return self._history_days

    @property
    def fallback_count(self) -> int:
        """Rows that degraded (profile-only or carried coefficients)."""
        return self._fallback_count

    @property
    def full_fit_count(self) -> int:
        """Days forecast through the full (oracle) re-fit."""
        return self._full_fit_count

    @property
    def incremental_count(self) -> int:
        """Days forecast through the incremental sliding update."""
        return self._incremental_count

    # -- forecasting ---------------------------------------------------

    def forecast_day(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for a day, shape ``(n_vms, 288)`` each.

        Consecutive day requests inside an epoch ride the incremental
        update; everything else starts an epoch with a full re-fit.

        Raises:
            DomainError: if the day lacks a full training window or is
                outside the dataset.
        """
        if day_index in self._cache:
            return self._cache[day_index]
        self._check_day(day_index)
        epoch = self._epoch
        refit = not (
            epoch is not None
            and day_index == epoch.day + 1
            and epoch.age + 1 < self._refit_every
        )
        forecasts = self._fit_forecast(day_index, refit=refit)
        if refit:
            self._full_fit_count += 1
        else:
            self._incremental_count += 1
        cpu_pred, mem_pred = self._split_clip(forecasts)
        self._cache[day_index] = (cpu_pred, mem_pred)
        return self._cache[day_index]

    def predicted_slot(
        self, slot_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for one 1-hour slot, ``(n_vms, 12)`` each."""
        day_index = slot_index // SLOTS_PER_DAY
        cpu_day, mem_day = self.forecast_day(day_index)
        offset = (slot_index % SLOTS_PER_DAY) * SAMPLES_PER_SLOT
        return (
            cpu_day[:, offset : offset + SAMPLES_PER_SLOT],
            mem_day[:, offset : offset + SAMPLES_PER_SLOT],
        )

    def oracle_forecast_day(
        self, day_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The full re-fit (oracle) forecast for a day.

        Runs the epoch-start path without touching the rolling state,
        the cache or the counters — the reference the incremental
        update is tolerance-tested against.
        """
        self._check_day(day_index)
        forecasts = self._fit_forecast(
            day_index, refit=True, update_state=False, count=False
        )
        return self._split_clip(forecasts)

    # -- checkpoint ----------------------------------------------------

    def state(self) -> dict:
        """Picklable snapshot of the rolling epoch and counters."""
        epoch = self._epoch
        epoch_state = None
        if epoch is not None:
            epoch_state = {
                "day": epoch.day,
                "age": epoch.age,
                "c1": epoch.c1.copy(),
                "a1": epoch.a1.copy(),
                "const": epoch.const.copy(),
                "ar": epoch.ar.copy(),
                "ma": epoch.ma.copy(),
            }
        return {
            "epoch": epoch_state,
            "fallback_count": self._fallback_count,
            "full_fit_count": self._full_fit_count,
            "incremental_count": self._incremental_count,
        }

    def restore(self, state: dict) -> None:
        """Reset the rolling state to a :meth:`state` snapshot."""
        epoch_state = state["epoch"]
        if epoch_state is None:
            self._epoch = None
        else:
            self._epoch = _Epoch(
                day=int(epoch_state["day"]),
                age=int(epoch_state["age"]),
                c1=np.array(epoch_state["c1"]),
                a1=np.array(epoch_state["a1"]),
                const=np.array(epoch_state["const"]),
                ar=np.array(epoch_state["ar"]),
                ma=np.array(epoch_state["ma"]),
            )
        self._fallback_count = int(state["fallback_count"])
        self._full_fit_count = int(state["full_fit_count"])
        self._incremental_count = int(state["incremental_count"])
        self._cache.clear()

    # -- internals -----------------------------------------------------

    def _check_day(self, day_index: int) -> None:
        if day_index < self._history_days:
            raise DomainError(
                f"day {day_index} has no full {self._history_days}-day "
                f"training window"
            )
        if day_index >= self._dataset.n_days:
            raise DomainError(f"day {day_index} outside the dataset")

    def _split_clip(
        self, forecasts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_vms = self._dataset.n_vms
        cpu_pred = forecasts[:n_vms]
        mem_pred = forecasts[n_vms:]
        np.clip(cpu_pred, *self._clip, out=cpu_pred)
        np.clip(mem_pred, *self._clip, out=mem_pred)
        return cpu_pred, mem_pred

    def _fit_forecast(
        self,
        day_index: int,
        refit: bool,
        update_state: bool = True,
        count: bool = True,
    ) -> np.ndarray:
        """Fit (full or incremental) and forecast one day, unclipped.

        With ``refit`` this mirrors the oracle pipeline
        (:func:`~repro.forecast.batch.batched_decomposed_forecast`)
        while retaining the long-AR coefficients; without it the frozen
        coefficients stand in for the long-AR stage and only the final
        ARMA system is re-solved.
        """
        h = self._history_days
        period = SAMPLES_PER_DAY
        p, q = self._order.p, self._order.q
        start = max(p, q)
        m = max(10, 2 * (p + q)) if q > 0 else 0

        lo = (day_index - h) * period
        hi = day_index * period
        data = np.vstack(
            [
                self._dataset.cpu_pct[:, lo:hi],
                self._dataset.mem_pct[:, lo:hi],
            ]
        )
        if not np.all(np.isfinite(data)):
            raise ForecastError("series contains non-finite values")
        batch, n = data.shape
        types = np.array(
            [_day_type(day) for day in range(day_index - h, day_index)],
            dtype=int,
        )
        seasons = data.reshape(batch, h, period)

        # Seasonal profiles: recomputed fresh every day, the same
        # reductions as the oracle — the profiles are never stale.
        def weighted(mask: Optional[np.ndarray]) -> np.ndarray:
            selected = seasons[:, mask] if mask is not None else seasons
            count_ = selected.shape[1]
            weights = self._decay ** np.arange(count_ - 1, -1, -1)
            weights = weights / weights.sum()
            return np.einsum("s,bsp->bp", weights, selected)

        profiles = {int(t): weighted(types == t) for t in np.unique(types)}
        target = profiles.get(_day_type(day_index))
        if target is None:
            target = weighted(None)
        season_profiles = np.stack(
            [profiles[int(t)] for t in types], axis=1
        )
        w = (seasons - season_profiles).reshape(batch, -1)

        first = w[:, :1]
        constant = (
            np.abs(w - first) <= _CONST_ATOL + _CONST_RTOL * np.abs(first)
        ).all(axis=1)

        const = np.where(constant, first[:, 0], 0.0)
        ar = np.zeros((batch, p))
        ma = np.zeros((batch, q))
        e = np.zeros_like(w)
        c1_full = np.zeros(batch)
        a1_full = np.zeros((batch, max(m, 1)))
        epoch = self._epoch

        active = np.flatnonzero(~constant)
        if active.size:
            wa = w[active]
            # Only the ARMA stage's p + 1 lags on the incremental path;
            # the long-AR stage needs max(m, p) + 1 when re-fitting.
            max_lag = max(m, p) if refit and q > 0 else p
            autocorr = np.empty((active.size, max_lag + 1))
            for d in range(max_lag + 1):
                autocorr[:, d] = np.einsum(
                    "bi,bi->b", wa[:, d:], wa[:, : n - d]
                )
            cumsum = np.cumsum(wa, axis=1)
            ok_a = np.ones(active.size, dtype=bool)
            res: Optional[np.ndarray] = None
            if q > 0:
                if refit:
                    gram1, rhs1 = _ar_normal_equations(
                        wa, m, m, autocorr=autocorr, cumsum=cumsum
                    )
                    coef1, ok1 = _solve_normal(gram1, rhs1)
                    ok_a &= ok1
                    c1a = coef1[:, 0]
                    a1a = coef1[:, 1:]
                else:
                    # The frozen filter: the only approximation versus
                    # the oracle.
                    c1a = epoch.c1[active]
                    a1a = epoch.a1[active]
                lag_view = sliding_window_view(wa, m, axis=1)[:, : n - m, :]
                fitted = np.einsum("btk,bk->bt", lag_view, a1a[:, ::-1])
                fitted += c1a[:, None]
                res = np.zeros_like(wa)
                res[:, m:] = wa[:, m:] - fitted
                e[active] = res
                c1_full[active] = c1a
                a1_full[active] = a1a
            gram2, rhs2 = _ar_normal_equations(
                wa, p, start, autocorr=autocorr, cumsum=cumsum
            )
            if q > 0:
                gram2, rhs2 = _extend_with_innovations(
                    gram2, rhs2, wa, res, p, q, start, m
                )
            coef2, ok2 = _solve_normal(gram2, rhs2)
            ok_a &= ok2
            if not ok_a.all():
                if refit or epoch is None:
                    # Full-fit rejects degrade to the seasonal profile
                    # (zero coefficients).
                    coef2[~ok_a] = 0.0
                else:
                    # Incremental rejects carry the previous day's
                    # accepted coefficients.
                    bad = active[~ok_a]
                    coef2[~ok_a, 0] = epoch.const[bad]
                    coef2[~ok_a, 1 : 1 + p] = epoch.ar[bad]
                    coef2[~ok_a, 1 + p :] = epoch.ma[bad]
                if count:
                    self._fallback_count += int(np.count_nonzero(~ok_a))
            const[active] = coef2[:, 0]
            if p > 0:
                ar[active] = coef2[:, 1 : 1 + p]
            if q > 0:
                ma[active] = coef2[:, 1 + p :]

        # Forecast: companion-matrix evaluation of the remainder on top
        # of the target day-type profile.
        w_tail = w[:, -max(p, 1) :].copy()
        e_tail = np.zeros((batch, max(q, 1)))
        if q > 0:
            for k, t in enumerate(range(n - q, n)):
                value = w[:, t] - const
                for lag in range(1, p + 1):
                    value = value - ar[:, lag - 1] * w[:, t - lag]
                for lag in range(1, q + 1):
                    value = value - ma[:, lag - 1] * e[:, t - lag]
                e_tail[:, k] = value
            # Constant rows collapse exactly (the oracle never evaluates
            # their residuals).
            e_tail[constant] = 0.0
        fit = BatchArmaFit(
            order=self._order,
            const=const,
            ar=ar,
            ma=ma,
            w_tail=w_tail,
            e_tail=e_tail,
            ok=np.ones(batch, dtype=bool),
        )
        rem = batched_arma_forecast(fit, period)
        forecasts = target + rem
        bad_rows = ~np.isfinite(forecasts).all(axis=1)
        if bad_rows.any():
            forecasts[bad_rows] = target[bad_rows]
            if count:
                self._fallback_count += int(np.count_nonzero(bad_rows))

        if update_state:
            if refit or epoch is None:
                self._epoch = _Epoch(
                    day=day_index,
                    age=0,
                    c1=c1_full,
                    a1=a1_full,
                    const=const,
                    ar=ar,
                    ma=ma,
                )
            else:
                epoch.day = day_index
                epoch.age += 1
                epoch.const = const
                epoch.ar = ar
                epoch.ma = ma
        return forecasts
