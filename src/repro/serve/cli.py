"""``repro-serve`` — the operator front end of the service loop.

Usage (run as ``python -m repro.serve.cli``)::

    python -m repro.serve.cli                        # clean replay
    python -m repro.serve.cli --telemetry lossy-10pct --policy reactive
    python -m repro.serve.cli --out runs/serve       # decision stream
                                                     # to trace.jsonl
    python -m repro.serve.cli --incremental --refit-every 7
    python -m repro.serve.cli --checkpoint ckpt.pkl --checkpoint-every 12
    python -m repro.serve.cli --checkpoint ckpt.pkl --resume
    python -m repro.serve.cli --mode live --demo-feed
    python -m repro.serve.cli --mode live --feed http://host:8931

Replay mode re-plays a registered degradation scenario over the seeded
workload; with the ``clean`` scenario the run is bit-identical to the
batch engine (the equivalence the test-suite and the
``serve_replay_120`` bench scenario assert).  Live mode polls HTTP
collector feeds (one ``--feed`` URL per collector); ``--demo-feed``
spins up an in-process :class:`~repro.serve.adapters.TelemetryFeedServer`
over the same seeded traces, so the full HTTP path is exercised without
external infrastructure.

Every window's decision is printed as one line and, with ``--out``,
emitted as ``decision_*`` events beside the engine's streaming events
(one ``trace.jsonl`` per run, schema-validated at emit time).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..errors import ConfigurationError, ReproError
from .service import POLICIES, ServeConfig, serve


def _decision_line(decision) -> str:
    parts = [
        f"slot {decision.slot:>4}",
        f"win {decision.n_window:>2}",
        f"case {decision.case or '-':<14}",
        f"vms {decision.n_active_vms:>4}",
        f"srv {decision.active_servers:>3}",
        f"mig {decision.migrations:>3}",
        f"viol {decision.violations:>3}",
        f"E {decision.energy_j / 1e6:7.3f} MJ",
    ]
    if decision.rung is not None:
        parts.append(f"rung {decision.rung}")
    if decision.blind:
        parts.append("BLIND")
    if decision.checkpointed:
        parts.append("ckpt")
    return "  ".join(parts)


def _build_live_collectors(args, config: ServeConfig):
    """The live-mode collector set (and the demo feed to close)."""
    from ..cloud import get_scenario, zero_telemetry_faults
    from ..cloud.telemetry import TraceCollector
    from .adapters import HttpCollector, TelemetryFeedServer

    if args.demo_feed:
        # Same seeded build the simulation uses, so the demo feed
        # reports the true traces over a real HTTP round-trip.
        dataset, _ = get_scenario(config.workload).build(
            n_vms=config.n_vms,
            n_days=config.n_days,
            seed=config.seed,
            n_slots=config.n_slots,
        )
        schedule = zero_telemetry_faults(
            dataset.n_vms, 0, dataset.n_slots, n_collectors=args.collectors
        )
        feed = TelemetryFeedServer(
            [
                TraceCollector(cid, dataset, schedule)
                for cid in range(args.collectors)
            ]
        )
        collectors = [
            HttpCollector(cid, feed.url) for cid in range(args.collectors)
        ]
        return collectors, feed
    if not args.feed:
        raise ConfigurationError(
            "live mode needs a feed: pass --feed URL (one per "
            "collector) or --demo-feed"
        )
    return (
        [HttpCollector(cid, url) for cid, url in enumerate(args.feed)],
        None,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Drive the streaming consolidation engine window-by-window, "
            "emitting structured placement/migration/forecast-rung/SLA "
            "decision events"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=["replay", "live"],
        default="replay",
        help="replay a degradation scenario or poll live collectors",
    )
    parser.add_argument(
        "--workload",
        default="zero-churn",
        help="cloud workload scenario (default: zero-churn)",
    )
    parser.add_argument(
        "--telemetry",
        default="clean",
        help=(
            "degradation scenario for replay mode (default: clean — "
            "the batch bit-identity control)"
        ),
    )
    parser.add_argument(
        "--policy",
        choices=list(POLICIES),
        default="epact",
        help="allocation policy (default: epact)",
    )
    parser.add_argument("--n-vms", type=int, default=120, metavar="N")
    parser.add_argument("--n-days", type=int, default=9, metavar="N")
    parser.add_argument(
        "--n-slots",
        type=int,
        default=None,
        metavar="N",
        help="evaluated slots (default: everything after training)",
    )
    parser.add_argument("--max-servers", type=int, default=24, metavar="N")
    parser.add_argument("--seed", type=int, default=2018, metavar="N")
    parser.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "incremental day-over-day Hannan-Rissanen refresh instead "
            "of the full daily re-fit"
        ),
    )
    parser.add_argument(
        "--refit-every",
        type=int,
        default=7,
        metavar="DAYS",
        help="incremental mode: full oracle re-fit cadence (default: 7)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist the latest window-boundary snapshot here",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="SLOTS",
        help="snapshot cadence (default: 12 when --checkpoint is set)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore the --checkpoint snapshot before streaming",
    )
    parser.add_argument(
        "--feed",
        action="append",
        metavar="URL",
        default=None,
        help="live mode: one collector feed base URL (repeatable)",
    )
    parser.add_argument(
        "--demo-feed",
        action="store_true",
        help=(
            "live mode: serve the seeded traces over an in-process "
            "HTTP feed and poll it (self-contained demo)"
        ),
    )
    parser.add_argument(
        "--collectors",
        type=int,
        default=2,
        metavar="N",
        help="collector count for --demo-feed (default: 2)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help=(
            "write run artifacts to DIR: manifest.json, trace.jsonl "
            "(engine + decision_* events), timing.jsonl, metrics.json, "
            "summary.json"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-window decision lines",
    )
    args = parser.parse_args(argv)

    checkpoint_every = args.checkpoint_every
    if args.checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 12
    try:
        config = ServeConfig(
            workload=args.workload,
            telemetry_scenario=args.telemetry,
            policy=args.policy,
            n_vms=args.n_vms,
            n_days=args.n_days,
            seed=args.seed,
            n_slots=args.n_slots,
            max_servers=args.max_servers,
            incremental_forecasts=args.incremental,
            refit_every_days=args.refit_every,
            checkpoint_every_slots=checkpoint_every,
            checkpoint_path=args.checkpoint,
        )
    except ReproError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2

    tracer = None
    metrics = None
    if args.out is not None:
        from ..obs import MetricsRegistry, RunTracer, write_manifest

        os.makedirs(args.out, exist_ok=True)
        write_manifest(
            args.out,
            config={
                "mode": args.mode,
                "workload": config.workload,
                "telemetry": (
                    config.telemetry_scenario
                    if args.mode == "replay"
                    else "live"
                ),
                "policy": config.policy,
                "n_vms": config.n_vms,
                "n_days": config.n_days,
                "n_slots": config.n_slots,
                "incremental": config.incremental_forecasts,
            },
            seed=config.seed,
        )
        tracer = RunTracer.for_run_dir(args.out)
        metrics = MetricsRegistry()

    collectors = None
    feed = None
    on_decision = None
    if not args.quiet:
        def on_decision(decision):
            print(_decision_line(decision))

    try:
        if args.mode == "live":
            collectors, feed = _build_live_collectors(args, config)
        result = serve(
            config,
            collectors=collectors,
            tracer=tracer,
            metrics=metrics,
            resume=args.resume,
            on_decision=on_decision,
        )
    except ReproError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    finally:
        if feed is not None:
            feed.close()
        if tracer is not None:
            if metrics is not None:
                metrics.emit_timing(tracer)
                metrics.write(os.path.join(args.out, "metrics.json"))
            tracer.close()

    from ..cloud.sla import summarize
    import dataclasses

    summary = summarize(result)
    print(
        f"{result.policy_name}: {len(result.records)} slots, "
        f"{summary.total_energy_mj:.3f} MJ, "
        f"{summary.total_violations} violations, "
        f"{summary.total_migrations} migrations"
    )
    if args.out is not None:
        with open(
            os.path.join(args.out, "summary.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(
                dataclasses.asdict(summary), fh, indent=2, sort_keys=True
            )
            fh.write("\n")
        print(f"wrote run artifacts to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
