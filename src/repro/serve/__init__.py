"""repro.serve — live-operator service mode over the streaming engine.

The consolidation-controller loop (monitor → forecast → place →
migrate), packaged for operation rather than experimentation:

* :mod:`~repro.serve.adapters` — the
  :class:`~repro.serve.adapters.CollectorAdapter` protocol the
  file-replay :class:`~repro.cloud.telemetry.TraceCollector` pioneered,
  plus live implementations: the in-process
  :class:`~repro.serve.adapters.PushCollector`, the
  :class:`~repro.serve.adapters.HttpCollector` and the
  :class:`~repro.serve.adapters.TelemetryFeedServer` that serves any
  backing collector over HTTP;
* :mod:`~repro.serve.incremental` — the
  :class:`~repro.serve.incremental.IncrementalDayAheadForecaster`:
  day-over-day refresh of the Hannan-Rissanen normal equations (full
  re-fit kept callable as the oracle);
* :mod:`~repro.serve.service` — :class:`~repro.serve.service.ServeConfig`
  and the :func:`~repro.serve.service.serve` loop emitting
  ``decision_*`` tracer events per allocation window;
* :mod:`~repro.serve.cli` — the ``repro-serve`` front end
  (``python -m repro.serve.cli``), replay and live modes.

Quick start::

    from repro.serve import ServeConfig, serve

    result = serve(ServeConfig(n_slots=48))        # clean replay
"""

from .adapters import (
    CollectorAdapter,
    HttpCollector,
    PushCollector,
    TelemetryBatch,
    TelemetryFeedServer,
    poll_with_retry,
)
from .incremental import IncrementalDayAheadForecaster

__all__ = [
    "CollectorAdapter",
    "HttpCollector",
    "IncrementalDayAheadForecaster",
    "POLICIES",
    "PushCollector",
    "ServeConfig",
    "TelemetryBatch",
    "TelemetryFeedServer",
    "build_simulation",
    "emit_decision_events",
    "main",
    "poll_with_retry",
    "serve",
]

_SERVICE_NAMES = {
    "POLICIES",
    "ServeConfig",
    "build_simulation",
    "emit_decision_events",
    "serve",
}


def __getattr__(name):
    # The service/CLI layer sits above the cloud engines; loading it
    # lazily keeps `repro.serve.adapters`/`.incremental` importable
    # from `repro.cloud` without a cycle.
    if name in _SERVICE_NAMES:
        from . import service

        return getattr(service, name)
    if name == "main":
        from .cli import main

        return main
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
