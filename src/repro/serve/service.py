"""Operator service loop: windowed decisions as a structured stream.

This is the consolidation controller the paper's question implies —
monitor → forecast → place → migrate, once per allocation window —
packaged as a callable service.  :func:`serve` builds a
:class:`~repro.cloud.streaming.StreamingCloudSimulation` from a frozen
:class:`ServeConfig`, drives its :meth:`windows` generator, and turns
every :class:`~repro.cloud.streaming.WindowDecision` into ``decision_*``
events on the run tracer (schemas in
:data:`repro.obs.tracer.EVENT_SCHEMAS`):

* ``decision_placement`` — the committed placement's shape (case,
  servers, churn, blind/checkpoint flags), once per window;
* ``decision_migration`` — only when the window moved VMs;
* ``decision_rung`` — the forecast-ladder rung planned from, with the
  degradation context (only when a telemetry stream is attached);
* ``decision_sla`` — the window's accounted energy and SLA debt.

Replay mode re-plays a registered degradation scenario over the seeded
workload (the ``clean`` scenario is the batch-engine bit-identity
control); live mode plugs any
:class:`~repro.serve.adapters.CollectorAdapter` set into the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..core.types import AllocationPolicy
from ..errors import ConfigurationError

__all__ = [
    "POLICIES",
    "ServeConfig",
    "build_simulation",
    "emit_decision_events",
    "serve",
]


def _policy_registry() -> Dict[str, Callable[[], AllocationPolicy]]:
    from ..baselines import OnlineBestFitPolicy, OnlineReactivePolicy
    from ..core import EpactPolicy

    return {
        "epact": EpactPolicy,
        "reactive": OnlineReactivePolicy,
        "bestfit": OnlineBestFitPolicy,
    }


#: Policy names :class:`ServeConfig` accepts (fresh instance per run).
POLICIES = ("epact", "reactive", "bestfit")


@dataclass(frozen=True)
class ServeConfig:
    """Everything one service run needs, validated up front.

    Attributes:
        workload: cloud scenario name (:data:`repro.cloud.SCENARIOS`).
        telemetry_scenario: degradation scenario name
            (:data:`repro.cloud.TELEMETRY_SCENARIOS`) for replay mode;
            ignored when live collectors are passed to :func:`serve`.
        policy: policy name from :data:`POLICIES`.
        n_vms / n_days / seed: workload build configuration.
        n_slots: evaluated slots (``None`` = everything after the
            forecaster's training window).
        max_servers: fleet bound.
        incremental_forecasts: route the fresh rung through the
            incremental Hannan-Rissanen refresh
            (:class:`~repro.serve.incremental.IncrementalDayAheadForecaster`).
        refit_every_days: incremental mode's full-re-fit epoch length.
        checkpoint_every_slots: window-boundary snapshot cadence
            (``None`` disables checkpointing).
        checkpoint_path: where the latest snapshot is persisted; also
            the source of a ``resume=True`` run.
    """

    workload: str = "zero-churn"
    telemetry_scenario: str = "clean"
    policy: str = "epact"
    n_vms: int = 120
    n_days: int = 9
    seed: int = 2018
    n_slots: Optional[int] = None
    max_servers: int = 24
    incremental_forecasts: bool = False
    refit_every_days: int = 7
    checkpoint_every_slots: Optional[int] = None
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; pick one of "
                f"{', '.join(POLICIES)}"
            )
        if self.n_vms < 1:
            raise ConfigurationError("n_vms must be >= 1")
        if self.n_days < 2:
            raise ConfigurationError(
                "n_days must be >= 2 (a forecast history plus at "
                "least one evaluated day)"
            )
        if self.n_slots is not None and self.n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")
        if self.max_servers < 1:
            raise ConfigurationError("max_servers must be >= 1")
        if self.refit_every_days < 1:
            raise ConfigurationError(
                f"refit_every_days must be >= 1, got "
                f"{self.refit_every_days}"
            )
        if (
            self.checkpoint_every_slots is not None
            and self.checkpoint_every_slots < 1
        ):
            raise ConfigurationError(
                f"checkpoint_every_slots must be >= 1, got "
                f"{self.checkpoint_every_slots}"
            )


def build_simulation(
    config: ServeConfig,
    collectors: Optional[Sequence] = None,
    tracer=None,
    metrics=None,
):
    """The configured streaming engine behind one service run.

    With ``collectors`` the engine polls the live adapters; without
    them the configured degradation scenario is replayed over the
    seeded workload's file collectors.
    """
    from ..cloud import get_scenario, get_telemetry_scenario
    from ..cloud.streaming import StreamingCloudSimulation
    from ..forecast import DayAheadPredictor

    dataset, schedule = get_scenario(config.workload).build(
        n_vms=config.n_vms,
        n_days=config.n_days,
        seed=config.seed,
        n_slots=config.n_slots,
    )
    predictor = DayAheadPredictor(dataset)
    telemetry = None
    if collectors is None:
        telemetry = get_telemetry_scenario(config.telemetry_scenario).build(
            n_vms=dataset.n_vms,
            horizon_start=0,
            horizon_end=dataset.n_slots,
            seed=config.seed,
        )
    policy = _policy_registry()[config.policy]()
    kwargs = dict(
        telemetry=telemetry,
        collectors=collectors,
        incremental_forecasts=config.incremental_forecasts,
        refit_every_days=config.refit_every_days,
        checkpoint_every_slots=config.checkpoint_every_slots,
        checkpoint_path=config.checkpoint_path,
        n_slots=config.n_slots,
        max_servers=config.max_servers,
    )
    if tracer is not None:
        kwargs["tracer"] = tracer
    if metrics is not None:
        kwargs["metrics"] = metrics
    return StreamingCloudSimulation(
        dataset, predictor, policy, schedule, **kwargs
    )


def emit_decision_events(tracer, decision) -> None:
    """One window's :class:`WindowDecision` → ``decision_*`` events."""
    if tracer is None or not tracer.enabled:
        return
    tracer.emit(
        "decision_placement",
        slot=decision.slot,
        n_window=decision.n_window,
        case=decision.case,
        n_active_vms=decision.n_active_vms,
        active_servers=decision.active_servers,
        forced_placements=decision.forced_placements,
        arrivals=decision.arrivals,
        departures=decision.departures,
        blind=decision.blind,
        checkpointed=decision.checkpointed,
    )
    if decision.migrations:
        tracer.emit(
            "decision_migration",
            slot=decision.slot,
            migrations=decision.migrations,
        )
    if decision.rung is not None:
        tracer.emit(
            "decision_rung",
            slot=decision.slot,
            rung=decision.rung,
            stale=decision.stale,
            imputed_samples=decision.imputed_samples,
            collectors_down=decision.collectors_down,
        )
    tracer.emit(
        "decision_sla",
        slot=decision.slot,
        violations=decision.violations,
        energy_j=decision.energy_j,
    )


def serve(
    config: ServeConfig,
    collectors: Optional[Sequence] = None,
    tracer=None,
    metrics=None,
    resume: bool = False,
    on_decision=None,
):
    """Run the service loop to the end of the horizon.

    Args:
        config: the frozen run configuration.
        collectors: live :class:`~repro.serve.adapters.CollectorAdapter`
            set (``None`` = replay the configured degradation
            scenario).
        tracer: optional :class:`~repro.obs.tracer.RunTracer`; receives
            the engine's streaming events *and* the ``decision_*``
            stream.
        metrics: optional metrics registry (phase timings).
        resume: restore the latest snapshot from
            ``config.checkpoint_path`` before streaming (bit-identical
            continuation).
        on_decision: optional callback invoked with every
            :class:`~repro.cloud.streaming.WindowDecision` after its
            events are emitted (operator hooks, progress displays).

    Returns:
        The run's :class:`~repro.dcsim.SimulationResult` — identical to
        :meth:`StreamingCloudSimulation.run` with the same inputs.
    """
    sim = build_simulation(
        config, collectors=collectors, tracer=tracer, metrics=metrics
    )
    if resume:
        if config.checkpoint_path is None:
            raise ConfigurationError(
                "resume=True needs checkpoint_path set — there is no "
                "snapshot to restore"
            )
        sim.restore(config.checkpoint_path)
    for decision in sim.windows():
        emit_decision_events(tracer, decision)
        if on_decision is not None:
            on_decision(decision)
    return sim.result
