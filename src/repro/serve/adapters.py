"""Collector adapters: the pluggable feed side of the service loop.

:class:`~repro.cloud.telemetry.TraceCollector` (PR 7) replays a trace
dataset as a delivery stream; this module generalizes its *shape* into
the :class:`CollectorAdapter` protocol so non-replay feeds plug into
:class:`~repro.cloud.streaming.StreamingCloudSimulation` with the
poll/timeout/retry semantics unchanged:

* ``poll(slot)`` returns a :class:`TelemetryBatch` of everything that
  became available by that poll, or raises
  :class:`~repro.errors.CollectorTimeoutError` while the feed is down;
* :func:`poll_with_retry` (moved here from
  :mod:`repro.cloud.telemetry`, which keeps a deprecation shim) wraps
  any adapter in the bounded retry/backoff hardening pattern;
* ``state()`` / ``restore(state)`` snapshot the cursor for the
  engine's checkpoint/resume.

Two live adapters ship alongside the protocol, mirroring the collector
split of energy_audit's ``pro/collectors`` (in-process vs network):

* :class:`PushCollector` — an in-process synthetic-push feed: a
  producer (test harness, generator thread) pushes sample batches with
  an availability slot, the engine polls them out in availability
  order;
* :class:`HttpCollector` — polls ``GET <base>/poll?collector=I&slot=S``
  on a feed service speaking the tiny JSON protocol of
  :class:`TelemetryFeedServer` (also here, so the live quickstart and
  the tests exercise a real socket round-trip without extra
  dependencies).  HTTP 503 and transport errors map to
  :class:`~repro.errors.CollectorTimeoutError` — a dead network leg
  *is* a dropout window.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional, Protocol, Tuple
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, urlparse
from urllib.request import urlopen

import numpy as np

from ..errors import CollectorTimeoutError, ConfigurationError


@dataclass(frozen=True)
class TelemetryBatch:
    """One poll's deliveries: parallel arrays, one entry per sample.

    Attributes:
        vm_rows: global VM row of each delivered sample.
        samples: absolute sample index of each delivered sample.
        cpu: the delivered CPU reading (NaN/spike corruption applied).
        mem: the delivered memory reading (same corruption marks).
    """

    vm_rows: np.ndarray
    samples: np.ndarray
    cpu: np.ndarray
    mem: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of delivered samples in the batch."""
        return int(self.vm_rows.size)


def _empty_batch() -> TelemetryBatch:
    return TelemetryBatch(
        vm_rows=np.empty(0, dtype=np.intp),
        samples=np.empty(0, dtype=np.intp),
        cpu=np.empty(0),
        mem=np.empty(0),
    )


class CollectorAdapter(Protocol):
    """What the streaming engine needs from a telemetry feed.

    :class:`~repro.cloud.telemetry.TraceCollector` (file replay),
    :class:`PushCollector` (in-process push) and :class:`HttpCollector`
    (network poll) all satisfy this structurally; the engine never
    checks types, only the protocol.
    """

    @property
    def collector_id(self) -> int:
        """Stable id of this collector within the feed."""
        ...

    def poll(self, slot: int) -> TelemetryBatch:
        """Everything that became available by the poll at ``slot``.

        Raises:
            CollectorTimeoutError: while the feed is down; the engine
                records downtime and re-polls next slot.
        """
        ...

    def state(self) -> object:
        """Picklable cursor snapshot for checkpoint/resume."""
        ...

    def restore(self, state: object) -> None:
        """Reset the cursor to a :meth:`state` snapshot."""
        ...


def poll_with_retry(
    collector: CollectorAdapter,
    slot: int,
    retries: int = 2,
    backoff_s: float = 0.0,
    sleep: Optional[Callable[[float], None]] = None,
    tracer=None,
) -> Optional[TelemetryBatch]:
    """Poll with bounded retries and exponential backoff.

    The :mod:`repro.experiments.pool` hardening pattern applied to a
    poll: a :class:`~repro.errors.CollectorTimeoutError` is retried up
    to ``retries`` times, sleeping ``backoff_s * 2**attempt`` between
    attempts (``backoff_s=0`` — the default — keeps simulated replay
    instant and deterministic).  ``None`` means the collector stayed
    down through every attempt: the caller records downtime and moves
    on instead of losing the whole run.

    Args:
        collector: the collector to poll (any :class:`CollectorAdapter`).
        slot: the poll slot.
        retries: additional attempts after the first (>= 0).
        backoff_s: base backoff delay in seconds (>= 0).
        sleep: injectable sleep for tests; defaults to ``time.sleep``.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`; every
            failed attempt emits a ``poll_retry`` event (``gave_up``
            marks the final one).  Outages are seeded-schedule facts,
            so the events are deterministic.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise ConfigurationError(
            f"backoff_s must be >= 0, got {backoff_s}"
        )
    traced = tracer is not None and getattr(tracer, "enabled", False)
    wait = sleep if sleep is not None else time.sleep
    for attempt in range(retries + 1):
        try:
            return collector.poll(slot)
        except CollectorTimeoutError:
            if traced:
                tracer.emit(
                    "poll_retry",
                    collector=collector.collector_id,
                    slot=slot,
                    attempt=attempt,
                    gave_up=attempt == retries,
                )
            if attempt < retries and backoff_s > 0.0:
                wait(backoff_s * (2.0**attempt))
    return None


# -- in-process push feed ----------------------------------------------


class PushCollector:
    """In-process synthetic-push adapter: producers push, the engine polls.

    A producer thread (or the test harness) calls :meth:`push` with a
    batch of samples and the slot at which they become pollable; the
    engine's polls drain everything whose availability slot has passed,
    in (availability, push-order) order — the same out-of-order
    delivery semantics as the file-replay collector.  :meth:`set_offline`
    simulates a dropout window: polls raise
    :class:`~repro.errors.CollectorTimeoutError` until the feed comes
    back, and the queued samples arrive as one burst afterwards.

    Push and poll are lock-serialized so a live producer thread never
    races the service loop.

    Args:
        collector_id: this collector's id within the feed.
    """

    def __init__(self, collector_id: int) -> None:
        self._id = int(collector_id)
        self._lock = threading.Lock()
        # (available-at slot, push sequence, batch); kept sorted lazily
        # at poll time so pushes stay O(1).
        self._queue: List[Tuple[int, int, TelemetryBatch]] = []
        self._pushed = 0
        self._consumed = 0
        self._offline = False
        self._last_success = 0

    @property
    def collector_id(self) -> int:
        """This collector's id within the feed."""
        return self._id

    def push(
        self,
        vm_rows: np.ndarray,
        samples: np.ndarray,
        cpu: np.ndarray,
        mem: np.ndarray,
        available_at: int,
    ) -> None:
        """Queue a batch of samples, pollable from slot ``available_at``.

        Raises:
            ConfigurationError: if the parallel arrays disagree in
                length.
        """
        batch = TelemetryBatch(
            vm_rows=np.asarray(vm_rows, dtype=np.intp),
            samples=np.asarray(samples, dtype=np.intp),
            cpu=np.asarray(cpu, dtype=float),
            mem=np.asarray(mem, dtype=float),
        )
        n = batch.vm_rows.size
        if not (
            batch.samples.size == n
            and batch.cpu.size == n
            and batch.mem.size == n
        ):
            raise ConfigurationError(
                "push arrays must be parallel (one entry per sample)"
            )
        with self._lock:
            # A retroactive availability ("should already be there")
            # delivers at the next poll: clamping keeps the sorted
            # cursor consistent, so consumed batches always precede
            # unconsumed ones in (availability, push-order) order.
            avail = max(int(available_at), self._last_success + 1)
            self._queue.append((avail, self._pushed, batch))
            self._pushed += 1

    def set_offline(self, offline: bool) -> None:
        """Enter/leave a dropout window (polls time out while offline)."""
        with self._lock:
            self._offline = bool(offline)

    def poll(self, slot: int) -> TelemetryBatch:
        """Everything pushed with ``available_at <= slot``, in order.

        Raises:
            CollectorTimeoutError: while :meth:`set_offline` holds the
                feed down (nothing is consumed).
        """
        with self._lock:
            if self._offline:
                raise CollectorTimeoutError(
                    f"collector {self._id} timed out polling slot {slot} "
                    f"(offline)"
                )
            self._queue.sort(key=lambda item: (item[0], item[1]))
            ready = [
                batch
                for avail, _, batch in self._queue[self._consumed :]
                if avail <= slot
            ]
            self._consumed += len(ready)
            self._last_success = max(self._last_success, int(slot))
        if not ready:
            return _empty_batch()
        return TelemetryBatch(
            vm_rows=np.concatenate([b.vm_rows for b in ready]),
            samples=np.concatenate([b.samples for b in ready]),
            cpu=np.concatenate([b.cpu for b in ready]),
            mem=np.concatenate([b.mem for b in ready]),
        )

    # -- checkpoint ----------------------------------------------------

    def state(self) -> Tuple[int, int]:
        """Cursor snapshot: ``(batches consumed, last successful poll)``."""
        with self._lock:
            return (self._consumed, self._last_success)

    def restore(self, state: Tuple[int, int]) -> None:
        """Reset the cursor; pushed-but-unconsumed batches replay."""
        consumed, last_success = state
        with self._lock:
            self._consumed = int(consumed)
            self._last_success = int(last_success)


# -- HTTP feed ---------------------------------------------------------


class HttpCollector:
    """Network adapter: polls a feed service over HTTP.

    Speaks the JSON protocol of :class:`TelemetryFeedServer`:
    ``GET <base_url>/poll?collector=<id>&slot=<slot>`` returns the
    batch as parallel lists, HTTP 503 means the backing collector is
    inside a dropout window, and any transport failure (refused
    connection, socket timeout) is treated the same way — from the
    engine's side a dead network leg *is* a down collector, and
    :func:`poll_with_retry` applies its usual bounded backoff.

    The cursor lives server-side (the feed knows what it has already
    delivered), so :meth:`state` only snapshots the last successful
    poll; on resume the feed's own cursor is authoritative.

    Args:
        collector_id: this collector's id at the feed service.
        base_url: feed service root, e.g. ``http://127.0.0.1:8431``.
        timeout_s: per-request socket timeout in seconds (> 0).
    """

    def __init__(
        self,
        collector_id: int,
        base_url: str,
        timeout_s: float = 5.0,
    ) -> None:
        if timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be > 0, got {timeout_s}"
            )
        self._id = int(collector_id)
        self._base = base_url.rstrip("/")
        self._timeout = float(timeout_s)
        self._last_success = 0

    @property
    def collector_id(self) -> int:
        """This collector's id at the feed service."""
        return self._id

    def poll(self, slot: int) -> TelemetryBatch:
        """One HTTP round-trip; see the class docstring for the protocol.

        Raises:
            CollectorTimeoutError: on HTTP 503 (feed-declared dropout)
                or any transport failure.
        """
        url = f"{self._base}/poll?collector={self._id}&slot={int(slot)}"
        try:
            with urlopen(url, timeout=self._timeout) as response:
                payload = json.load(response)
        except HTTPError as exc:
            raise CollectorTimeoutError(
                f"collector {self._id} timed out polling slot {slot} "
                f"(feed returned HTTP {exc.code})"
            ) from exc
        except (URLError, TimeoutError, OSError) as exc:
            raise CollectorTimeoutError(
                f"collector {self._id} timed out polling slot {slot} "
                f"({exc})"
            ) from exc
        self._last_success = max(self._last_success, int(slot))
        return TelemetryBatch(
            vm_rows=np.asarray(payload["vm_rows"], dtype=np.intp),
            samples=np.asarray(payload["samples"], dtype=np.intp),
            cpu=np.asarray(payload["cpu"], dtype=float),
            mem=np.asarray(payload["mem"], dtype=float),
        )

    # -- checkpoint ----------------------------------------------------

    def state(self) -> Tuple[str, int]:
        """``("http", last successful poll)`` — the feed owns the cursor."""
        return ("http", self._last_success)

    def restore(self, state: Tuple[str, int]) -> None:
        """Restore the last-success mark; the feed's cursor is remote."""
        self._last_success = int(state[1])


class TelemetryFeedServer:
    """Tiny in-process HTTP feed fronting any collector adapters.

    Serves the :class:`HttpCollector` protocol over a real socket
    (``ThreadingHTTPServer`` on ``127.0.0.1``, ephemeral port) from a
    daemon thread, delegating each ``/poll`` to the backing adapter
    with the same id — typically file-replay
    :class:`~repro.cloud.telemetry.TraceCollector` instances, which
    turns any recorded scenario into a live HTTP feed for demos and
    integration tests.  A backing
    :class:`~repro.errors.CollectorTimeoutError` becomes HTTP 503.

    Args:
        collectors: the backing adapters, keyed by their own
            ``collector_id``.

    Raises:
        ConfigurationError: with no collectors to serve.
    """

    def __init__(self, collectors) -> None:
        backing = {int(c.collector_id): c for c in collectors}
        if not backing:
            raise ConfigurationError(
                "TelemetryFeedServer needs at least one collector"
            )
        lock = threading.Lock()

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr
                pass

            def do_GET(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path != "/poll":
                    self.send_error(404)
                    return
                query = parse_qs(parsed.query)
                try:
                    cid = int(query["collector"][0])
                    slot = int(query["slot"][0])
                    collector = backing[cid]
                except (KeyError, ValueError, IndexError):
                    self.send_error(400)
                    return
                try:
                    with lock:
                        batch = collector.poll(slot)
                except CollectorTimeoutError:
                    self.send_error(503)
                    return
                body = json.dumps(
                    {
                        "vm_rows": batch.vm_rows.tolist(),
                        "samples": batch.samples.tolist(),
                        "cpu": batch.cpu.tolist(),
                        "mem": batch.mem.tolist(),
                    }
                ).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """Feed root, e.g. ``http://127.0.0.1:<port>``."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "TelemetryFeedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
