"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch the whole family with a single ``except`` clause while the
sub-classes keep error reporting precise (configuration vs. model-domain vs.
infeasibility problems).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A model or simulation was configured with inconsistent parameters.

    Examples: a voltage range whose minimum exceeds its maximum, a server
    specification with zero cores, or a trace generator asked for a negative
    number of VMs.
    """


class DomainError(ReproError):
    """A numeric input falls outside the validity domain of a model.

    Examples: asking the FD-SOI voltage/frequency curve for the voltage of a
    frequency above the technology maximum, or a utilization percentage
    outside ``[0, 100]``.
    """


class InfeasibleError(ReproError):
    """A requested operating point or allocation cannot be satisfied.

    Examples: a data-center utilization that cannot be served by the
    available servers at any frequency, or a VM whose footprint exceeds an
    empty server's capacity.
    """


class CalibrationError(ReproError):
    """Calibration against published anchors failed to produce a solution.

    Raised when the anchor equations are mutually inconsistent (which would
    indicate a typo in :mod:`repro.experiments.anchors`) or produce
    non-physical parameters such as negative instruction counts.
    """


class ForecastError(ReproError):
    """A time-series model could not be fitted or used for prediction.

    Examples: fitting an ARIMA model on a series shorter than the seasonal
    period, or requesting a forecast horizon of zero samples.
    """


class CollectorTimeoutError(ReproError):
    """A telemetry collector did not answer a poll in time.

    Raised by :meth:`repro.cloud.telemetry.TraceCollector.poll` (and any
    other :class:`repro.serve.adapters.CollectorAdapter`) while the
    collector sits inside a dropout window.  Callers are expected to retry
    with bounded backoff (:func:`repro.serve.adapters.poll_with_retry`)
    and, when the collector stays dark, degrade to stale data instead of
    crashing the run.
    """
