"""Every published number from the paper used for calibration/validation.

Centralizing the paper's figures here keeps calibration
(:mod:`repro.perf.calibration`) and validation (tests, EXPERIMENTS.md)
honest: models are tuned against *these* values and nothing else, and every
test that checks a reproduced trend cites the anchor it validates.

All execution times are in seconds, frequencies in GHz, powers in watts.
"""

from __future__ import annotations

from types import MappingProxyType

# ---------------------------------------------------------------------------
# Table I — QoS analysis: execution times of the three workload classes
# ---------------------------------------------------------------------------

TABLE_I = MappingProxyType(
    {
        "low-mem": MappingProxyType(
            {
                "x86_2_66ghz_s": 0.437,
                "qos_limit_s": 0.873,
                "thunderx_2ghz_s": 0.733,
                "ntc_2ghz_s": 0.582,
            }
        ),
        "mid-mem": MappingProxyType(
            {
                "x86_2_66ghz_s": 1.564,
                "qos_limit_s": 3.127,
                "thunderx_2ghz_s": 5.035,
                "ntc_2ghz_s": 2.926,
            }
        ),
        "high-mem": MappingProxyType(
            {
                "x86_2_66ghz_s": 3.455,
                "qos_limit_s": 6.909,
                "thunderx_2ghz_s": 11.943,
                "ntc_2ghz_s": 6.765,
            }
        ),
    }
)
"""Paper Table I. The QoS limit is 2x the x86 execution time."""

QOS_DEGRADATION_LIMIT = 2.0
"""Maximum allowed execution-time degradation w.r.t. the x86 baseline."""

X86_REFERENCE_FREQ_GHZ = 2.66
"""Frequency of the Intel Xeon X5650 QoS-reference runs."""

COMPARISON_FREQ_GHZ = 2.0
"""Frequency at which ThunderX and the NTC server are compared in Table I."""

NTC_SPEEDUP_OVER_THUNDERX_RANGE = (1.25, 1.76)
"""Paper Section VI-A: NTC outperforms ThunderX by 1.25x-1.76x."""

THUNDERX_SLOWDOWN_VS_X86_RANGE = (1.35, 1.5)
"""Paper Section III-A: ThunderX was 1.35x-1.5x slower than x86."""

# ---------------------------------------------------------------------------
# Fig. 2 — QoS-compatible frequency floors (paper Section VI-B-1)
# ---------------------------------------------------------------------------

QOS_MIN_FREQ_GHZ = MappingProxyType(
    {
        "low-mem": 1.2,
        "mid-mem": 1.8,
        "high-mem": 1.8,
    }
)
"""Lowest frequency at which each class still meets the 2x QoS limit."""

FIG2_FREQ_SWEEP_GHZ = (0.1, 0.2, 0.5, 1.0, 1.5, 2.0, 2.5)
"""The frequency grid of the paper's Fig. 2 x-axis."""

# ---------------------------------------------------------------------------
# Fig. 3 — efficiency peaks (paper Section VI-B-2)
# ---------------------------------------------------------------------------

EFFICIENCY_PEAK_FREQ_GHZ = MappingProxyType(
    {
        "low-mem": 1.5,
        "mid-mem": 1.5,
        "high-mem": 1.2,
    }
)
"""Frequency of the maximum BUIPS/W point per class."""

EFFICIENCY_ORDER = ("low-mem", "mid-mem", "high-mem")
"""Fig. 3: efficiency decreases with increasing memory utilization."""

# ---------------------------------------------------------------------------
# Fig. 1 — data-center power vs. frequency
# ---------------------------------------------------------------------------

FIG1_N_SERVERS = 80
FIG1_NTC_FMAX_GHZ = 3.1
FIG1_NTC_FREQ_RANGE_GHZ = (0.3, 3.1)
FIG1_CONV_FREQ_RANGE_GHZ = (1.2, 2.4)
FIG1_UTILIZATIONS_PCT = (10, 20, 30, 40, 50, 60, 70, 80, 90)

NTC_OPTIMAL_FREQ_GHZ = 1.9
"""The paper's F_NTC_opt: optimal frequency of NTC servers (Fig. 1(a))."""

NTC_OPT_UTILIZATION_KNEE_PCT = 50.0
"""Above this utilization the optimum is the minimum feasible frequency."""

# ---------------------------------------------------------------------------
# Workload classes (paper Section III-B)
# ---------------------------------------------------------------------------

MEMORY_FOOTPRINT_MB = MappingProxyType(
    {
        "low-mem": 70.0,
        "mid-mem": 255.0,
        "high-mem": 435.0,
    }
)
"""Average per-VM memory usage of the three profiling categories."""

MEMORY_FOOTPRINT_PCT = MappingProxyType(
    {
        "low-mem": 7.0,
        "mid-mem": 25.0,
        "high-mem": 43.0,
    }
)
"""The paper's footprint percentages (relative to a 1GB VM allocation)."""

GOOGLE_TRACE_MEM_RANGE_PCT = (2.0, 32.0)
"""Per-VM memory utilization range observed in the Google Cluster traces."""

GOOGLE_TRACE_N_VMS = 600
"""Number of VMs in the evaluation traces."""

# ---------------------------------------------------------------------------
# Server power model constants (paper Section IV) — used verbatim
# ---------------------------------------------------------------------------

WFM_POWER_REDUCTION = 0.24
"""Core region consumes 24% less power in wait-for-memory state."""

UNCORE_CONSTANT_W = 11.84
"""Constant memory-controller/peripherals/IO overhead, all operating points."""

UNCORE_PROPORTIONAL_RANGE_W = (1.6, 9.0)
"""Operating-condition-proportional uncore component (min, max)."""

MOTHERBOARD_W = 15.0
"""Motherboard power at low fan speed with 1 SSD disk."""

DRAM_IDLE_MW_PER_GB = 15.5
DRAM_ACTIVE_MW_PER_GB = 155.0
DRAM_ACCESS_PJ_PER_BYTE = 800.0

# ---------------------------------------------------------------------------
# Data-center evaluation (paper Sections III-A, VI-C)
# ---------------------------------------------------------------------------

DATACENTER_N_SERVERS = 600
EVALUATION_HORIZON_SLOTS = 168
"""One week of 1-hour allocation slots (x-axis of Figs. 4-6)."""

COAT_ACTIVE_SERVER_REDUCTION_PCT = 37.0
"""Fig. 5: COAT uses 37% fewer active servers than EPACT on average."""

EPACT_BEST_SAVING_VS_COAT_PCT = 45.0
"""Fig. 6: best-case energy saving of EPACT vs. COAT."""

EPACT_WORST_SAVING_VS_COAT_OPT_PCT = 10.0
"""Fig. 6: worst-case energy saving of EPACT vs. COAT-OPT."""

FIG7_STATIC_POWER_SWEEP_W = (5, 15, 25, 35, 45)
"""Static-power sweep of Fig. 7 (motherboard/fan/disk component)."""
