"""Sharded allocation: any policy, shard by shard, optionally parallel.

:class:`ShardedPolicy` wraps an ordinary
:class:`~repro.core.types.AllocationPolicy` and splits each allocation
window into pattern-similar VM shards (:func:`repro.shard.cluster
.cluster_vms`), runs the wrapped policy on each shard against a
proportional slice of the server budget, and concatenates the per-shard
plans shard-major through the same
:func:`~repro.core.alloc1d.run_allocator_pools` seam the heterogeneous
fleet layer already uses — shards compose exactly like pools.

Per the house conventions:

* ``shards=1`` bypasses the whole layer (``allocate`` delegates straight
  to the wrapped policy) and is therefore **bit-identical** to the
  unsharded engine;
* ``jobs=N`` fans the per-shard allocations over a persistent process
  pool but gathers them in shard order, so parallel results equal the
  serial ones **exactly** — each shard's sub-problem is independent by
  construction.

Worker processes do not receive pickled prediction matrices: the parent
writes the window's predictions once into an ephemeral
``multiprocessing.shared_memory`` segment, each worker maps it, copies
out only its own shard's rows, and drops the mapping before allocating.
"""

from __future__ import annotations

from dataclasses import replace
from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

from ..core.alloc1d import run_allocator_pools
from ..core.types import (
    Allocation,
    AllocationContext,
    AllocationPolicy,
    FleetSpec,
)
from ..core.workspace import AllocationWorkspace
from ..errors import ConfigurationError
from .cluster import cluster_vms, shard_server_budgets

_WEIGHT_FLOOR = 1.0e-9


def _shard_context(
    pred_cpu: np.ndarray,
    pred_mem: np.ndarray,
    rows: np.ndarray,
    max_servers: int,
    qos_floor_ghz: np.ndarray,
    power_model,
    fleet: Optional[FleetSpec],
) -> AllocationContext:
    """The window context restricted to one shard's VMs and budget."""
    return AllocationContext(
        pred_cpu=np.ascontiguousarray(pred_cpu[rows]),
        pred_mem=np.ascontiguousarray(pred_mem[rows]),
        power_model=power_model,
        max_servers=max_servers,
        qos_floor_ghz=qos_floor_ghz,
        fleet=fleet,
    )


def _allocate_shard(
    policy: AllocationPolicy,
    segment_name: str,
    shape,
    rows: np.ndarray,
    max_servers: int,
    qos_floor_ghz: np.ndarray,
    power_model,
    fleet: Optional[FleetSpec],
) -> Allocation:
    """Worker entry point: map the window segment, allocate one shard.

    The segment lives only for this window, so it is attached and
    closed per task (not cached): the worker copies out its shard's
    rows, drops the views, and closes the mapping before the (much
    longer) allocation runs.
    """
    segment = shared_memory.SharedMemory(name=segment_name)
    try:
        arr = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
        pred_cpu = np.ascontiguousarray(arr[0, rows])
        pred_mem = np.ascontiguousarray(arr[1, rows])
        del arr
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views always dropped
            pass
    ctx = AllocationContext(
        pred_cpu=pred_cpu,
        pred_mem=pred_mem,
        power_model=power_model,
        max_servers=max_servers,
        qos_floor_ghz=qos_floor_ghz,
        fleet=fleet,
    )
    return policy.allocate(ctx)


class ShardedPolicy(AllocationPolicy):
    """Run a wrapped policy shard by shard (see module docstring).

    The wrapper is transparent in reports and records: it advertises the
    wrapped policy's ``name`` and ``reallocation_period_slots``.

    Args:
        policy: the policy to run per shard.
        shards: requested shard count (clamped to the window's VM
            count); ``1`` delegates straight to the wrapped policy.
        jobs: worker processes for the per-shard fan; ``1`` runs the
            shards serially in-process.  Results are identical either
            way.
        tracer: optional :class:`~repro.obs.tracer.RunTracer`; when set,
            every sharded window emits a ``shard_window`` event.

    Raises:
        ConfigurationError: for ``shards < 1`` or ``jobs < 1``.
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        shards: int = 1,
        jobs: int = 1,
        tracer=None,
    ):
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self._inner = policy
        self._shards = int(shards)
        self._jobs = int(jobs)
        self._tracer = tracer
        self._pool = None
        self.name = policy.name
        self.reallocation_period_slots = policy.reallocation_period_slots

    # The persistent worker pool and the tracer (open file handles)
    # never cross a pickle boundary; an unpickled wrapper lazily builds
    # its own pool on first parallel use.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_tracer"] = None
        return state

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _sub_fleets(
        self, fleet: FleetSpec, weights: np.ndarray
    ) -> List[Optional[FleetSpec]]:
        """Per-shard sub-fleets: every pool split by the shard weights.

        Pool order is preserved and every positive-weight shard gets at
        least one server of every pool, so a shard allocation's
        ``server_pools`` indices are valid parent-fleet pool indices and
        concatenate directly.
        """
        budgets = np.stack(
            [
                shard_server_budgets(weights, pool.n_servers)
                for pool in fleet.pools
            ],
            axis=1,
        )
        return [
            FleetSpec(
                pools=tuple(
                    replace(pool, n_servers=int(budgets[s, p]))
                    for p, pool in enumerate(fleet.pools)
                )
            )
            if weights[s] > 0.0
            else None
            for s in range(weights.shape[0])
        ]

    def allocate(self, ctx: AllocationContext) -> Allocation:
        """Cluster, split the budget, allocate per shard, concatenate."""
        if self._shards <= 1:
            return self._inner.allocate(ctx)
        if ctx.faults is not None:
            raise ConfigurationError(
                "sharded allocation does not compose with the fault "
                "layer yet — run faulted scenarios with shards=1"
            )
        workspace = AllocationWorkspace(ctx.pred_cpu, ctx.pred_mem)
        shard_rows = cluster_vms(ctx.pred_cpu, self._shards, workspace)
        if len(shard_rows) <= 1:
            return self._inner.allocate(ctx)

        # Per-shard load weights: the sum of predicted CPU peaks, with a
        # tiny floor so even an all-idle (but non-empty) shard draws a
        # server; empty shards weigh nothing and get nothing.
        peaks = workspace.cpu_peak
        weights = np.array(
            [
                max(float(peaks[rows].sum()), _WEIGHT_FLOOR)
                if rows.size
                else 0.0
                for rows in shard_rows
            ]
        )
        if ctx.fleet is not None:
            fleets = self._sub_fleets(ctx.fleet, weights)
            budgets = np.array(
                [
                    fleet.total_servers if fleet is not None else 0
                    for fleet in fleets
                ],
                dtype=np.int64,
            )
        else:
            fleets = [None] * len(shard_rows)
            budgets = shard_server_budgets(weights, ctx.max_servers)

        occupied = [s for s, rows in enumerate(shard_rows) if rows.size]
        allocations = self._run_shards(
            ctx, shard_rows, budgets, fleets, occupied
        )

        def reuse(m: int, idx: np.ndarray):
            allocation = allocations[m]
            return allocation.plans, allocation.forced_placements

        plans, _, forced = run_allocator_pools(reuse, shard_rows)
        server_pools = None
        if ctx.fleet is not None:
            parts = [allocations[s].server_pools for s in occupied]
            if all(part is not None for part in parts):
                # Sub-fleets preserve the parent's pool order, so shard
                # pool indices are parent pool indices and concatenate
                # directly alongside the plans.
                server_pools = np.concatenate(parts)
            elif ctx.fleet.n_pools > 1:
                raise ConfigurationError(
                    f"policy {self._inner.name!r} left server_pools "
                    "unset on a multi-pool fleet — wrap a fleet-aware "
                    "policy (e.g. FleetEpactPolicy) instead"
                )
        shed: List[int] = []
        for s in occupied:
            shed.extend(
                int(shard_rows[s][v]) for v in allocations[s].shed_vm_ids
            )
        first = allocations[occupied[0]]
        cases = {allocations[s].case for s in occupied}
        f_opts = {allocations[s].f_opt_ghz for s in occupied}
        if self._tracer is not None:
            self._tracer.emit(
                "shard_window",
                n_shards=len(shard_rows),
                n_vms=ctx.n_vms,
                shard_sizes=[int(rows.size) for rows in shard_rows],
                server_budgets=[int(b) for b in budgets],
                forced=int(forced),
            )
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=first.dynamic_governor,
            violation_cap_pct=first.violation_cap_pct,
            case=cases.pop() if len(cases) == 1 else "mixed",
            f_opt_ghz=f_opts.pop() if len(f_opts) == 1 else None,
            forced_placements=forced,
            server_pools=server_pools,
            shed_vm_ids=shed,
        )

    def _run_shards(
        self,
        ctx: AllocationContext,
        shard_rows: List[np.ndarray],
        budgets: np.ndarray,
        fleets: List[Optional[FleetSpec]],
        occupied: List[int],
    ) -> dict:
        """Allocate every occupied shard, serially or across the pool."""
        if self._jobs <= 1 or len(occupied) <= 1:
            return {
                s: self._inner.allocate(
                    _shard_context(
                        ctx.pred_cpu,
                        ctx.pred_mem,
                        shard_rows[s],
                        int(budgets[s]),
                        ctx.qos_floor_ghz[shard_rows[s]],
                        ctx.power_model,
                        fleets[s],
                    )
                )
                for s in occupied
            }
        # One ephemeral segment holds the whole window's predictions;
        # each worker copies out only its shard's rows.
        shape = (2, ctx.n_vms, ctx.n_samples)
        segment = shared_memory.SharedMemory(
            create=True, size=2 * ctx.n_vms * ctx.n_samples * 8
        )
        try:
            arr = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
            arr[0] = ctx.pred_cpu
            arr[1] = ctx.pred_mem
            del arr
            pool = self._ensure_pool()
            futures = {
                s: pool.submit(
                    _allocate_shard,
                    self._inner,
                    segment.name,
                    shape,
                    shard_rows[s],
                    int(budgets[s]),
                    ctx.qos_floor_ghz[shard_rows[s]],
                    ctx.power_model,
                    fleets[s],
                )
                for s in occupied
            }
            # Gathered in shard order: jobs=N equals serial exactly.
            return {s: futures[s].result() for s in occupied}
        finally:
            segment.close()
            segment.unlink()
