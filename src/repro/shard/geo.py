"""Multi-datacenter layer: regional fleets and a deterministic router.

A :class:`GeoFleetSpec` is a *fleet of fleets*: each
:class:`RegionSpec` names a site and its
:class:`~repro.core.types.FleetSpec`.  :func:`route_vms` splits the VM
population across regions — proportionally to the regions' routing
weights (server counts by default) via the same largest-remainder rule
the shard layer uses, with the VM identities drawn from one seeded
permutation, so the same seed always produces the identical regional
split.  :func:`run_geo_policies` then runs each region as an independent
:class:`~repro.dcsim.DataCenterSimulation` over its routed sub-fleet,
optionally sharding within the region (:class:`~repro.shard.policy
.ShardedPolicy`), and returns the per-(policy, region) results.

Regions are independent by design — the paper's consolidation question
is answered per site; what the geo layer adds is the scale axis (how
many sites, how load splits across them), not cross-site migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.types import AllocationPolicy, FleetSpec
from ..errors import ConfigurationError
from .cluster import shard_server_budgets
from .policy import ShardedPolicy


@dataclass(frozen=True)
class RegionSpec:
    """One datacenter site of a geo fleet.

    Attributes:
        name: site label (unique within a :class:`GeoFleetSpec`).
        fleet: the site's server fleet.
        weight: routing weight; defaults to the fleet's total server
            count, so load splits proportionally to capacity.
    """

    name: str
    fleet: FleetSpec
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("region name must be non-empty")
        if self.weight is not None and self.weight <= 0.0:
            raise ConfigurationError(
                f"region {self.name!r} weight must be positive"
            )

    @property
    def routing_weight(self) -> float:
        """The effective routing weight (capacity-proportional default)."""
        if self.weight is not None:
            return float(self.weight)
        return float(self.fleet.total_servers)


@dataclass(frozen=True)
class GeoFleetSpec:
    """An ordered tuple of regional fleets.

    Attributes:
        regions: the sites, in declaration order.
    """

    regions: Tuple[RegionSpec, ...]

    def __post_init__(self) -> None:
        regions = tuple(self.regions)
        object.__setattr__(self, "regions", regions)
        if not regions:
            raise ConfigurationError("a geo fleet needs at least one region")
        names = [region.name for region in regions]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"region names must be unique, got {names}"
            )

    @property
    def n_regions(self) -> int:
        """Number of sites."""
        return len(self.regions)

    @property
    def total_servers(self) -> int:
        """Physical servers across all sites."""
        return sum(r.fleet.total_servers for r in self.regions)


def route_vms(
    n_vms: int, geo: GeoFleetSpec, seed: int = 2018
) -> List[np.ndarray]:
    """Deterministically split ``n_vms`` VMs across the geo regions.

    Region loads follow the largest-remainder split of the routing
    weights (every region gets at least one VM); *which* VMs land where
    comes from one seeded permutation, chunked contiguously per region.
    Same seed, same geo spec, same population ⇒ identical splits.

    Returns:
        One ascending VM-index array per region, partitioning
        ``range(n_vms)``.

    Raises:
        ConfigurationError: if ``n_vms`` is smaller than the region
            count.
    """
    if n_vms < geo.n_regions:
        raise ConfigurationError(
            f"cannot route {n_vms} VMs across {geo.n_regions} regions — "
            "every region needs at least one VM"
        )
    weights = np.array([r.routing_weight for r in geo.regions])
    counts = shard_server_budgets(weights, n_vms)
    permutation = np.random.default_rng(seed).permutation(n_vms)
    routes: List[np.ndarray] = []
    offset = 0
    for count in counts:
        routes.append(np.sort(permutation[offset : offset + count]))
        offset += count
    return routes


@dataclass
class GeoRunResult:
    """Results of a multi-region, multi-policy run.

    Attributes:
        results: ``{policy_name: {region_name: SimulationResult}}``.
        routes: ``{region_name: vm_count}`` — how the router split the
            population.
        seed: the routing seed.
    """

    results: Dict[str, Dict[str, object]]
    routes: Dict[str, int] = field(default_factory=dict)
    seed: int = 2018

    def total_energy_j(self, policy_name: str) -> float:
        """Fleet-wide energy of one policy, summed over regions."""
        return sum(
            sum(record.energy_j for record in result.records)
            for result in self.results[policy_name].values()
        )


def _run_one_geo_region(
    dataset,
    rows,
    predictor_factory,
    policy,
    fleet: FleetSpec,
    shards: int,
    shard_jobs: int,
    kwargs: Dict,
) -> object:
    """Worker entry point: one (policy, region) run (picklable).

    ``dataset`` may be a :class:`~repro.shard.shm.SharedTraces` handle
    (mapped zero-copy) or a plain dataset.
    """
    from ..dcsim.engine import DataCenterSimulation
    from .shm import materialize

    sub_dataset = materialize(dataset).subset(rows)
    predictor = predictor_factory(sub_dataset)
    run_policy = policy
    wrapper = None
    if shards > 1:
        wrapper = ShardedPolicy(
            policy,
            shards=shards,
            jobs=shard_jobs,
            tracer=kwargs.get("tracer"),
        )
        run_policy = wrapper
    try:
        sim = DataCenterSimulation(
            sub_dataset, predictor, run_policy, fleet=fleet, **kwargs
        )
        return sim.run()
    finally:
        if wrapper is not None:
            wrapper.close()


def run_geo_policies(
    dataset,
    predictor_factory,
    policies,
    geo: GeoFleetSpec,
    seed: int = 2018,
    shards: int = 1,
    jobs: int = 1,
    shard_jobs: int = 1,
    tracer=None,
    metrics=None,
    shared=None,
    **kwargs,
) -> GeoRunResult:
    """Run several policies over a routed multi-region fleet.

    Shares the common runner surface (``jobs`` / ``tracer`` /
    ``metrics`` / ``shared``) with the other multi-policy runners in
    :mod:`repro.dcsim`: ``jobs`` fans the independent (policy, region)
    runs over a process pool — regions share only the routed traces, so
    parallel equals serial exactly — while ``shard_jobs`` keeps the
    within-region per-shard fan.  Serial runs thread ``tracer`` /
    ``metrics`` into every engine; parallel fans drop them
    (``region_route`` events are part of the deterministic preamble and
    are emitted serially either way).

    Args:
        dataset: the full VM population's traces.
        predictor_factory: ``factory(sub_dataset) -> predictor`` built
            per region (regions predict over their own sub-population;
            predictor classes like
            :class:`~repro.forecast.predictor.PerfectPredictor` work
            directly).  Must be picklable when ``jobs > 1``.
        policies: the policies to compare (each runs in every region).
        geo: the regional fleets.
        seed: routing seed (see :func:`route_vms`).
        shards: per-region shard count (``1`` = unsharded engine).
        jobs: worker processes for the (policy, region) fan.
        shard_jobs: worker processes for the per-shard fan *within*
            each region's sharded policy.
        tracer: optional tracer; each region emits a ``region_route``
            event, and (serial) sharded windows emit ``shard_window``
            events.
        metrics: optional metrics registry, forwarded to the engines
            on serial runs.
        shared: optional zero-copy traces handle
            (:class:`~repro.shard.shm.SharedTraces` or anything with a
            ``traces`` attribute, e.g.
            :class:`~repro.shard.shm.SharedRunInputs`); reused instead
            of copying the dataset into shared memory per call.
        **kwargs: forwarded to every
            :class:`~repro.dcsim.DataCenterSimulation` (horizon bounds,
            migration energy, ...).

    Returns:
        A :class:`GeoRunResult`.
    """
    policy_list: List[AllocationPolicy] = list(policies)
    routes = route_vms(dataset.n_vms, geo, seed)
    results: Dict[str, Dict[str, object]] = {
        policy.name: {} for policy in policy_list
    }
    route_sizes: Dict[str, int] = {}
    for region, rows in zip(geo.regions, routes):
        route_sizes[region.name] = int(rows.size)
        if tracer is not None:
            tracer.emit(
                "region_route",
                region=region.name,
                n_vms=int(rows.size),
                n_servers=int(region.fleet.total_servers),
                seed=int(seed),
                weight=float(region.routing_weight),
            )

    pairs = [
        (region, rows, policy)
        for region, rows in zip(geo.regions, routes)
        for policy in policy_list
    ]
    if jobs is None or jobs <= 1 or len(pairs) <= 1:
        serial_kwargs = dict(kwargs, tracer=tracer, metrics=metrics)
        for region, rows, policy in pairs:
            results[policy.name][region.name] = _run_one_geo_region(
                dataset,
                rows,
                predictor_factory,
                policy,
                region.fleet,
                shards,
                shard_jobs,
                serial_kwargs,
            )
        return GeoRunResult(results=results, routes=route_sizes, seed=seed)

    from concurrent.futures import ProcessPoolExecutor

    from .shm import SharedTraces

    owned = []
    if shared is not None:
        traces = getattr(shared, "traces", shared)
    else:
        traces = SharedTraces.from_dataset(dataset)
        owned.append(traces)
    try:
        workers = min(jobs, len(pairs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_one_geo_region,
                    traces,
                    rows,
                    predictor_factory,
                    policy,
                    region.fleet,
                    shards,
                    shard_jobs,
                    kwargs,
                )
                for region, rows, policy in pairs
            ]
            for (region, _, policy), future in zip(pairs, futures):
                results[policy.name][region.name] = future.result()
    finally:
        for handle in owned:
            handle.close()
            handle.unlink()
    return GeoRunResult(results=results, routes=route_sizes, seed=seed)
