"""Sharded, multi-datacenter simulation layer.

Opens the hyperscale rung of the roadmap: VM fleets are clustered into
*shards* by utilization-pattern similarity (:mod:`repro.shard.cluster`),
each shard is allocated independently — serially or across a process
pool — and the per-shard plans concatenate exactly like per-pool plans
already do (:mod:`repro.shard.policy`).  Worker processes read traces
and day-ahead predictions from zero-copy ``multiprocessing.shared_memory``
buffers (:mod:`repro.shard.shm`) instead of per-worker pickled arrays.
On top sits a geo layer (:mod:`repro.shard.geo`): a
:class:`~repro.shard.geo.GeoFleetSpec` of regional
:class:`~repro.core.types.FleetSpec`\\ s with a deterministic router
splitting the VM population across sites — a fleet of fleets.

House conventions hold throughout: ``shards=1`` is bit-identical to the
unsharded engine, and ``jobs=N`` equals the serial run exactly.
"""

from .cluster import cluster_vms, shard_server_budgets
from .geo import (
    GeoFleetSpec,
    GeoRunResult,
    RegionSpec,
    route_vms,
    run_geo_policies,
)
from .policy import ShardedPolicy
from .shm import (
    SharedPredictions,
    SharedRunInputs,
    SharedTraces,
    materialize,
    prediction_days,
)

__all__ = [
    "GeoFleetSpec",
    "GeoRunResult",
    "RegionSpec",
    "SharedPredictions",
    "SharedRunInputs",
    "SharedTraces",
    "ShardedPolicy",
    "cluster_vms",
    "materialize",
    "prediction_days",
    "route_vms",
    "run_geo_policies",
    "shard_server_budgets",
]
