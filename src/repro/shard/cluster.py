"""Pattern-similarity VM clustering for sharded allocation.

Shards group VMs whose predicted utilization *shapes* are alike, using
the same normalized-pattern geometry the correlation machinery in
:mod:`repro.core.correlation` is built on: each VM's slot pattern is
centered and scaled to unit norm (constant patterns map to the zero
vector, i.e. "no shape information", matching
:func:`repro.core.correlation.pearson`), so the dot product of two rows
*is* their Pearson correlation.  Keeping correlated VMs together
preserves what EPACT/COAT exploit — complementary-pattern packing works
within a shard, and the cross-shard interactions it loses are exactly
the weak ones.

The clustering is deliberately simple and deterministic:

* **medoid seeding** — the first medoid is the peak-heaviest VM; each
  subsequent medoid is the VM least correlated with every medoid chosen
  so far (ties break to the lowest VM index);
* **balanced greedy assignment** — VMs are visited in the allocator's
  own first-fit-decreasing order and placed in their most-correlated
  shard that still has room, with per-shard capacity
  ``ceil(n_vms / n_shards)``.

Balanced capacities keep worst-case shard size bounded (the process
pool's load balance), but a shard may legitimately end up **empty**
when ``n_vms`` barely exceeds ``n_shards``; downstream concatenation
skips empty shards exactly like empty pools.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.alloc1d import ffd_order
from ..core.workspace import AllocationWorkspace
from ..errors import ConfigurationError

_EPS = 1.0e-12


def cluster_vms(
    pred_cpu: np.ndarray,
    n_shards: int,
    workspace: Optional[AllocationWorkspace] = None,
) -> List[np.ndarray]:
    """Partition VMs into at most ``n_shards`` pattern-similar shards.

    Args:
        pred_cpu: predicted CPU utilization, shape ``(n_vms, samples)``.
        n_shards: requested shard count; clamped to ``n_vms`` (a shard
            never holds less than one VM by construction, though slack
            in the balanced capacities can leave trailing shards empty).
        workspace: optional :class:`AllocationWorkspace` already built on
            ``pred_cpu`` — its centered/norm statistics are reused
            instead of recomputed.

    Returns:
        One ascending ``int64`` row-index array per shard; the arrays
        partition ``range(n_vms)``.

    Raises:
        ConfigurationError: if ``n_shards < 1`` or ``pred_cpu`` is not
            2-D.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    pred_cpu = np.asarray(pred_cpu, dtype=float)
    if pred_cpu.ndim != 2:
        raise ConfigurationError("pred_cpu must be 2-D (n_vms, samples)")
    n_vms = pred_cpu.shape[0]
    k = min(n_shards, n_vms)
    if k <= 1:
        return [np.arange(n_vms, dtype=np.int64)]

    if workspace is None:
        workspace = AllocationWorkspace(pred_cpu, pred_cpu)
    # Unit-norm centered rows: X @ X.T is the Pearson correlation
    # matrix, with constant rows mapped to 0 (pearson()'s convention).
    scale = np.where(workspace.cpu_cnorm > _EPS, workspace.cpu_cnorm, 1.0)
    patterns = workspace.cpu_centered / scale[:, None]
    patterns[workspace.cpu_cnorm <= _EPS] = 0.0

    # Deterministic k-medoid seeding: start from the peak-heaviest VM,
    # then repeatedly add the VM least correlated with every medoid so
    # far (argmin breaks ties to the lowest index).
    medoids = [int(np.argmax(workspace.cpu_peak))]
    worst = patterns @ patterns[medoids[0]]
    worst[medoids[0]] = np.inf
    for _ in range(k - 1):
        nxt = int(np.argmin(worst))
        medoids.append(nxt)
        np.maximum(worst, patterns @ patterns[nxt], out=worst)
        worst[nxt] = np.inf

    # Balanced greedy assignment in FFD order: biggest VMs pick first,
    # each taking its most-correlated shard that still has room.
    similarity = patterns @ patterns[medoids].T
    capacity = -(-n_vms // k)
    assignment = np.empty(n_vms, dtype=np.int64)
    counts = np.zeros(k, dtype=np.int64)
    for vm in ffd_order(pred_cpu):
        for shard in np.argsort(-similarity[vm], kind="stable"):
            if counts[shard] < capacity:
                assignment[vm] = shard
                counts[shard] += 1
                break
    return [np.flatnonzero(assignment == shard) for shard in range(k)]


def shard_server_budgets(
    weights: np.ndarray, max_servers: int
) -> np.ndarray:
    """Split a server budget across shards by largest-remainder rule.

    Args:
        weights: per-shard non-negative load weights (e.g. the sum of
            predicted CPU peaks).  Zero-weight shards are treated as
            empty and get zero servers; every positive-weight shard is
            guaranteed at least one.
        max_servers: total servers to distribute.

    Returns:
        Per-shard integer budgets summing to ``max_servers`` (all of it
        goes to the positive-weight shards).

    Raises:
        ConfigurationError: on negative weights, ``max_servers < 1``, or
            more positive-weight shards than servers (use fewer shards).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1:
        raise ConfigurationError("weights must be 1-D")
    if np.any(weights < 0.0):
        raise ConfigurationError("weights must be non-negative")
    if max_servers < 1:
        raise ConfigurationError("max_servers must be >= 1")
    positive = weights > 0.0
    n_positive = int(positive.sum())
    if n_positive == 0:
        return np.zeros(weights.shape[0], dtype=np.int64)
    if max_servers < n_positive:
        raise ConfigurationError(
            f"max_servers={max_servers} cannot give each of "
            f"{n_positive} non-empty shards a server — use fewer shards"
        )
    quota = weights / weights.sum() * max_servers
    budgets = np.floor(quota).astype(np.int64)
    # Largest remainder first; stable sort breaks ties to lowest index.
    for shard in np.argsort(-(quota - budgets), kind="stable"):
        if budgets.sum() >= max_servers:
            break
        budgets[shard] += 1
    # Guarantee every positive-weight shard one server, stealing from
    # the currently largest budget (deterministic argmax tie-break).
    for shard in np.flatnonzero(positive & (budgets == 0)):
        donor = int(np.argmax(budgets))
        budgets[donor] -= 1
        budgets[shard] += 1
    return budgets
