"""Zero-copy shared-memory buffers for multi-process simulation runs.

The process-pool runners used to ship traces and frozen day-ahead
predictions to every worker by pickling the arrays — at 100k VMs that is
gigabytes copied per worker.  This module puts both behind
``multiprocessing.shared_memory`` instead: the parent writes each array
**once** into a named segment, workers receive only the segment name and
map the same physical pages read-only.  Unpickling costs one ``mmap``
per process, not one copy per task.

Buffer lifetime protocol
------------------------

Shared segments are kernel objects, not Python objects — they outlive
the process unless explicitly removed.  The rules:

* The **creating process owns** the segment.  It must call
  :meth:`close` (drop the local mapping) and :meth:`unlink` (remove the
  segment system-wide) when the run is done; the ``with`` form does both
  on exit.  :func:`repro.dcsim.run_policies` and friends create and
  dispose buffers internally unless the caller passes an explicit
  :class:`SharedRunInputs` handle, in which case disposal is the
  caller's job (one buffer set can then serve many runner calls).
* **Worker processes attach, never own.**  Unpickling attaches the
  named segment once per process (cached in :data:`_ATTACHED`); a
  process-exit hook closes the cached mappings.  Workers never call
  ``unlink``, and their attach registrations resolve against the
  resource tracker the forked children share with the parent, so an
  owner that closes and unlinks leaves nothing for the tracker to
  reclaim — runs are ResourceWarning-clean under ``-W error``.
* ``close()`` and ``unlink()`` are idempotent; using a handle after
  ``close()`` raises :class:`~repro.errors.DomainError`.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..traces.dataset import TraceDataset
from ..traces.vm import VmSpec
from ..units import SAMPLES_PER_DAY, SAMPLES_PER_SLOT, SLOTS_PER_DAY

#: Worker-side cache: one attached segment per (process, segment name).
#: Keeps repeat unpicklings of the same buffer from re-mapping it and
#: gives the exit hook a single place to close every mapping.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment, reusing this process's cached mapping."""
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
    return segment


@atexit.register
def _close_attached() -> None:
    """Close every cached worker-side mapping at process exit."""
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except BufferError:  # a live view pins the mapping; OS reclaims
            pass
    _ATTACHED.clear()


def prediction_days(
    dataset: TraceDataset,
    predictor,
    start_slot: Optional[int] = None,
    n_slots: Optional[int] = None,
) -> range:
    """The day indices a simulation horizon touches.

    Mirrors :class:`~repro.dcsim.engine.DataCenterSimulation`'s horizon
    derivation, so freezing exactly these days reproduces what the
    engine would have requested live.

    Raises:
        ConfigurationError: if the derived horizon is empty.
    """
    first = predictor.first_predictable_day * SLOTS_PER_DAY
    start = start_slot if start_slot is not None else first
    count = n_slots if n_slots is not None else dataset.n_slots - start
    if count < 1:
        raise ConfigurationError("horizon must cover at least one slot")
    return range(
        start // SLOTS_PER_DAY, (start + count - 1) // SLOTS_PER_DAY + 1
    )


class SharedPredictions:
    """Frozen day-ahead forecasts in one shared-memory segment.

    Drop-in for :class:`~repro.forecast.predictor.PrecomputedPredictor`
    (same ``first_predictable_day`` / ``fallback_count`` /
    ``forecast_day`` / ``predicted_slot`` surface) but the per-day
    ``(n_vms, 288)`` arrays are read-only views into a single segment of
    layout ``(n_days, 2, n_vms, 288)`` float64.  Pickling transmits the
    segment *name*; unpickling in a worker maps the same pages.

    See the module docstring for the buffer lifetime protocol.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        day_ids: Sequence[int],
        n_vms: int,
        first_predictable_day: int,
        owner: bool,
    ):
        self._shm = segment
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._day_ids = tuple(int(d) for d in day_ids)
        self._n_vms = int(n_vms)
        self._first = int(first_predictable_day)
        arr = np.ndarray(
            (len(self._day_ids), 2, self._n_vms, SAMPLES_PER_DAY),
            dtype=np.float64,
            buffer=segment.buf,
        )
        arr.flags.writeable = False
        self._days = {
            day: (arr[i, 0], arr[i, 1])
            for i, day in enumerate(self._day_ids)
        }

    @classmethod
    def from_predictor(
        cls, predictor, days: "range | Sequence[int]"
    ) -> "SharedPredictions":
        """Freeze ``predictor``'s forecasts for ``days`` into a segment."""
        day_ids = sorted({int(d) for d in days})
        if not day_ids:
            raise ConfigurationError(
                "at least one forecast day is required"
            )
        forecasts = [predictor.forecast_day(day) for day in day_ids]
        n_vms = forecasts[0][0].shape[0]
        for (cpu, mem), day in zip(forecasts, day_ids):
            if cpu.shape != (n_vms, SAMPLES_PER_DAY) or mem.shape != (
                n_vms,
                SAMPLES_PER_DAY,
            ):
                raise DomainError(
                    f"day {day}: forecast shape {cpu.shape} != "
                    f"({n_vms}, {SAMPLES_PER_DAY})"
                )
        segment = shared_memory.SharedMemory(
            create=True,
            size=len(day_ids) * 2 * n_vms * SAMPLES_PER_DAY * 8,
        )
        arr = np.ndarray(
            (len(day_ids), 2, n_vms, SAMPLES_PER_DAY),
            dtype=np.float64,
            buffer=segment.buf,
        )
        for i, (cpu, mem) in enumerate(forecasts):
            arr[i, 0] = cpu
            arr[i, 1] = mem
        del arr
        return cls(
            segment,
            day_ids,
            n_vms,
            predictor.first_predictable_day,
            owner=True,
        )

    def __reduce__(self):
        if self._closed:
            raise DomainError(
                "cannot pickle a closed shared prediction buffer"
            )
        return (
            _attach_predictions,
            (self._shm.name, self._day_ids, self._n_vms, self._first),
        )

    # -- predictor interface -------------------------------------------------

    @property
    def first_predictable_day(self) -> int:
        """First day index the frozen predictor could predict."""
        return self._first

    @property
    def fallback_count(self) -> int:
        """Frozen forecasts carry no fitting, hence no fallbacks."""
        return 0

    def forecast_day(self, day_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The frozen ``(cpu, mem)`` forecasts of one day (read-only views).

        Raises:
            DomainError: if the day was not frozen, or after ``close()``.
        """
        if self._closed:
            raise DomainError("shared prediction buffer is closed")
        try:
            return self._days[day_index]
        except KeyError:
            raise DomainError(
                f"day {day_index} was not precomputed"
            ) from None

    def predicted_slot(
        self, slot_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted CPU/memory for one 1-hour slot, ``(n_vms, 12)`` each."""
        cpu_day, mem_day = self.forecast_day(slot_index // SLOTS_PER_DAY)
        offset = (slot_index % SLOTS_PER_DAY) * SAMPLES_PER_SLOT
        return (
            cpu_day[:, offset : offset + SAMPLES_PER_SLOT],
            mem_day[:, offset : offset + SAMPLES_PER_SLOT],
        )

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Drop the views; the owner also closes its local mapping.

        Worker-side (unpickled) handles leave the per-process cached
        mapping open — other handles in the same worker may still use
        it; the process-exit hook closes it.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._days = {}
        if self._owner:
            try:
                self._shm.close()
            except BufferError:  # caller kept a view; OS reclaims at exit
                pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only, idempotent)."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            self._shm.unlink()

    def __enter__(self) -> "SharedPredictions":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def _attach_predictions(name, day_ids, n_vms, first):
    """Unpickle hook: rebuild a worker-side view of a named segment."""
    return SharedPredictions(
        _attach_segment(name), day_ids, n_vms, first, owner=False
    )


class SharedTraces:
    """A :class:`TraceDataset`'s utilization matrices in one segment.

    Layout ``(2, n_vms, n_samples)`` float64 (CPU then memory); the VM
    specs travel by value (they are tiny).  :attr:`dataset` rebuilds a
    :class:`TraceDataset` whose matrices are read-only views into the
    segment — construction validates shapes but copies nothing, so the
    round-trip stays zero-copy.

    See the module docstring for the buffer lifetime protocol.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        specs: Sequence[VmSpec],
        n_samples: int,
        owner: bool,
    ):
        self._shm = segment
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._specs = tuple(specs)
        self._n_samples = int(n_samples)
        arr = np.ndarray(
            (2, len(self._specs), self._n_samples),
            dtype=np.float64,
            buffer=segment.buf,
        )
        arr.flags.writeable = False
        self._dataset = TraceDataset(self._specs, arr[0], arr[1])

    @classmethod
    def from_dataset(cls, dataset: TraceDataset) -> "SharedTraces":
        """Copy ``dataset``'s matrices into a fresh shared segment."""
        segment = shared_memory.SharedMemory(
            create=True, size=2 * dataset.n_vms * dataset.n_samples * 8
        )
        arr = np.ndarray(
            (2, dataset.n_vms, dataset.n_samples),
            dtype=np.float64,
            buffer=segment.buf,
        )
        arr[0] = dataset.cpu_pct
        arr[1] = dataset.mem_pct
        del arr
        return cls(segment, dataset.specs, dataset.n_samples, owner=True)

    def __reduce__(self):
        if self._closed:
            raise DomainError("cannot pickle a closed shared trace buffer")
        return (
            _attach_traces,
            (self._shm.name, self._specs, self._n_samples),
        )

    @property
    def dataset(self) -> TraceDataset:
        """The shared-memory-backed dataset (matrices are read-only views).

        Raises:
            DomainError: after ``close()``.
        """
        if self._closed:
            raise DomainError("shared trace buffer is closed")
        return self._dataset

    def close(self) -> None:
        """Drop the dataset view; the owner also closes its mapping."""
        if self._closed:
            return
        self._closed = True
        self._dataset = None
        if self._owner:
            try:
                self._shm.close()
            except BufferError:  # caller kept a view; OS reclaims at exit
                pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only, idempotent)."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            self._shm.unlink()

    def __enter__(self) -> "SharedTraces":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def _attach_traces(name, specs, n_samples):
    """Unpickle hook: rebuild a worker-side view of a named segment."""
    return SharedTraces(_attach_segment(name), specs, n_samples, owner=False)


def materialize(dataset) -> TraceDataset:
    """Unwrap a :class:`SharedTraces` handle into its dataset.

    Worker entry points call this on whatever they were shipped: a
    shared-memory handle maps to its zero-copy dataset view, a plain
    :class:`TraceDataset` passes through untouched.
    """
    if isinstance(dataset, SharedTraces):
        return dataset.dataset
    return dataset


class SharedRunInputs:
    """The trace + prediction buffer pair one multi-process run needs.

    Created once by the parent (:meth:`create`), handed to the runner's
    ``shared=`` keyword, and shipped to workers by name.  The handle is
    a context manager; leaving the ``with`` block closes **and unlinks**
    both segments:

    >>> with SharedRunInputs.create(dataset, predictor) as shared:
    ...     run_policies(dataset, predictor, policies, jobs=4,
    ...                  shared=shared)

    Reusing one handle across several runner calls amortizes the freeze
    cost; the runners only create (and dispose) a private handle when
    ``shared`` is not given.
    """

    def __init__(self, traces: SharedTraces, predictions: SharedPredictions):
        self.traces = traces
        self.predictions = predictions

    @classmethod
    def create(
        cls,
        dataset: TraceDataset,
        predictor,
        start_slot: Optional[int] = None,
        n_slots: Optional[int] = None,
    ) -> "SharedRunInputs":
        """Freeze ``dataset`` and the horizon's forecasts into segments."""
        traces = SharedTraces.from_dataset(dataset)
        try:
            predictions = SharedPredictions.from_predictor(
                predictor,
                prediction_days(dataset, predictor, start_slot, n_slots),
            )
        except BaseException:
            traces.close()
            traces.unlink()
            raise
        return cls(traces, predictions)

    def close(self) -> None:
        """Close both buffers (idempotent)."""
        self.traces.close()
        self.predictions.close()

    def unlink(self) -> None:
        """Unlink both segments (owner only, idempotent)."""
        self.traces.unlink()
        self.predictions.unlink()

    def __enter__(self) -> "SharedRunInputs":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
