"""Smoke bench: the window-batched engine must not lose to per-slot.

A deliberately trivial day-ahead policy (zero allocation cost, 24-slot
windows) makes the run time accounting-dominated, so the comparison
isolates exactly what ``window_batch`` changes.  The batched path
replaces ~24 per-slot accounting passes per window with one batched
pass; if it ever comes out slower than the per-slot reference on the
reduced week, a regression snuck into the fast path and this test
fails.  Results are asserted bit-identical along the way.

Runs in the regular test suite (it needs only a few engine runs) and
carries the ``smokebench`` marker so it can be selected or skipped with
``-m smokebench`` / ``-m "not smokebench"``.
"""

import time

import numpy as np
import pytest

from repro.core.types import Allocation, AllocationPolicy, ServerPlan
from repro.dcsim import DataCenterSimulation
from repro.forecast import PerfectPredictor
from repro.traces import default_dataset


class _RoundRobinDayPolicy(AllocationPolicy):
    """Fixed round-robin placement, day-ahead windows, ~zero cost."""

    name = "round-robin-day"
    reallocation_period_slots = 24

    def __init__(self, n_servers: int = 40):
        self._n_servers = n_servers

    def allocate(self, ctx):
        plans = [
            ServerPlan(planned_freq_ghz=ctx.f_max_ghz)
            for _ in range(self._n_servers)
        ]
        for vm in range(ctx.n_vms):
            plans[vm % self._n_servers].vm_ids.append(vm)
        return Allocation(
            policy_name=self.name,
            plans=plans,
            dynamic_governor=False,
            violation_cap_pct=100.0,
        )


@pytest.mark.smokebench
def test_window_batch_not_slower_than_per_slot():
    dataset = default_dataset(n_vms=120, n_days=9, seed=2018)
    predictor = PerfectPredictor(dataset)

    def run(window_batch):
        sim = DataCenterSimulation(
            dataset,
            predictor,
            _RoundRobinDayPolicy(),
            max_servers=120,
            start_slot=168,
            window_batch=window_batch,
        )
        t0 = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - t0, result

    # Warm caches (power tables, calibration) outside the timing.
    run(True)
    run(False)
    # Interleaved best-of-5: the min of each side is robust to load
    # spikes on shared single-CPU runners (spikes inflate individual
    # samples, they do not deflate the minimum).
    batched_times, slot_times = [], []
    for _ in range(5):
        tb, rb = run(True)
        ts, rs = run(False)
        batched_times.append(tb)
        slot_times.append(ts)
        assert len(rb.records) == len(rs.records)
        for a, b in zip(rb.records, rs.records):
            assert a == b  # bit-identical records

    batched = min(batched_times)
    per_slot = min(slot_times)
    # The batched path must win on a 24-slot-window workload; the 1.1
    # factor only absorbs scheduler noise, not a real regression.
    assert batched <= per_slot * 1.1, (
        f"window-batched accounting ({batched:.4f}s) slower than the "
        f"per-slot reference ({per_slot:.4f}s)"
    )


@pytest.mark.smokebench
def test_window_batch_speedup_report(capsys):
    """Informational: print the measured batch-vs-slot ratio."""
    dataset = default_dataset(n_vms=60, n_days=9, seed=5)
    predictor = PerfectPredictor(dataset)

    def run(window_batch):
        sim = DataCenterSimulation(
            dataset,
            predictor,
            _RoundRobinDayPolicy(n_servers=20),
            max_servers=60,
            start_slot=168,
            window_batch=window_batch,
        )
        t0 = time.perf_counter()
        energy = sum(r.energy_j for r in sim.run().records)
        return time.perf_counter() - t0, energy

    run(True)
    tb, eb = run(True)
    ts, es = run(False)
    assert np.isclose(eb, es, rtol=0.0, atol=0.0)  # exact
    with capsys.disabled():
        print(
            f"\n[smokebench] window-batch {tb:.4f}s vs per-slot "
            f"{ts:.4f}s ({ts / max(tb, 1e-9):.1f}x)"
        )
