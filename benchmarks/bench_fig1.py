"""Benchmark: regenerate Fig. 1 (DC power vs frequency, both panels)."""

from repro.experiments.fig1 import render, run_fig1


def test_bench_fig1(benchmark):
    """Times the 2x9-curve sweep and prints the per-utilization optima."""
    result = benchmark(run_fig1)
    print()
    print(render(result))
    lo, hi = result.ntc_interior_optimum_range()
    assert 1.7 <= lo <= hi <= 2.0
    for opt in result.conventional_optima.values():
        assert abs(opt.freq_ghz - 2.4) < 1e-9
